"""E16 (extensions) — the §8 directions and §6.3 remark, measured.

* commit-adopt: exhaustive spec verification + wait-free step bound;
* the [25]-style ladder: consensus cost vs process count with ONE fixed
  register layout (the named model's answer to Theorem 6.3), plus the
  adversarial round climb that shows why it is only obstruction-free;
* naming agreement: cost of bootstrapping a common numbering, after
  which Peterson runs on registers that started anonymous;
* partitioned k-set: output diversity vs k.
"""

import pytest

from repro.analysis.tables import render_table
from repro.extensions.commit_adopt import CommitAdopt
from repro.extensions.kset import KSetChecker, PartitionedKSetConsensus
from repro.extensions.naming_agreement import NamingAgreement, consistent_namings
from repro.extensions.unbounded_consensus import UnboundedConsensus
from repro.memory.naming import RandomNaming
from repro.runtime.adversary import StagedObstructionAdversary
from repro.runtime.exploration import explore
from repro.runtime.system import System
from repro.spec.consensus_spec import AgreementChecker

from benchmarks.conftest import pids


def ca_exhaustive():
    from tests.extensions.test_commit_adopt import conjoined

    inputs = {101: "a", 103: "b", 107: "a"}
    system = System(CommitAdopt(("a", "b")), inputs, record_trace=False)
    return explore(system, conjoined(inputs), max_states=2_000_000)


def test_e16_commit_adopt_exhaustive(benchmark):
    result = benchmark.pedantic(ca_exhaustive, rounds=1, iterations=1)
    assert result.complete and result.ok
    print(render_table(
        ["object", "processes", "states", "verdict"],
        [["commit-adopt(binary)", 3, result.states_explored,
          "coherence+validity exhaustive"]],
        title="E16a (commit-adopt verified over all schedules)",
    ))


@pytest.mark.parametrize("count", [2, 4, 6, 8])
def test_e16_ladder_scales_with_process_count(benchmark, count):
    inputs = {pids(8)[k]: ("one" if k % 2 else "zero") for k in range(count)}

    def run():
        system = System(UnboundedConsensus(("zero", "one")), inputs)
        adversary = StagedObstructionAdversary(prefix_steps=25 * count, seed=count)
        return system.run(adversary, max_steps=500_000)

    trace = benchmark(run)
    AgreementChecker().check(trace)
    assert len(trace.decided()) == count
    print(render_table(
        ["processes", "fixed registers", "events", "decided"],
        [[count, UnboundedConsensus(("zero", "one")).register_count(),
          len(trace), len(trace.decided())]],
        title=f"E16b (one layout, any process count — n={count})",
    ))


def test_e16_naming_agreement_cost(benchmark):
    def run():
        rows = []
        for n in (2, 3, 4):
            system = System(
                NamingAgreement(n=n), pids(n), naming=RandomNaming(n)
            )
            trace = system.run(
                StagedObstructionAdversary(prefix_steps=0), max_steps=200_000
            )
            assert trace.all_halted()
            assert consistent_namings(system, trace.outputs)
            rows.append([n, 2 * n - 1, len(trace)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(render_table(
        ["n", "registers", "events to full agreement"], rows,
        title="E16c (naming bootstrap: buy the named model once, reuse it)",
    ))


@pytest.mark.parametrize("k", [1, 2, 3])
def test_e16_partitioned_kset(benchmark, k):
    n = 6
    inputs = {pid: f"v{pid}" for pid in pids(n)}

    def run():
        system = System(PartitionedKSetConsensus(n=n, k=k), inputs)
        adversary = StagedObstructionAdversary(prefix_steps=30 * n, seed=k)
        return system.run(adversary, max_steps=500_000)

    trace = benchmark(run)
    KSetChecker(k, inputs).check(trace)
    distinct = len(set(trace.decided().values()))
    print(render_table(
        ["n", "k", "distinct outputs", "registers"],
        [[n, k, distinct, PartitionedKSetConsensus(n=n, k=k).register_count()]],
        title=f"E16d (partitioned k-set, k={k}: at most k values)",
    ))
    assert distinct <= k
