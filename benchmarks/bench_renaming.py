"""E6/E7/E8 — Theorems 5.1, 5.2, 5.3: adaptive perfect renaming.

* E6: termination under staged obstruction for n in {2..5};
* E7: uniqueness and the {1..n} range, swept over namings × schedules;
* E8: adaptivity — k of n participants acquire exactly {1..k}.
"""

import pytest

from repro.analysis.experiments import gives_solo_opportunities, sweep
from repro.analysis.tables import render_table
from repro.core.renaming import AnonymousRenaming
from repro.memory.naming import all_namings_for_tests
from repro.runtime.adversary import StagedObstructionAdversary, standard_adversaries
from repro.runtime.system import System
from repro.spec.renaming_spec import (
    NameRangeChecker,
    RenamingTerminationChecker,
    UniqueNamesChecker,
)

from benchmarks.conftest import pids


def renaming_run(n: int, seed: int = 1):
    system = System(AnonymousRenaming(n=n), pids(n))
    adversary = StagedObstructionAdversary(prefix_steps=40 * n, seed=seed)
    return system.run(adversary, max_steps=1_000_000)


@pytest.mark.parametrize("n", [2, 3, 4, 5])
def test_e6_termination(benchmark, n):
    trace = benchmark(renaming_run, n)
    RenamingTerminationChecker().check(trace)
    assert sorted(trace.outputs.values()) == list(range(1, n + 1))
    print(
        render_table(
            ["n", "registers", "events", "names"],
            [[n, 2 * n - 1, len(trace), sorted(trace.outputs.values())]],
            title=f"E6 (Theorem 5.1, n={n})",
        )
    )


def renaming_sweep(n: int):
    def checkers(adversary):
        battery = [UniqueNamesChecker(), NameRangeChecker(bound=n)]
        if gives_solo_opportunities(adversary):
            battery.append(RenamingTerminationChecker())
        return battery

    return sweep(
        lambda: AnonymousRenaming(n=n),
        pids(n),
        namings=all_namings_for_tests(pids(n), 2 * n - 1),
        adversaries=standard_adversaries(range(3), prefix_steps=40 * n),
        checkers_factory=checkers,
        max_steps=300_000,
    )


@pytest.mark.parametrize("n", [2, 3, 4])
def test_e7_uniqueness_sweep(benchmark, n):
    result = benchmark.pedantic(renaming_sweep, args=(n,), rounds=1, iterations=1)
    assert result.all_ok, result.describe_failures()
    print(
        render_table(
            ["n", "runs", "violations", "verdict"],
            [[n, result.runs, len(result.failures), "unique, in {1..n}"]],
            title=f"E7 (Theorem 5.2 sweep, n={n})",
        )
    )


def adaptive_run(n: int, k: int, seed: int = 2):
    system = System(AnonymousRenaming(n=n), pids(n)[:k])
    adversary = StagedObstructionAdversary(prefix_steps=30 * k, seed=seed)
    return system.run(adversary, max_steps=1_000_000)


@pytest.mark.parametrize("k", [1, 2, 3, 4])
def test_e8_adaptivity(benchmark, k):
    n = 5
    trace = benchmark(adaptive_run, n, k)
    assert sorted(trace.outputs.values()) == list(range(1, k + 1))
    print(
        render_table(
            ["n (dimensioned)", "k (participants)", "names acquired"],
            [[n, k, sorted(trace.outputs.values())]],
            title=f"E8 (Theorem 5.3 adaptivity, k={k})",
        )
    )
