"""Shared helpers for the benchmark/experiment suite.

Each ``bench_*.py`` file regenerates one experiment from DESIGN.md's
index (the paper has no numeric tables — every experiment is a theorem).
Files follow one convention:

* every test takes the ``benchmark`` fixture, so ``pytest benchmarks/
  --benchmark-only`` runs them all and reports timings;
* the benchmarked callable *returns* the data the experiment is about,
  and the test asserts the paper's qualitative claim on it — a benchmark
  that silently measured a broken run would be worthless;
* run with ``-s`` to see the per-experiment ASCII tables
  (``python benchmarks/run_experiments.py`` prints them all without
  pytest).
"""

import pytest

#: Distinct non-contiguous pids, mirroring tests/conftest.py.
PIDS = (101, 103, 107, 109, 113, 127, 131, 137)


def pids(n: int):
    """First ``n`` canonical pids."""
    return PIDS[:n]


def consensus_inputs(n: int):
    """Standard input assignment for consensus experiments."""
    return {pid: f"v{k}" for k, pid in enumerate(pids(n))}


@pytest.fixture(scope="session", autouse=True)
def _benchmark_banner():
    print(
        "\n[repro benchmarks] every experiment asserts its theorem's claim; "
        "run with -s to see the tables\n"
    )
    yield
