"""E2 — Theorem 3.4: the (m, l) relative-primality frontier, swept.

For every pair (m, l) with 2 <= l <= n and gcd(m, l) > 1, the lockstep
symmetry attack (run with an l'-process group, l' the smallest prime
factor of the gcd) must break any candidate algorithm — here Figure 1,
instantiated at each m.  For coprime pairs the attack's premise (an
equispaced ring placement) does not even exist; Figure 1 at odd m is
verified to make progress under the nearest-miss lockstep schedule.

The printed grid is this reproduction's stand-in for the theorem: each
cell reports which requirement failed, or "coprime" where the theorem is
silent.
"""

from math import gcd

import pytest

from repro.analysis.tables import render_table
from repro.core.mutex import AnonymousMutex
from repro.lowerbounds.symmetry import attack_group_size, run_symmetry_attack
from repro.memory.naming import RingNaming
from repro.runtime.adversary import LockstepAdversary
from repro.runtime.system import System

from benchmarks.conftest import pids

M_VALUES = range(2, 13)
N = 6  # consider group sizes l in 2..6


def sweep_grid():
    """Run the attack over the full (m, l) grid; returns table rows."""
    rows = []
    for m in M_VALUES:
        cells = []
        for l in range(2, N + 1):
            if gcd(m, l) == 1:
                cells.append("coprime")
                continue
            group = attack_group_size(m, l)
            result = run_symmetry_attack(
                AnonymousMutex(m=m, unsafe_allow_any_m=True),
                pids(group),
                max_rounds=50_000,
            )
            cells.append(result.violation or "SURVIVED?!")
        rows.append([m] + cells)
    return rows


def test_e2_relative_primality_grid(benchmark):
    rows = benchmark.pedantic(sweep_grid, rounds=1, iterations=1)
    headers = ["m"] + [f"l={l}" for l in range(2, N + 1)]
    print(render_table(headers, rows, title="E2 (Theorem 3.4 grid)"))
    # Every non-coprime cell must report a violation.
    for row in rows:
        for cell in row[1:]:
            assert cell in ("coprime", "deadlock-freedom", "mutual-exclusion")
            assert cell != "SURVIVED?!"


def coprime_control(m: int):
    """Nearest-miss lockstep against Figure 1 in its legal regime."""
    naming = RingNaming({pids(2)[0]: 0, pids(2)[1]: 1})
    system = System(AnonymousMutex(m=m, cs_visits=1), pids(2), naming=naming)
    return system.run(LockstepAdversary(pids(2)), max_steps=200_000)


@pytest.mark.parametrize("m", [3, 5, 7, 9])
def test_e2_coprime_control_makes_progress(benchmark, m):
    trace = benchmark(coprime_control, m)
    assert trace.critical_section_entries() >= 1
    print(
        render_table(
            ["m", "l", "gcd", "CS entries"],
            [[m, 2, gcd(m, 2), trace.critical_section_entries()]],
            title=f"E2 control (m={m} odd: progress under lockstep)",
        )
    )
