"""E1 — Theorems 3.1/3.2/3.3: Figure 1 works exactly when m is odd.

Three measurements:

* contended two-process runs for each odd m (correctness asserted via
  the spec checkers; timing shows cost growth with m);
* exhaustive model checking of the m=3 instance (Theorem 3.2 verified
  over *all* schedules, not a sample);
* the Theorem 3.4 symmetry attack on each even m (must find a
  deadlock-freedom violation — the "only if odd" half of Theorem 3.1).
"""

import pytest

from repro.analysis.tables import render_table
from repro.core.mutex import AnonymousMutex
from repro.lowerbounds.symmetry import run_symmetry_attack
from repro.runtime.adversary import RandomAdversary
from repro.runtime.exploration import explore, mutual_exclusion_invariant
from repro.runtime.system import System
from repro.spec.mutex_spec import mutex_checkers
from repro.spec.properties import check_all

from benchmarks.conftest import pids


def contended_run(m: int, seed: int = 0):
    system = System(AnonymousMutex(m=m, cs_visits=3, cs_steps=2), pids(2))
    trace = system.run(RandomAdversary(seed), max_steps=500_000)
    return trace


@pytest.mark.parametrize("m", [3, 5, 7, 9, 11])
def test_e1_fig1_odd_m_contended(benchmark, m):
    trace = benchmark(contended_run, m)
    assert trace.stop_reason == "all-halted"
    check_all(trace, mutex_checkers(m, min_entries=6))
    print(
        render_table(
            ["m", "events", "CS entries", "verdict"],
            [[m, len(trace), trace.critical_section_entries(), "ME+DF hold"]],
            title=f"E1 (odd m={m})",
        )
    )


def exhaustive_m3():
    system = System(AnonymousMutex(m=3, cs_visits=1), pids(2), record_trace=False)
    return explore(system, mutual_exclusion_invariant, max_states=500_000)


def test_e1_exhaustive_model_check_m3(benchmark):
    result = benchmark(exhaustive_m3)
    assert result.complete and result.ok and result.stuck_states == 0
    print(
        render_table(
            ["instance", "states", "events", "verdict"],
            [["Fig1 m=3, n=2", result.states_explored, result.events_executed,
              "exhaustively verified"]],
            title="E1 (Theorem 3.2, all schedules)",
        )
    )


@pytest.mark.parametrize("m", [2, 4, 6, 8, 10])
def test_e1_even_m_symmetry_attack(benchmark, m):
    result = benchmark(
        run_symmetry_attack,
        AnonymousMutex(m=m, unsafe_allow_any_m=True),
        pids(2),
    )
    assert result.violation == "deadlock-freedom", result.summary()
    assert result.symmetric_throughout
    print(
        render_table(
            ["m", "violation", "cycle rounds", "steps"],
            [[m, result.violation, result.cycle_rounds, result.steps]],
            title=f"E1 (even m={m}: impossible, as predicted)",
        )
    )
