#!/usr/bin/env python3
"""Regenerate the paper-claim experiment tables (E1-E14), without pytest.

This is the script that produced the measurements recorded in
EXPERIMENTS.md.  Each section corresponds to one experiment in
DESIGN.md's E1-E17 index; each experiment asserts the paper's claim
before printing its table, so a successful run *is* the reproduction.
The three extension experiments (E15-E17) are pytest-benchmark suites
and run separately: ``pytest benchmarks/ --benchmark-only``.

Run with:           python benchmarks/run_experiments.py [E1 E12 ...]

The exploration benchmark (E14d, the symmetry-reduced explorer against
the seed explorer) is separate because it is the one section whose
numbers are recorded as a machine-readable trajectory:

    python benchmarks/run_experiments.py --bench            # full, writes
                                                            # BENCH_explore.json
    python benchmarks/run_experiments.py --bench --quick    # CI smoke subset
    ... --bench --quick --check-baseline benchmarks/BENCH_explore.json
    ... --bench --quick --telemetry benchmarks/telemetry    # + run manifests

``--check-baseline`` exits non-zero if any instance's verdict changed or
its canonical state count regressed against the recorded baseline.
``--telemetry DIR`` attaches a live :class:`repro.obs.Telemetry` sink to
every engine run and writes one ``repro.obs`` run manifest per run into
DIR (render them with ``python -m repro report DIR``); the bench JSON
then carries a ``telemetry`` block naming the manifests.
See docs/EXPLORATION.md for the trajectory format and
docs/OBSERVABILITY.md for the manifest schema.
"""

import argparse
import json
import os
import sys
import time
from math import gcd
from pathlib import Path

from repro.analysis.experiments import gives_solo_opportunities, sweep_problem
from repro.analysis.metrics import contention_spread, solo_iterations
from repro.analysis.tables import print_table
from repro.baselines.named_consensus import NamedConsensus, PaddedAlgorithm
from repro.baselines.named_mutex import PetersonMutex, TournamentMutex
from repro.baselines.named_renaming import ElectionChainRenaming
from repro.cliflags import positive_workers
from repro.core.consensus import AnonymousConsensus
from repro.core.election import AnonymousElection
from repro.core.mutex import AnonymousMutex
from repro.core.renaming import AnonymousRenaming
from repro.lowerbounds.candidates import NaiveTestAndSetLock
from repro.lowerbounds.consensus_space import demonstrate_consensus_space_bound
from repro.lowerbounds.mutex_unbounded import demonstrate_mutex_impossibility
from repro.lowerbounds.renaming_space import demonstrate_renaming_space_bound
from repro.lowerbounds.symmetry import attack_group_size, run_symmetry_attack
from repro.memory.naming import (
    IdentityNaming,
    RandomNaming,
    RingNaming,
    all_namings_for_tests,
)
from repro.obs import RunManifest, Telemetry
from repro.request import RunRequest
from repro.runtime.adversary import (
    RandomAdversary,
    SoloAdversary,
    StagedObstructionAdversary,
    standard_adversaries,
)
from repro.runtime.backends import resolve_backend
from repro.runtime.canonical import TrivialCanonicalizer, build_canonicalizer
from repro.runtime.compiled import CompiledBackend
from repro.runtime.exploration import explore, mutual_exclusion_invariant
from repro.runtime.system import System
from repro.spec.consensus_spec import (
    AgreementChecker,
    ElectionChecker,
    ObstructionFreeTerminationChecker,
    ValidityChecker,
)
from repro.spec.mutex_spec import MutualExclusionChecker, mutex_checkers
from repro.spec.properties import check_all
from repro.spec.renaming_spec import (
    NameRangeChecker,
    RenamingTerminationChecker,
    UniqueNamesChecker,
)

PIDS = (101, 103, 107, 109, 113, 127, 131, 137)


def pids(n):
    return PIDS[:n]


def consensus_inputs(n):
    return {pid: f"v{k}" for k, pid in enumerate(pids(n))}


def e1_mutex():
    rows = []
    for m in (3, 5, 7, 9, 11):
        system = System(AnonymousMutex(m=m, cs_visits=3, cs_steps=2), pids(2))
        trace = system.run(RandomAdversary(0), max_steps=500_000)
        check_all(trace, mutex_checkers(m, min_entries=6))
        rows.append([m, "odd", len(trace), trace.critical_section_entries(),
                     "ME+DF hold"])
    for m in (2, 4, 6, 8, 10):
        result = run_symmetry_attack(
            AnonymousMutex(m=m, unsafe_allow_any_m=True), pids(2)
        )
        assert result.violated
        rows.append([m, "even", result.steps, 0,
                     f"{result.violation} (cycle={result.cycle_rounds} rounds)"])
    print_table(
        ["m", "parity", "events", "CS entries", "outcome"],
        rows,
        title="E1 — Thm 3.1: Fig 1 mutex works iff m is odd",
    )
    system = System(AnonymousMutex(m=3, cs_visits=1), pids(2), record_trace=False)
    res = explore(system, mutual_exclusion_invariant)
    assert res.complete and res.ok and res.stuck_states == 0
    print_table(
        ["instance", "reachable states", "events", "verdict"],
        [["Fig1 m=3 n=2 (identity naming)", res.states_explored,
          res.events_executed, "exhaustively verified"]],
        title="E1 — Thm 3.2 verified over ALL schedules",
    )


def e2_space_bounds():
    m_values, n = range(2, 13), 6
    rows = []
    for m in m_values:
        cells = []
        for l in range(2, n + 1):
            if gcd(m, l) == 1:
                cells.append("-")
                continue
            group = attack_group_size(m, l)
            result = run_symmetry_attack(
                AnonymousMutex(m=m, unsafe_allow_any_m=True),
                pids(group),
                max_rounds=50_000,
            )
            assert result.violated
            cells.append("DF" if result.violation == "deadlock-freedom" else "ME")
        rows.append([m] + cells)
    print_table(
        ["m"] + [f"l={l}" for l in range(2, n + 1)],
        rows,
        title=(
            "E2 — Thm 3.4 grid (DF/ME = attack found that violation; "
            "'-' = coprime, theorem silent)"
        ),
    )


def e3_e4_consensus():
    rows = []
    for n in (1, 2, 3, 4, 5, 6):
        system = System(AnonymousConsensus(n=n), consensus_inputs(n))
        pid = pids(n)[0]
        trace = system.run(SoloAdversary(pid), max_steps=10**6)
        iters = solo_iterations(trace, pid)
        assert iters <= 2 * n - 1
        rows.append([n, 2 * n - 1, iters, 2 * n - 1, trace.steps_taken(pid)])
    print_table(
        ["n", "registers", "solo iterations", "paper bound 2n-1", "solo steps"],
        rows,
        title="E3 — Thm 4.1: solo termination within 2n-1 iterations",
    )

    rows = []
    for n in (2, 3, 4):
        inputs = consensus_inputs(n)

        def checkers(adversary):
            battery = [AgreementChecker(), ValidityChecker(inputs)]
            if gives_solo_opportunities(adversary):
                battery.append(ObstructionFreeTerminationChecker())
            return battery

        result = sweep_problem(
            "figure-2-consensus",
            namings=all_namings_for_tests(pids(n), 2 * n - 1),
            adversaries=standard_adversaries(range(3)),
            checkers_factory=checkers,
            params={"n": n},
            request=RunRequest(max_steps=150_000),
        )
        assert result.all_ok, result.describe_failures()
        rows.append([n, result.runs, 0, "agreement+validity+OF-termination"])
    print_table(
        ["n", "runs (namings x adversaries)", "violations", "properties"],
        rows,
        title="E4 — Thms 4.1/4.2 sweep",
    )


def e5_election():
    rows = []
    for n in (2, 3, 4, 5):
        system = System(AnonymousElection(n=n), pids(n))
        trace = system.run(
            StagedObstructionAdversary(prefix_steps=40 * n, seed=1),
            max_steps=500_000,
        )
        ElectionChecker().check(trace)
        assert len(trace.decided()) == n
        rows.append([n, next(iter(trace.decided().values())), len(trace)])
    print_table(
        ["n", "unanimous winner", "events"],
        rows,
        title="E5 — §4 note: obstruction-free election from consensus",
    )


def e6_e7_e8_renaming():
    rows = []
    for n in (2, 3, 4, 5):
        system = System(AnonymousRenaming(n=n), pids(n))
        trace = system.run(
            StagedObstructionAdversary(prefix_steps=40 * n, seed=1),
            max_steps=10**6,
        )
        RenamingTerminationChecker().check(trace)
        UniqueNamesChecker().check(trace)
        NameRangeChecker(bound=n).check(trace)
        rows.append([n, 2 * n - 1, len(trace), str(sorted(trace.outputs.values()))])
    print_table(
        ["n", "registers", "events", "names acquired"],
        rows,
        title="E6/E7 — Thms 5.1/5.2: perfect renaming with 2n-1 registers",
    )

    rows = []
    n = 5
    for k in (1, 2, 3, 4, 5):
        system = System(AnonymousRenaming(n=n), pids(n)[:k])
        trace = system.run(
            StagedObstructionAdversary(prefix_steps=30 * k, seed=2),
            max_steps=10**6,
        )
        names = sorted(trace.outputs.values())
        assert names == list(range(1, k + 1))
        rows.append([n, k, str(names)])
    print_table(
        ["n (dimensioned)", "k (participants)", "names"],
        rows,
        title="E8 — Thm 5.3: adaptivity, k participants use exactly {1..k}",
    )


def e9_e10_e11_impossibility():
    rows = []
    report = demonstrate_mutex_impossibility(lambda: NaiveTestAndSetLock())
    assert report.branch == "rho-violation"
    rows.append(["Thm 6.2", "naive test-and-set lock", len(report.write_set),
                 report.branch, "mutual exclusion"])
    report = demonstrate_mutex_impossibility(lambda: AnonymousMutex(m=3))
    assert report.branch == "z-no-progress"
    rows.append(["Thm 6.2", "Fig 1 (m=3)", len(report.write_set),
                 report.branch, "deadlock-freedom"])
    for n in (2, 3, 4, 6):
        report = demonstrate_consensus_space_bound(
            lambda: AnonymousConsensus(n=n, registers=n - 1)
        )
        assert report.branch == "rho-violation"
        assert report.indistinguishability_verified
        rows.append(["Thm 6.3", f"Fig 2 (n={n}, m=n-1={n - 1})",
                     len(report.write_set), report.branch, "agreement"])
    for n in (2, 3, 4, 6):
        report = demonstrate_renaming_space_bound(
            lambda: AnonymousRenaming(n=n, registers=n - 1)
        )
        assert report.branch == "rho-violation"
        rows.append(["Thm 6.5", f"Fig 3 (n={n}, m=n-1={n - 1})",
                     len(report.write_set), report.branch, "uniqueness"])
    print_table(
        ["theorem", "candidate", "|write(y,q)|", "branch", "property broken"],
        rows,
        title=(
            "E9/E10/E11 — Section 6 covering constructions "
            "(indistinguishability verified exactly in every rho branch)"
        ),
    )


def e12_baselines():
    rows = []
    for label, algorithm in (
        ("Fig1 anonymous", AnonymousMutex(m=3, cs_visits=3)),
        ("Peterson named", PetersonMutex(cs_visits=3)),
    ):
        system = System(algorithm, pids(2))
        trace = system.run(RandomAdversary(0), max_steps=500_000)
        MutualExclusionChecker().check(trace)
        rows.append(["mutex (2 proc)", label, system.memory.size, len(trace)])
    inputs = consensus_inputs(3)
    for label, factory in (
        ("Fig2 anonymous", lambda: AnonymousConsensus(n=3)),
        ("named [5]-style", lambda: NamedConsensus(n=3)),
    ):
        system = System(factory(), inputs)
        trace = system.run(
            StagedObstructionAdversary(prefix_steps=80, seed=0), max_steps=500_000
        )
        AgreementChecker().check(trace)
        rows.append(["consensus (n=3)", label, system.memory.size, len(trace)])
    for label, factory in (
        ("Fig3 anonymous", lambda: AnonymousRenaming(n=3)),
        ("election chain named", lambda: ElectionChainRenaming(n=3)),
    ):
        system = System(factory(), pids(3))
        trace = system.run(
            StagedObstructionAdversary(prefix_steps=60, seed=1), max_steps=10**6
        )
        UniqueNamesChecker().check(trace)
        rows.append(["renaming (n=3)", label, system.memory.size, len(trace)])
    system = System(PaddedAlgorithm(AnonymousMutex(m=3, cs_visits=2), 4), pids(2))
    trace = system.run(RandomAdversary(5), max_steps=500_000)
    MutualExclusionChecker().check(trace)
    rows.append(["mutex padded to even m", "padded(Fig1, m=4) named", 4, len(trace)])
    for n in (3, 6, 8):
        system = System(TournamentMutex(n=n, cs_visits=1), pids(n))
        trace = system.run(RandomAdversary(n), max_steps=2 * 10**6)
        MutualExclusionChecker().check(trace)
        rows.append([f"mutex ({n} proc)", "tournament named",
                     system.memory.size, len(trace)])
    print_table(
        ["problem", "algorithm", "registers", "events"],
        rows,
        title="E12 — §3.2 contrast: named baselines vs anonymous algorithms",
    )


def e13_plasticity():
    rows = []
    namings = [("identity", IdentityNaming()), ("random(0)", RandomNaming(0)),
               ("random(1)", RandomNaming(1)),
               ("ring", RingNaming({pid: k for k, pid in enumerate(pids(3))}))]
    inputs = consensus_inputs(3)
    for label, naming in namings:
        system = System(AnonymousConsensus(n=3), inputs, naming=naming)
        trace = system.run(
            StagedObstructionAdversary(prefix_steps=60, seed=4), max_steps=500_000
        )
        AgreementChecker().check(trace)
        assert len(trace.decided()) == 3
        rows.append([label, len(trace), f"{contention_spread(trace):.2f}", "ok"])
    print_table(
        ["naming", "events", "write spread (max/mean)", "spec"],
        rows,
        title="E13 — §1 plasticity: Fig 2 correct under every register ordering",
    )


def e14_performance(rng_seed=5):
    rows = []
    for n in (2, 4, 6, 8):
        system = System(AnonymousConsensus(n=n), consensus_inputs(n))
        start = time.perf_counter()
        trace = system.run(SoloAdversary(pids(n)[0]), max_steps=10**6)
        elapsed = time.perf_counter() - start
        rows.append(["consensus solo", n, trace.steps_taken(pids(n)[0]),
                     f"{elapsed * 1000:.1f}ms"])
    for n in (2, 3, 4, 5):
        system = System(AnonymousRenaming(n=n), pids(n))
        start = time.perf_counter()
        trace = system.run(
            StagedObstructionAdversary(prefix_steps=50 * n, seed=rng_seed),
            max_steps=2 * 10**6,
        )
        elapsed = time.perf_counter() - start
        rows.append(["renaming staged", n, len(trace), f"{elapsed * 1000:.1f}ms"])
    system = System(AnonymousMutex(m=5, cs_visits=3), pids(2))
    start = time.perf_counter()
    trace = system.run(RandomAdversary(rng_seed), max_steps=200_000)
    elapsed = time.perf_counter() - start
    rows.append([f"mutex random(seed={rng_seed})", 2, len(trace),
                 f"{elapsed * 1000:.1f}ms"])
    for m in (3, 5):
        system = System(
            AnonymousMutex(m=m, cs_visits=1), pids(2), record_trace=False
        )
        start = time.perf_counter()
        res = explore(system, mutual_exclusion_invariant, max_states=3_000_000)
        elapsed = time.perf_counter() - start
        assert res.complete and res.ok
        rows.append([f"exploration m={m}", 2, res.states_explored,
                     f"{elapsed * 1000:.1f}ms"])
    print_table(
        ["workload", "n", "steps/states", "wall clock"],
        rows,
        title=f"E14 — performance profile (CPython, single core, rng seed {rng_seed})",
    )


# ---------------------------------------------------------------------------
# E14d — the exploration benchmark (symmetry-reduced vs seed explorer).
#
# Unlike E1-E14 this section records its numbers as a machine-readable
# trajectory (BENCH_explore.json) so CI can detect state-count
# regressions; docs/EXPLORATION.md documents the format.
# ---------------------------------------------------------------------------

#: Budgets shared by both engines on every instance.  ``max_states`` is
#: the explorer's default; ``max_depth`` is raised because the quotient
#: walk legitimately produces deeper DFS paths (one representative per
#: orbit strings previously-parallel branches into longer chains).
BENCH_BUDGETS = {"max_states": 500_000, "max_depth": 1_000_000}

#: Worker counts of the v8 parallel speedup curve (``--backend
#: parallel`` records one point per count on every bench instance).
CURVE_WORKERS = (1, 2, 4, 8)


def _bench_instances(quick):
    """(label, factory, invariant, overrides, spec, instance) rows,
    projected from the problem registry's ``"bench"``-role instances
    (``--quick`` keeps the ``bench_quick`` subset).  Labels are the
    registry's ``bench_label`` values — the stable trajectory keys of
    BENCH_explore.json.

    The two "extended budget" instances raise ``max_states`` past the
    default so the *seed* side can show its true cost: m=9 completes
    (x4.2 the canonical states), while consensus n=3 still cannot —
    the quotient's verdict there is strictly stronger at a fraction of
    the states.
    """
    from functools import partial

    from repro.problems import instances_with_role

    rows = []
    for spec, instance in instances_with_role("bench"):
        if quick and not instance.bench_quick:
            continue
        assert spec.invariant is not None, spec.key
        rows.append((
            instance.bench_label,
            partial(spec.system, instance),
            spec.invariant,
            dict(instance.bench_overrides) or None,
            spec,
            instance,
        ))
    return rows


def _rate(res):
    """Human-readable throughput; honest about untimeable walks."""
    rate = res.states_per_second
    return "n/a" if rate is None else f"{rate:,.0f}/s"


def _engine_record(res, canonicalizer=None):
    verdict = "violation" if not res.ok else (
        "exhaustive-ok" if res.complete else "bounded-ok"
    )
    rate = res.states_per_second
    record = {
        "verdict": verdict,
        "states": res.states_explored,
        "events": res.events_executed,
        "truncated_by": res.truncated_by,
        "wall_seconds": round(res.wall_seconds, 3),
        # None (JSON null) when the walk finished below timer resolution.
        "states_per_second": None if rate is None else round(rate, 1),
        "peak_visited": res.peak_visited,
    }
    if canonicalizer is not None:
        record["orbits_collapsed"] = res.orbits_collapsed
        record["group_size"] = res.group_size
        record["canonicalizer"] = canonicalizer.describe()
    return record


def _bench_slug(label):
    """Filesystem-safe manifest stem from an instance label."""
    slug = "".join(ch if ch.isalnum() else "-" for ch in label.lower())
    while "--" in slug:
        slug = slug.replace("--", "-")
    return slug.strip("-")


def _write_bench_manifest(directory, index, label, engine, budgets, record,
                          telemetry, backend="serial", workers=1):
    """Write one repro.obs run manifest for one engine run; returns its name."""
    manifest = RunManifest.create(
        kind="exploration",
        algorithm=label,
        parameters=dict(budgets, engine=engine),
        naming="identity",
        adversary="exhaustive (all schedules)",
        backend=backend,
        workers=workers,
        outcome=dict(record),
        telemetry=telemetry.snapshot(),
    )
    name = f"explore-{index:02d}-{_bench_slug(label)}-{engine}.json"
    manifest.write(directory / name)
    return name


def _bench_sweep_farm():
    """Measure the disk-backed sweep farm on a micro-grid; return a dict.

    Three numbers the baseline file tracks per release: drain
    throughput (cells/s over a fresh farm), the fixed cost a
    ``--resume`` cycle adds on an already-complete farm (open the run
    table, reset stale claims, discover nothing pending), and the disk
    footprint of the verify cell's retained edge array.
    """
    import shutil
    import tempfile

    from repro.farm import (
        GRAPHS_DIRNAME,
        create_farm,
        drain_farm,
        resume_farm,
    )

    config = {
        "problem": "figure-1-mutex",
        "instance": "figure-1-mutex(m=3)",
        "namings": [{"type": "identity"}, {"type": "random", "seed": 1}],
        "adversaries": [
            {"type": "random", "seed": 1},
            {"type": "random", "seed": 2},
            {"type": "round-robin"},
        ],
        "max_steps": 20_000,
        "retain_graph": True,
    }
    root = Path(tempfile.mkdtemp(prefix="repro-farm-bench-"))
    try:
        farm = root / "farm"
        cells = create_farm(farm, config)
        start = time.perf_counter()
        result = drain_farm(farm)
        drain_seconds = time.perf_counter() - start
        assert result.complete, "farm bench grid did not drain clean"
        start = time.perf_counter()
        resume_farm(farm)
        drain_farm(farm)
        resume_seconds = time.perf_counter() - start
        edge_bytes = sum(
            path.stat().st_size
            for path in (farm / GRAPHS_DIRNAME).rglob("edges.bin")
        )
        return {
            "grid_cells": cells,
            "cells_per_second": round(cells / drain_seconds, 2)
            if drain_seconds > 0 else None,
            "resume_overhead_seconds": round(resume_seconds, 4),
            "retained_edge_bytes": edge_bytes,
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def _bench_fuzz(rng_seed, episodes=32):
    """Measure the seeded fuzzer on one mutant and one clean instance.

    The numbers the baseline file tracks per release: schedule (episode)
    throughput, step throughput, distinct-state coverage, and certified
    violations per strategy family.  The mutant row doubles as a live
    sensitivity check — a fuzzer that stops finding Theorem 3.4's
    livelock on even m is broken, so the block asserts it; the clean row
    asserts the oracles' soundness (zero violations on odd m).
    """
    from repro.fuzz.engine import run_fuzz
    from repro.fuzz.strategies import STRATEGY_FAMILIES

    instances = {}
    for instance, expect_violation in (
        ("figure-1-mutex-even-m", True),
        ("figure-1-mutex(m=3)", False),
    ):
        start = time.perf_counter()
        report = run_fuzz(
            RunRequest(
                problem="figure-1-mutex", instance=instance, seed=rng_seed
            ),
            episodes=episodes,
        )
        elapsed = time.perf_counter() - start
        assert report.found == expect_violation, (
            f"{instance}: fuzz found={report.found}, "
            f"expected {expect_violation}"
        )
        instances[report.instance] = {
            "episodes": report.episodes_run,
            "steps": report.steps,
            "distinct_states": report.distinct_states,
            "violations": len(report.violations),
            "violations_by_family": dict(report.by_family()),
            # Wall-clock throughput is advisory (host-dependent); the
            # coverage and violation counts above are seed-deterministic.
            "schedules_per_second": (
                round(report.episodes_run / elapsed, 1) if elapsed > 0 else None
            ),
            "steps_per_second": (
                round(report.steps / elapsed, 1) if elapsed > 0 else None
            ),
        }
    return {
        "seed": rng_seed,
        "episodes": episodes,
        "families": list(STRATEGY_FAMILIES),
        "instances": instances,
    }


def exploration_benchmark(quick=False, rng_seed=5, backend="serial", workers=2,
                          telemetry_dir=None, kernel="interpreted",
                          max_states=None):
    """Run every instance under both engines; return the JSON document.

    With ``backend="parallel"`` each instance additionally runs the
    canonical explorer on a
    :class:`~repro.runtime.backends.ParallelBackend` with ``workers``
    worker processes; the record asserts verdict identity against the
    serial canonical run and stores the measured wall-clock speedup
    (``host_cpus`` is recorded alongside, because on a single-core host
    the honest speedup is necessarily < 1 — the parallel run pays IPC
    with no extra hardware to spend it on; such blocks and the document
    top level carry ``degraded_host: true``).  Each parallel block also
    records a ``curve``: the same walk at every :data:`CURVE_WORKERS`
    count with its own ``speedup_vs_serial`` point, the raw material
    for the CI smoke gate (``benchmarks/check_parallel_speedup.py``).

    With ``kernel="compiled"`` each instance additionally runs the
    table-compiled step kernel (:mod:`repro.runtime.compiled`) under
    both canonicalizers; the record asserts state-count identity against
    the interpreted runs and stores ``speedup_vs_interpreted`` — the
    compiled walk's throughput over the seed engine's on the *same*
    trivial-dedup walk, measured in the same process.

    With ``telemetry_dir`` every engine run gets a live
    :class:`repro.obs.Telemetry` sink and leaves one run manifest in
    that directory; the returned document's ``telemetry`` block lists
    the manifest file names.
    """
    shared_budgets = dict(BENCH_BUDGETS)
    if max_states is not None:
        shared_budgets["max_states"] = max_states
    parallel_backend = None
    if backend == "parallel":
        parallel_backend = resolve_backend("parallel", workers)
    if telemetry_dir is not None:
        telemetry_dir = Path(telemetry_dir)
        telemetry_dir.mkdir(parents=True, exist_ok=True)

    def bench_telemetry():
        return Telemetry() if telemetry_dir is not None else None

    manifest_names = []
    rows = []
    records = []
    for index, (label, factory, invariant, overrides, spec, instance) in (
        enumerate(_bench_instances(quick))
    ):
        budgets = dict(shared_budgets, **(overrides or {}))
        system = factory()
        seed_tel = bench_telemetry()
        seed_res = explore(
            system, invariant,
            canonicalizer=TrivialCanonicalizer(system.scheduler),
            telemetry=seed_tel,
            **budgets,
        )
        system = factory()
        canonicalizer = build_canonicalizer(system)
        canonical_tel = bench_telemetry()
        reduced_res = explore(
            system, invariant, canonicalizer=canonicalizer,
            telemetry=canonical_tel, **budgets,
        )
        assert seed_res.ok == reduced_res.ok, label
        reduction = seed_res.states_explored / reduced_res.states_explored
        newly_tractable = (not seed_res.complete) and reduced_res.complete
        record = {
            "instance": label,
            "budgets": budgets,
            "seed": _engine_record(seed_res),
            "canonical": _engine_record(reduced_res, canonicalizer),
            "reduction_factor": round(reduction, 2),
            "newly_tractable": newly_tractable,
        }
        compiled_tel = None
        if kernel == "compiled":
            domain = (
                spec.value_domain(instance.params_dict())
                if spec.value_domain is not None
                else ()
            )
            system = factory()
            compiled_tel = bench_telemetry()
            compiled_res = explore(
                system, invariant,
                canonicalizer=TrivialCanonicalizer(system.scheduler),
                backend=CompiledBackend(domain_hint=domain),
                telemetry=compiled_tel,
                **budgets,
            )
            assert compiled_res.states_explored == seed_res.states_explored, (
                f"{label}: compiled kernel explored "
                f"{compiled_res.states_explored} states, "
                f"interpreted {seed_res.states_explored}"
            )
            assert compiled_res.ok == seed_res.ok, label
            system = factory()
            compiled_canonical_res = explore(
                system, invariant,
                canonicalizer=build_canonicalizer(system),
                backend=CompiledBackend(domain_hint=domain),
                **budgets,
            )
            assert (
                compiled_canonical_res.states_explored
                == reduced_res.states_explored
            ), label
            compiled_rate = compiled_res.states_per_second
            seed_rate = seed_res.states_per_second
            speedup = (
                round(compiled_rate / seed_rate, 2)
                if compiled_rate and seed_rate
                else None
            )
            compiled_record = _engine_record(compiled_res)
            compiled_record["kernel"] = compiled_res.kernel
            compiled_record["speedup_vs_interpreted"] = speedup
            compiled_record["canonical"] = _engine_record(
                compiled_canonical_res
            )
            compiled_record["canonical"]["kernel"] = (
                compiled_canonical_res.kernel
            )
            record["compiled"] = compiled_record
        if instance.has_role("verify") and spec.liveness:
            # Graph-retention overhead: the same walk with the full
            # successor relation retained, plus the exhaustive liveness
            # analyses over it (python -m repro verify's pipeline).
            from repro.verify import verify_instance

            verify_report = verify_instance(spec, instance)
            record["verify"] = {
                "ok": verify_report.ok,
                "retained_edges": verify_report.retained_edges,
                "explore_wall_seconds": round(
                    verify_report.explore_seconds, 3
                ),
                "verify_wall_seconds": round(verify_report.verify_seconds, 3),
                "retention_overhead": (
                    round(
                        verify_report.explore_seconds / seed_res.wall_seconds,
                        2,
                    )
                    if seed_res.wall_seconds > 0
                    else None
                ),
                "properties": [
                    outcome.describe() for outcome in verify_report.outcomes
                ],
            }
        if telemetry_dir is not None:
            manifest_names.append(_write_bench_manifest(
                telemetry_dir, index, label, "seed", budgets,
                record["seed"], seed_tel,
            ))
            manifest_names.append(_write_bench_manifest(
                telemetry_dir, index, label, "canonical", budgets,
                record["canonical"], canonical_tel,
            ))
            if compiled_tel is not None:
                manifest_names.append(_write_bench_manifest(
                    telemetry_dir, index, label, "compiled", budgets,
                    record["compiled"], compiled_tel,
                    backend="compiled",
                ))
        row_tail = []
        if kernel == "compiled":
            speedup = record["compiled"]["speedup_vs_interpreted"]
            row_tail.append(
                "n/a" if speedup is None else f"x{speedup}"
            )
        if parallel_backend is not None:
            system = factory()
            par_canonicalizer = build_canonicalizer(system)
            par_tel = bench_telemetry()
            par_res = explore(
                system, invariant, canonicalizer=par_canonicalizer,
                backend=parallel_backend, telemetry=par_tel, **budgets,
            )
            par_verdict = "violation" if not par_res.ok else (
                "exhaustive-ok" if par_res.complete else "bounded-ok"
            )
            serial_verdict = record["canonical"]["verdict"]
            assert par_verdict == serial_verdict, (
                f"{label}: parallel verdict {par_verdict} "
                f"!= serial {serial_verdict}"
            )
            par_record = _engine_record(par_res, par_canonicalizer)
            par_record["backend"] = par_res.backend
            par_record["workers"] = par_res.workers
            par_record["speedup_vs_serial"] = (
                round(reduced_res.wall_seconds / par_res.wall_seconds, 2)
                if par_res.wall_seconds > 0 else None
            )
            # A single-hardware-thread host cannot show a real speedup;
            # flag the block so baseline consumers discount it.
            par_record["degraded_host"] = os.cpu_count() == 1
            # v8: the same canonical walk across the worker-count curve,
            # every point's speedup against the serial canonical wall
            # time.  Degraded hosts still record the (honest, < 1)
            # curve; gates skip it instead of failing.
            curve = []
            for count in CURVE_WORKERS:
                if count == parallel_backend.workers:
                    point_res = par_res
                else:
                    system = factory()
                    point_res = explore(
                        system, invariant,
                        canonicalizer=build_canonicalizer(system),
                        backend=resolve_backend("parallel", count),
                        **budgets,
                    )
                    point_verdict = "violation" if not point_res.ok else (
                        "exhaustive-ok" if point_res.complete
                        else "bounded-ok"
                    )
                    assert point_verdict == serial_verdict, (
                        f"{label}: parallel x{count} verdict "
                        f"{point_verdict} != serial {serial_verdict}"
                    )
                    if point_res.complete and reduced_res.complete:
                        assert (
                            point_res.states_explored
                            == reduced_res.states_explored
                        ), (
                            f"{label}: parallel x{count} explored "
                            f"{point_res.states_explored} states, "
                            f"serial {reduced_res.states_explored}"
                        )
                curve.append({
                    "workers": count,
                    "states": point_res.states_explored,
                    "wall_seconds": round(point_res.wall_seconds, 3),
                    "speedup_vs_serial": (
                        round(
                            reduced_res.wall_seconds
                            / point_res.wall_seconds, 2
                        )
                        if point_res.wall_seconds > 0 else None
                    ),
                })
            par_record["curve"] = curve
            record["parallel"] = par_record
            if telemetry_dir is not None:
                manifest_names.append(_write_bench_manifest(
                    telemetry_dir, index, label, "parallel", budgets,
                    par_record, par_tel,
                    backend="parallel", workers=par_res.workers,
                ))
            row_tail.append(f"x{par_record['speedup_vs_serial']}")
        records.append(record)
        rows.append([
            label,
            seed_res.summary().split(",")[0],
            reduced_res.summary().split(",")[0],
            f"x{reduction:.2f}",
            _rate(reduced_res),
            "NEWLY TRACTABLE" if newly_tractable else "",
        ] + row_tail)
    headers = ["instance", "seed explorer", "canonical explorer", "reduction",
               "canonical rate", ""]
    if kernel == "compiled":
        headers.append("compiled speedup")
    if parallel_backend is not None:
        headers.append(f"parallel x{parallel_backend.workers} speedup")
    print_table(
        headers,
        rows,
        title="E14d — symmetry-reduced exploration vs seed explorer",
    )
    generated = "python benchmarks/run_experiments.py --bench"
    if quick:
        generated += " --quick"
    if parallel_backend is not None:
        generated += f" --backend parallel --workers {parallel_backend.workers}"
    if kernel == "compiled":
        generated += " --kernel compiled"
    if max_states is not None:
        generated += f" --max-states {max_states}"
    if telemetry_dir is not None:
        generated += f" --telemetry {telemetry_dir}"
    return {
        "schema": "repro.bench_explore/v8",
        "generated_by": generated,
        "rng_seed": rng_seed,
        "quick": quick,
        "backend": backend,
        "kernel": kernel,
        "workers": parallel_backend.workers if parallel_backend else 1,
        "host_cpus": os.cpu_count(),
        # v8: stamped at the document top level (not just inside each
        # parallel block) so speedup gates can decide skip-vs-fail
        # without digging into per-instance records.
        "degraded_host": os.cpu_count() == 1,
        "budgets": dict(shared_budgets),
        "telemetry": {
            "enabled": telemetry_dir is not None,
            "dir": str(telemetry_dir) if telemetry_dir is not None else None,
            "manifests": manifest_names,
        },
        # v6: disk-backed sweep-farm micro-benchmark (drain throughput,
        # resume fixed cost, retained edge-array footprint).  Wall-clock
        # numbers are advisory; check_baseline reads only the
        # backend-invariant exploration fields above.
        "sweep": _bench_sweep_farm(),
        # v7: seeded fuzzer micro-benchmark (schedule throughput,
        # distinct-state coverage, certified violations per strategy
        # family on one mutant + one clean instance).
        "fuzz": _bench_fuzz(rng_seed),
        "instances": records,
    }


def check_baseline(document, baseline_path):
    """Compare a bench document against a recorded baseline.

    Returns a list of regression messages (empty = pass).  Instances are
    matched by label; instances missing from either side are skipped, so
    a ``--quick`` run checks just its subset against the full baseline.
    """
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    recorded = {rec["instance"]: rec for rec in baseline["instances"]}
    problems = []
    for rec in document["instances"]:
        base = recorded.get(rec["instance"])
        if base is None:
            continue
        for engine in ("seed", "canonical"):
            if rec[engine]["verdict"] != base[engine]["verdict"]:
                problems.append(
                    f"{rec['instance']}: {engine} verdict changed "
                    f"{base[engine]['verdict']} -> {rec[engine]['verdict']}"
                )
        if rec["canonical"]["states"] > base["canonical"]["states"]:
            problems.append(
                f"{rec['instance']}: canonical state count regressed "
                f"{base['canonical']['states']} -> {rec['canonical']['states']}"
            )
    return problems


EXPERIMENTS = [
    ("E1", e1_mutex),
    ("E2", e2_space_bounds),
    ("E3/E4", e3_e4_consensus),
    ("E5", e5_election),
    ("E6/E7/E8", e6_e7_e8_renaming),
    ("E9/E10/E11", e9_e10_e11_impossibility),
    ("E12", e12_baselines),
    ("E13", e13_plasticity),
    ("E14", e14_performance),
]


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument(
        "experiments", nargs="*",
        help="experiment names to run (e.g. E1 E12); default: all",
    )
    parser.add_argument(
        "--bench", action="store_true",
        help="run the E14d exploration benchmark instead of the tables",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="with --bench: the small CI-smoke instance subset",
    )
    parser.add_argument(
        "--bench-out", type=Path, default=None, metavar="PATH",
        help="with --bench: where to write the JSON trajectory "
             "(default: benchmarks/BENCH_explore.json for full runs)",
    )
    parser.add_argument(
        "--check-baseline", type=Path, default=None, metavar="PATH",
        help="with --bench: compare against a recorded BENCH_explore.json "
             "and exit non-zero on verdict or state-count regressions",
    )
    parser.add_argument(
        "--telemetry", type=Path, default=None, metavar="DIR",
        help="with --bench: attach a live Telemetry sink to every engine "
             "run and write one repro.obs run manifest per run into DIR "
             "(render with: python -m repro report DIR)",
    )
    parser.add_argument(
        "--seed", type=int, default=5, metavar="N",
        help="RNG seed for the randomised E14 workloads (default: 5); "
             "recorded in the bench JSON",
    )
    parser.add_argument(
        "--backend", choices=("serial", "parallel"), default="serial",
        help="with --bench: also run the canonical explorer on this "
             "exploration backend and record per-backend wall time "
             "(default: serial only)",
    )
    parser.add_argument(
        "--workers", type=positive_workers, default=4, metavar="N",
        help="with --backend parallel: worker process count (default: 4)",
    )
    parser.add_argument(
        "--kernel", choices=("interpreted", "compiled"),
        default="interpreted",
        help="with --bench: also run the table-compiled step kernel on "
             "every instance and record its speedup over the seed engine "
             "(default: interpreted only)",
    )
    parser.add_argument(
        "--max-states", type=int, default=None, metavar="N",
        help="with --bench: override the shared max_states exploration "
             "budget (instance-level bench_overrides still apply on top)",
    )
    args = parser.parse_args(argv)

    if args.bench:
        document = exploration_benchmark(
            quick=args.quick, rng_seed=args.seed,
            backend=args.backend, workers=args.workers,
            telemetry_dir=args.telemetry, kernel=args.kernel,
            max_states=args.max_states,
        )
        out = args.bench_out
        if out is None and not args.quick:
            out = Path(__file__).parent / "BENCH_explore.json"
        if out is not None:
            out.write_text(json.dumps(document, indent=1) + "\n")
            print(f"wrote {out}")
        if args.telemetry is not None:
            count = len(document["telemetry"]["manifests"])
            print(f"wrote {count} run manifests to {args.telemetry}")
        if args.check_baseline is not None:
            problems = check_baseline(document, args.check_baseline)
            for problem in problems:
                print(f"REGRESSION: {problem}")
            if problems:
                return 1
            print(f"baseline check passed ({args.check_baseline})")
        return 0

    start = time.perf_counter()
    for name, fn in EXPERIMENTS:
        if args.experiments and not any(s in name for s in args.experiments):
            continue
        if fn is e14_performance:
            fn(rng_seed=args.seed)
        else:
            fn()
    print(f"all experiments reproduced in {time.perf_counter() - start:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
