"""E17 — empirical probes of the paper's stated open problems (§8).

    "Several questions are left open: the existence of deadlock-free
    mutual exclusion algorithms for more than two processes, the
    existence of starvation-free mutual exclusion algorithms, finding
    tight space bounds for consensus and renaming..."

These are *probes*, not answers: bounded searches and adversarial
sampling that chart where the paper's own algorithms stand inside the
open territory.  Findings (recorded in EXPERIMENTS.md):

* **Figure 1 with three processes** (the n > 2 open problem): across
  bounded-exhaustive exploration and heavy schedule sampling we find
  **no mutual-exclusion violation** — consistent with the structural
  observation that entry requires *all* m registers while competitors
  can only write into 0-valued ones, so at most their pending covering
  writes can land after an entry.  What remains genuinely open is
  *deadlock-freedom*, a liveness property our bounded safety search
  cannot settle.
* **The consensus space gap** (n <= m < 2n-1): Theorem 6.3 kills m =
  n-1; Figure 2 needs m = 2n-1.  Probing Figure 2 itself inside the gap
  (n = 2, m = 2) the model checker finds an **agreement violation in
  101 states** — Figure 2's majority arithmetic specifically needs
  2n-1, so closing the gap needs a different algorithm (or a stronger
  bound), exactly as the paper leaves it.
"""

from repro.analysis.tables import render_table
from repro.core.consensus import AnonymousConsensus
from repro.core.mutex import AnonymousMutex
from repro.memory.naming import RandomNaming
from repro.runtime.adversary import AlternatingBurstAdversary, RandomAdversary
from repro.runtime.exploration import (
    agreement_invariant,
    conjoin,
    explore,
    mutual_exclusion_invariant,
    validity_invariant,
)
from repro.runtime.system import System
from repro.spec.mutex_spec import MutualExclusionChecker

from benchmarks.conftest import pids


def fig1_three_process_bounded_search(max_states=150_000):
    system = System(
        AnonymousMutex(m=5, cs_visits=1, unsafe_allow_any_m=True),
        pids(3),
        record_trace=False,
    )
    return explore(
        system,
        mutual_exclusion_invariant,
        max_states=max_states,
        max_depth=10_000_000,
    )


def test_e17_fig1_three_processes_bounded_exploration(benchmark):
    result = benchmark.pedantic(
        fig1_three_process_bounded_search, rounds=1, iterations=1
    )
    assert result.ok, result.violation  # no ME violation in the searched space
    assert result.stuck_states == 0
    print(render_table(
        ["instance", "states searched", "ME violations", "stuck states"],
        [["Fig1 n=3 m=5", result.states_explored, 0, result.stuck_states]],
        title="E17a (open problem probe: Fig 1 beyond two processes — safety)",
    ))


def fig1_three_process_sampling(runs_per_seed=10):
    checker = MutualExclusionChecker()
    violations = 0
    runs = 0
    entries = 0
    for naming_seed in range(4):
        for seed in range(runs_per_seed):
            system = System(
                AnonymousMutex(
                    m=5, cs_visits=2, cs_steps=3, unsafe_allow_any_m=True
                ),
                pids(3),
                naming=RandomNaming(naming_seed),
            )
            adversary = (
                RandomAdversary(seed)
                if seed % 2
                else AlternatingBurstAdversary(seed=seed, max_burst=8)
            )
            trace = system.run(adversary, max_steps=30_000)
            runs += 1
            entries += trace.critical_section_entries()
            if not checker.holds(trace):
                violations += 1
    return runs, violations, entries


def test_e17_fig1_three_processes_sampling(benchmark):
    runs, violations, entries = benchmark.pedantic(
        fig1_three_process_sampling, rounds=1, iterations=1
    )
    assert violations == 0
    print(render_table(
        ["runs", "ME violations", "CS entries observed"],
        [[runs, violations, entries]],
        title="E17b (Fig 1 n=3 sampling: progress happens, ME never breaks)",
    ))


def fig2_in_the_gap():
    inputs = {101: "a", 103: "b"}
    system = System(
        AnonymousConsensus(n=2, registers=2), inputs, record_trace=False
    )
    return explore(
        system,
        conjoin(agreement_invariant, validity_invariant),
        max_states=500_000,
    )


def test_e17_fig2_inside_the_space_gap(benchmark):
    result = benchmark.pedantic(fig2_in_the_gap, rounds=1, iterations=1)
    # Figure 2 itself is NOT safe at m = 2 (its thresholds assume 2n-1);
    # the model checker exhibits the violating schedule.
    assert result.violation is not None
    assert result.violation_schedule
    print(render_table(
        ["instance", "states to violation", "schedule length", "verdict"],
        [["Fig2 n=2 m=2", result.states_explored,
          len(result.violation_schedule),
          "agreement violated (gap stays open)"]],
        title="E17c (consensus space gap: Fig 2 needs its full 2n-1)",
    ))


def test_e17_fig2_violation_schedule_replays(benchmark):
    """The found schedule is a concrete artifact: replay it."""
    result = fig2_in_the_gap()

    def replay():
        inputs = {101: "a", 103: "b"}
        system = System(
            AnonymousConsensus(n=2, registers=2), inputs, record_trace=False
        )
        for pid in result.violation_schedule:
            system.scheduler.step(pid)
        return system

    system = benchmark(replay)
    assert agreement_invariant(system) is not None
    decided = {
        pid: system.scheduler.output_of(pid)
        for pid in pids(2)
        if system.scheduler.runtime(pid).halted
    }
    print(render_table(
        ["decisions after replay"],
        [[str(decided)]],
        title="E17d (the violating run, replayed deterministically)",
    ))


def starvation_probe():
    """§8's other open problem: starvation-free anonymous mutex.

    Measure worst-case bypass (how often a continuously waiting process
    is overtaken) for Figure 1 vs the named Peterson baseline.
    """
    from repro.baselines.named_mutex import PetersonMutex
    from repro.spec.mutex_spec import BoundedBypassChecker

    checker = BoundedBypassChecker(bound=1)
    rows = []
    for label, factory, adversary_factory in (
        (
            "Peterson (named)",
            lambda: PetersonMutex(cs_visits=5),
            lambda seed: RandomAdversary(seed),
        ),
        (
            "Fig 1 (anonymous, m=3)",
            lambda: AnonymousMutex(m=3, cs_visits=5),
            lambda seed: AlternatingBurstAdversary(seed=seed, max_burst=12),
        ),
    ):
        worst = 0
        for seed in range(20):
            system = System(factory(), pids(2))
            trace = system.run(adversary_factory(seed), max_steps=100_000)
            worst = max(worst, checker.max_bypass(trace)[0])
        rows.append([label, worst])
    return rows


def test_e17_starvation_freedom_probe(benchmark):
    rows = benchmark.pedantic(starvation_probe, rounds=1, iterations=1)
    print(render_table(
        ["algorithm", "worst observed bypass"], rows,
        title=(
            "E17e (starvation probe: Peterson's turn-taking bounds bypass "
            "at 1; Fig 1 admits unbounded overtaking — starvation-free "
            "anonymous mutex is §8-open)"
        ),
    ))
    by_label = dict(rows)
    assert by_label["Peterson (named)"] <= 1
    assert by_label["Fig 1 (anonymous, m=3)"] >= 3
