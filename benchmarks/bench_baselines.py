"""E12 — the §3.2 contrast: what prior agreement buys you.

Head-to-head measurements of the anonymous algorithms against their
named-model baselines under identical schedules, plus executable
versions of §3.2's three named-model properties:

1. register padding works (ignore the extras) — only with names;
2. n-process mutual exclusion exists for every n (tournament) — the
   anonymous model's Figure 1 is two-process only and needs odd m;
3. no parity constraint on the register count.
"""

import pytest

from repro.analysis.tables import render_table
from repro.baselines.named_consensus import NamedConsensus, PaddedAlgorithm
from repro.baselines.named_mutex import PetersonMutex, TournamentMutex
from repro.baselines.named_renaming import ElectionChainRenaming
from repro.core.consensus import AnonymousConsensus
from repro.core.mutex import AnonymousMutex
from repro.core.renaming import AnonymousRenaming
from repro.runtime.adversary import RandomAdversary, StagedObstructionAdversary
from repro.runtime.system import System
from repro.spec.consensus_spec import AgreementChecker
from repro.spec.mutex_spec import MutualExclusionChecker
from repro.spec.renaming_spec import UniqueNamesChecker

from benchmarks.conftest import consensus_inputs, pids


def mutex_duel(seed: int = 0):
    """Figure 1 vs Peterson: same schedule seeds, steps to completion."""
    rows = []
    for name, algorithm in (
        ("Fig1 anonymous (m=3)", AnonymousMutex(m=3, cs_visits=3)),
        ("Peterson named (m=3)", PetersonMutex(cs_visits=3)),
    ):
        system = System(algorithm, pids(2))
        trace = system.run(RandomAdversary(seed), max_steps=500_000)
        MutualExclusionChecker().check(trace)
        rows.append([name, 3, len(trace), trace.critical_section_entries()])
    return rows


def test_e12_mutex_anonymous_vs_named(benchmark):
    rows = benchmark(mutex_duel)
    print(render_table(
        ["algorithm", "registers", "events", "CS entries"], rows,
        title="E12a (mutex: anonymity costs steps, not correctness)",
    ))
    assert all(row[3] == 6 for row in rows)


def consensus_duel(n: int = 3, seed: int = 0):
    inputs = consensus_inputs(n)
    rows = []
    for name, factory in (
        ("Fig2 anonymous", lambda: AnonymousConsensus(n=n)),
        ("named ([5]-style, staggered)", lambda: NamedConsensus(n=n)),
    ):
        system = System(factory(), inputs)
        adversary = StagedObstructionAdversary(prefix_steps=80, seed=seed)
        trace = system.run(adversary, max_steps=500_000)
        AgreementChecker().check(trace)
        rows.append([name, system.memory.size, len(trace), len(trace.decided())])
    return rows


def test_e12_consensus_anonymous_vs_named(benchmark):
    rows = benchmark(consensus_duel)
    print(render_table(
        ["algorithm", "registers", "events", "decided"], rows,
        title="E12b (consensus duel, n=3)",
    ))
    assert all(row[3] == 3 for row in rows)


def renaming_duel(n: int = 3, seed: int = 1):
    rows = []
    for name, factory in (
        ("Fig3 anonymous (2n-1 regs)", lambda: AnonymousRenaming(n=n)),
        ("election chain ((n-1)(2n-1) regs)", lambda: ElectionChainRenaming(n=n)),
    ):
        system = System(factory(), pids(n))
        adversary = StagedObstructionAdversary(prefix_steps=60, seed=seed)
        trace = system.run(adversary, max_steps=1_000_000)
        UniqueNamesChecker().check(trace)
        rows.append([name, system.memory.size, len(trace),
                     sorted(trace.outputs.values())])
    return rows


def test_e12_renaming_anonymous_vs_named(benchmark):
    rows = benchmark(renaming_duel)
    print(render_table(
        ["algorithm", "registers", "events", "names"], rows,
        title="E12c (renaming duel, n=3: anonymity saves (n-2)(2n-1) registers)",
    ))
    # The named chain needs (n-1)(2n-1) registers vs Fig 3's 2n-1.
    assert rows[0][1] < rows[1][1]


def padding_works():
    """§3.2 property 1: run Fig 1 (m=3) inside 4 registers, named model."""
    system = System(PaddedAlgorithm(AnonymousMutex(m=3, cs_visits=2), 4), pids(2))
    trace = system.run(RandomAdversary(5), max_steps=500_000)
    MutualExclusionChecker().check(trace)
    return trace


def test_e12_padding_in_named_model(benchmark):
    trace = benchmark(padding_works)
    assert trace.stop_reason == "all-halted"
    print(render_table(
        ["total registers", "used", "pad untouched", "verdict"],
        [[4, 3, all(v == 0 for v in trace.final_values[3:]),
          "even total works WITH names"]],
        title="E12d (§3.2 padding: forbidden anonymously by Thm 3.1)",
    ))


@pytest.mark.parametrize("n", [3, 4, 6, 8])
def test_e12_tournament_scales_beyond_two(benchmark, n):
    def run():
        system = System(TournamentMutex(n=n, cs_visits=1), pids(n))
        trace = system.run(RandomAdversary(n), max_steps=2_000_000)
        MutualExclusionChecker().check(trace)
        return trace

    trace = benchmark(run)
    assert trace.critical_section_entries() == n
    print(render_table(
        ["n", "registers", "events", "CS entries"],
        [[n, 3 * (len(trace.final_values) // 3), len(trace),
          trace.critical_section_entries()]],
        title=f"E12e (named tournament, n={n}: open problem anonymously)",
    ))


def renaming_three_way(n: int = 4, seed: int = 2):
    """Fig 3 vs election chain vs splitter grid: the full trade-off."""
    from repro.baselines.splitter_renaming import SplitterRenaming
    from repro.runtime.adversary import RoundRobinAdversary

    rows = []
    for label, factory, adversary, name_space in (
        ("Fig3 anonymous (perfect, OF)", lambda: AnonymousRenaming(n=n),
         StagedObstructionAdversary(prefix_steps=60, seed=seed), n),
        ("election chain (perfect, named)", lambda: ElectionChainRenaming(n=n),
         StagedObstructionAdversary(prefix_steps=60, seed=seed), n),
        ("splitter grid (wait-free, named)", lambda: SplitterRenaming(n=n),
         RoundRobinAdversary(), n * (n + 1) // 2),
    ):
        system = System(factory(), pids(n))
        trace = system.run(adversary, max_steps=10**6)
        UniqueNamesChecker().check(trace)
        rows.append([
            label, system.memory.size, name_space, len(trace),
            str(sorted(trace.outputs.values())),
        ])
    return rows


def test_e12_renaming_three_way(benchmark):
    rows = benchmark.pedantic(renaming_three_way, rounds=1, iterations=1)
    print(render_table(
        ["algorithm", "registers", "name space", "events", "names"], rows,
        title=(
            "E12f (renaming trade-off triangle: anonymity vs space vs "
            "progress — the splitter grid even finishes under strict "
            "round-robin, where the obstruction-free algorithms may not)"
        ),
    ))
    assert len(rows) == 3
