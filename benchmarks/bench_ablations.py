"""E15 (ablation) — the algorithms' load-bearing constants, moved.

DESIGN.md calls out two constants whose exact values carry the proofs:

* Figure 1's give-up threshold ``ceil(m/2)``: lower and the processes
  are too stubborn (nobody yields on a split — livelock); higher and
  they are too skittish (everyone always resets — symmetric livelock);
* Figure 2's adoption threshold ``n`` over ``2n - 1`` registers: the
  strict-majority uniqueness behind Theorem 4.1's agreement argument.

The ablation runs the *wrong* constants through the same machinery that
certifies the right ones — deterministic split schedules with state-cycle
detection, the lockstep attack, exhaustive exploration — and tabulates
which property breaks where.
"""

from repro.analysis.tables import render_table
from repro.extensions.variants import LenientConsensus, ThresholdMutex
from repro.lowerbounds.symmetry import run_symmetry_attack
from repro.runtime.exploration import (
    agreement_invariant,
    explore,
    mutual_exclusion_invariant,
)
from repro.runtime.system import System

from benchmarks.conftest import pids
from tests.extensions.test_variants import run_to_cycle_or_completion


def mutex_threshold_sweep(m: int = 3):
    """Outcome of the deterministic 2-1 split per threshold value."""
    p1, p2 = pids(2)
    rows = []
    for t in range(1, m + 1):
        system = System(ThresholdMutex(m=m, threshold=t), (p1, p2))
        prefix = [p1, p1, p1, p1, p2, p2, p2, p2]
        outcome = run_to_cycle_or_completion(system, prefix)
        note = "paper's ceil(m/2)" if t == (m + 1) // 2 else ""
        rows.append([t, outcome, note])
    return rows


def test_e15_mutex_threshold_split_behaviour(benchmark):
    rows = benchmark.pedantic(mutex_threshold_sweep, rounds=1, iterations=1)
    print(render_table(
        ["threshold t", "2-1 split outcome", "note"], rows,
        title="E15a (Fig 1 give-up threshold vs the deterministic split)",
    ))
    by_t = {row[0]: row[1] for row in rows}
    assert by_t[1] == "livelock"      # stubborn: nobody yields
    assert by_t[2] == "completed"     # the paper's ceil(3/2)


def test_e15_mutex_threshold_me_is_threshold_proof(benchmark):
    def sweep():
        results = []
        for t in (1, 2, 3):
            system = System(
                ThresholdMutex(m=3, threshold=t), pids(2), record_trace=False
            )
            results.append(
                (t, explore(system, mutual_exclusion_invariant, max_states=500_000))
            )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[t, r.states_explored, "safe" if r.ok else "VIOLATED"]
            for t, r in results]
    print(render_table(
        ["threshold t", "states", "mutual exclusion"], rows,
        title="E15b (ME needs all m registers, so it survives any t)",
    ))
    assert all(r.ok for _, r in results)


def test_e15_mutex_skittish_threshold_lockstep(benchmark):
    result = benchmark(
        run_symmetry_attack, ThresholdMutex(m=4, threshold=4), pids(2)
    )
    assert result.violation == "deadlock-freedom"
    print(render_table(
        ["threshold", "violation", "cycle rounds"],
        [[4, result.violation, result.cycle_rounds]],
        title="E15c (t=m: everyone always resets; symmetric livelock)",
    ))


def consensus_threshold_sweep():
    """Exhaustive n=2 agreement check per adoption threshold."""
    inputs = {101: "a", 103: "b"}
    rows = []
    for t in (1, 2):
        system = System(
            LenientConsensus(n=2, threshold=t), inputs, record_trace=False
        )
        result = explore(
            system, agreement_invariant, max_states=500_000, max_depth=100_000
        )
        rows.append([
            t,
            result.states_explored,
            "agreement holds (exhaustive)" if result.ok else
            f"AGREEMENT VIOLATED: {result.violation}",
        ])
    return rows


def test_e15_consensus_threshold_exhaustive(benchmark):
    rows = benchmark.pedantic(consensus_threshold_sweep, rounds=1, iterations=1)
    print(render_table(
        ["adoption threshold t", "states", "verdict"], rows,
        title=(
            "E15d (Fig 2 adoption threshold, n=2, exhaustive: the n=2 "
            "instance tolerates t=1 — the proof needs t=n, the tiny "
            "instance does not expose the gap)"
        ),
    ))
    assert len(rows) == 2
