"""E9/E10/E11 — the Section 6 covering constructions, end to end.

Each test executes the corresponding proof's run construction against a
concrete candidate and asserts the violation the theorem predicts:

* E9 (Thm 6.2): mutual exclusion with unknown #processes — the naive
  lock dies in rho with two CS occupants; Figure 1 dies earlier, in the
  P-only run z (deadlock-freedom);
* E10 (Thm 6.3): Figure 2 with n-1 registers — two different decisions;
* E11 (Thm 6.5): Figure 3 with n-1 registers — the name 1 handed out
  twice.

Timings show the constructions are cheap: the proofs are executable at
interactive speed.
"""

import pytest

from repro.analysis.tables import render_table
from repro.core.consensus import AnonymousConsensus
from repro.core.mutex import AnonymousMutex
from repro.core.renaming import AnonymousRenaming
from repro.lowerbounds.candidates import NaiveTestAndSetLock
from repro.lowerbounds.consensus_space import demonstrate_consensus_space_bound
from repro.lowerbounds.mutex_unbounded import demonstrate_mutex_impossibility
from repro.lowerbounds.renaming_space import demonstrate_renaming_space_bound


def test_e9_mutex_naive_lock(benchmark):
    report = benchmark(
        demonstrate_mutex_impossibility, lambda: NaiveTestAndSetLock()
    )
    assert report.branch == "rho-violation"
    assert report.indistinguishability_verified
    print(
        render_table(
            ["candidate", "|write(y,q)|", "branch", "violated"],
            [[report.algorithm, len(report.write_set), report.branch,
              "mutual exclusion"]],
            title="E9 (Theorem 6.2, safety branch)",
        )
    )


@pytest.mark.parametrize("m", [3, 5])
def test_e9_mutex_fig1(benchmark, m):
    report = benchmark(
        demonstrate_mutex_impossibility, lambda: AnonymousMutex(m=m)
    )
    assert report.branch == "z-no-progress"
    print(
        render_table(
            ["candidate", "|write(y,q)|", "branch", "violated"],
            [[report.algorithm, len(report.write_set), report.branch,
              "deadlock-freedom"]],
            title=f"E9 (Theorem 6.2, progress branch, m={m})",
        )
    )


@pytest.mark.parametrize("n", [2, 3, 4, 6])
def test_e10_consensus_space(benchmark, n):
    report = benchmark(
        demonstrate_consensus_space_bound,
        lambda: AnonymousConsensus(n=n, registers=n - 1),
    )
    assert report.branch == "rho-violation"
    assert report.indistinguishability_verified
    decided = {p: v for p, v in report.p_outcomes.items() if v is not None}
    assert report.q_outcome not in decided.values()
    print(
        render_table(
            ["n", "registers", "q decided", "P decided", "violated"],
            [[n, n - 1, report.q_outcome, sorted(set(decided.values())),
              "agreement"]],
            title=f"E10 (Theorem 6.3, n={n})",
        )
    )


@pytest.mark.parametrize("n", [2, 3, 4, 6])
def test_e11_renaming_space(benchmark, n):
    report = benchmark(
        demonstrate_renaming_space_bound,
        lambda: AnonymousRenaming(n=n, registers=n - 1),
    )
    assert report.branch == "rho-violation"
    assert report.q_outcome == 1
    assert 1 in report.p_outcomes.values()
    print(
        render_table(
            ["n", "registers", "duplicated name", "violated"],
            [[n, n - 1, 1, "uniqueness"]],
            title=f"E11 (Theorem 6.5, n={n})",
        )
    )
