#!/usr/bin/env python3
"""CI gate for the work-stealing parallel backend's speedup claim.

Runs the mutex m=7 bench instance (the headline row of
``BENCH_explore.json``) under the serial reference backend, then under
the shared-memory work-stealing :class:`ParallelBackend` at every
worker count on the curve (1/2/4 by default) — same trivial-dedup
walk, same budgets.  At every point the deterministic result fields
(verdict, completeness, state/event counters, retained graph bytes)
must be bit-identical to the serial walk; the throughput gate then
requires ``speedup_vs_serial > threshold`` at the top of the curve.

On a single-CPU host a real speedup is impossible — the parallel run
pays IPC with no extra hardware to spend it on.  The correctness
asserts still run and the measured (honestly degraded) curve is
printed, but the throughput gate is skipped (exit 0), not failed.

Run with:   PYTHONPATH=src python benchmarks/check_parallel_speedup.py
"""

import argparse
import os
import sys

from repro.core.mutex import AnonymousMutex
from repro.runtime.backends import ParallelBackend, SerialBackend
from repro.runtime.canonical import TrivialCanonicalizer
from repro.runtime.exploration import explore, mutual_exclusion_invariant
from repro.runtime.system import System

PIDS = (101, 103)

#: The exploration benchmark's budgets (BENCH_BUDGETS in
#: run_experiments.py) — m=7 completes exhaustively well inside them.
BUDGETS = {"max_states": 500_000, "max_depth": 1_000_000}

#: Worker counts measured, lowest to highest; the gate reads the last.
CURVE = (1, 2, 4)

#: Result fields that are deterministic across backends and worker
#: counts on a complete trivial-dedup walk (docs/EXPLORATION.md).
IDENTICAL_FIELDS = (
    "ok",
    "complete",
    "truncated_by",
    "states_explored",
    "events_executed",
    "stuck_states",
    "peak_visited",
)


def run(m, backend):
    system = System(AnonymousMutex(m=m, cs_visits=1), PIDS, record_trace=False)
    return explore(
        system,
        mutual_exclusion_invariant,
        canonicalizer=TrivialCanonicalizer(system.scheduler),
        backend=backend,
        retain_graph=True,
        **BUDGETS,
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--m", type=int, default=7, metavar="M",
        help="mutex register count (default: 7, the headline instance)",
    )
    parser.add_argument(
        "--threshold", type=float, default=1.0, metavar="X",
        help="minimum serial/parallel wall-clock ratio at the top of "
             "the worker curve (default: 1.0 — any real speedup)",
    )
    args = parser.parse_args(argv)

    serial = run(args.m, SerialBackend())
    assert serial.graph is not None
    serial_bytes = serial.graph.to_bytes()
    print(
        f"mutex m={args.m}: serial {serial.states_explored} states "
        f"in {serial.wall_seconds:.3f}s"
    )

    top_speedup = None
    for workers in CURVE:
        parallel = run(args.m, ParallelBackend(workers=workers))
        assert parallel.kernel == "compiled", (
            f"x{workers}: parallel backend fell back to the interpreter"
        )
        for field in IDENTICAL_FIELDS:
            got, want = getattr(parallel, field), getattr(serial, field)
            assert got == want, (
                f"x{workers}: {field} diverged from serial: "
                f"{got!r} != {want!r}"
            )
        assert parallel.graph is not None
        assert parallel.graph.to_bytes() == serial_bytes, (
            f"x{workers}: retained StateGraph bytes diverged from serial"
        )
        speedup = (
            serial.wall_seconds / parallel.wall_seconds
            if parallel.wall_seconds > 0 else None
        )
        top_speedup = speedup
        shown = "n/a" if speedup is None else f"x{speedup:.2f}"
        print(
            f"  workers={workers}: {parallel.wall_seconds:.3f}s "
            f"-> speedup_vs_serial {shown} (bit-identical: yes)"
        )

    host_cpus = os.cpu_count() or 1
    if host_cpus == 1:
        print(
            "degraded host (1 cpu): correctness asserts passed; "
            "speedup gate skipped, not failed"
        )
        return 0
    if top_speedup is None:
        print("walk finished below timer resolution; cannot gate speedup")
        return 1
    if top_speedup <= args.threshold:
        print(
            f"FAIL: parallel x{CURVE[-1]} speedup x{top_speedup:.2f} is "
            f"not above the x{args.threshold} gate on a "
            f"{host_cpus}-cpu host"
        )
        return 1
    print("parallel speedup gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
