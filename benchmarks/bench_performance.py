"""E14 — performance profile of the reproduction (not a paper claim).

Scaling measurements that a downstream user of the library cares about:

* simulator throughput (scheduler events per second);
* consensus cost vs n — solo (the 2n-1 iteration regime) and contended;
* renaming cost vs n (rounds compound: ~n elections back to back);
* exhaustive-exploration cost vs register count for Figure 1.

Absolute numbers are CPython-on-a-laptop figures; the shapes (linear
solo cost, superlinear contended cost, exponential state growth) are
the meaningful part.
"""

import pytest

from repro.analysis.tables import render_table
from repro.core.consensus import AnonymousConsensus
from repro.core.mutex import AnonymousMutex
from repro.core.renaming import AnonymousRenaming
from repro.runtime.adversary import (
    RandomAdversary,
    SoloAdversary,
    StagedObstructionAdversary,
)
from repro.runtime.exploration import explore, mutual_exclusion_invariant
from repro.runtime.system import System

from benchmarks.conftest import consensus_inputs, pids


def scheduler_throughput_workload():
    """A fixed 20k-event mutex run: measures raw simulator speed."""
    system = System(AnonymousMutex(m=5, cs_visits=10**9), pids(2))
    return system.run(RandomAdversary(0), max_steps=20_000)


def test_e14_scheduler_throughput(benchmark):
    trace = benchmark(scheduler_throughput_workload)
    assert len(trace) == 20_000
    print(render_table(
        ["workload", "events"],
        [["Fig1 m=5 contended", len(trace)]],
        title="E14a (simulator throughput; see timing table)",
    ))


@pytest.mark.parametrize("n", [2, 4, 6, 8])
def test_e14_consensus_solo_scaling(benchmark, n):
    def run():
        system = System(AnonymousConsensus(n=n), consensus_inputs(n))
        return system.run(SoloAdversary(pids(n)[0]), max_steps=10**6)

    trace = benchmark(run)
    steps = trace.steps_taken(pids(n)[0])
    # Solo cost is Theta(m^2) = Theta(n^2): m iterations of m reads.
    assert steps <= (2 * n) ** 2 + 4 * n
    print(render_table(
        ["n", "registers", "solo steps", "~bound (2n)^2"],
        [[n, 2 * n - 1, steps, (2 * n) ** 2]],
        title=f"E14b (consensus solo scaling, n={n})",
    ))


@pytest.mark.parametrize("n", [2, 3, 4, 5])
def test_e14_consensus_contended_scaling(benchmark, n):
    def run():
        system = System(AnonymousConsensus(n=n), consensus_inputs(n))
        adversary = StagedObstructionAdversary(prefix_steps=50 * n, seed=3)
        return system.run(adversary, max_steps=10**6)

    trace = benchmark(run)
    assert len(trace.decided()) == n
    print(render_table(
        ["n", "events to all-decided"],
        [[n, len(trace)]],
        title=f"E14c (consensus contended scaling, n={n})",
    ))


@pytest.mark.parametrize("n", [2, 3, 4, 5])
def test_e14_renaming_scaling(benchmark, n):
    def run():
        system = System(AnonymousRenaming(n=n), pids(n))
        adversary = StagedObstructionAdversary(prefix_steps=50 * n, seed=5)
        return system.run(adversary, max_steps=2 * 10**6)

    trace = benchmark(run)
    assert len(trace.decided()) == n
    print(render_table(
        ["n", "events to all-named"],
        [[n, len(trace)]],
        title=f"E14d (renaming scaling, n={n})",
    ))


@pytest.mark.parametrize("m", [3, 5])
def test_e14_exploration_state_growth(benchmark, m):
    def run():
        system = System(
            AnonymousMutex(m=m, cs_visits=1), pids(2), record_trace=False
        )
        return explore(system, mutual_exclusion_invariant, max_states=3_000_000)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.complete and result.ok
    print(render_table(
        ["m", "reachable states", "events explored"],
        [[m, result.states_explored, result.events_executed]],
        title=f"E14e (exhaustive exploration growth, m={m})",
    ))
