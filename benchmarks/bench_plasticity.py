"""E13 — §1's "plasticity": anonymous algorithms tolerate any ordering.

    "The plasticity of memory-anonymous algorithms — their ability to
    operate for any assigned ordering of the registers — may be found
    useful in practice.  When using such algorithms, specific ordering
    can be assigned for reducing memory contention."

Two measurements:

* outcome invariance — Figure 2 and Figure 3 runs under identity,
  random and ring namings (same schedule seed) all satisfy their specs;
  the *decision* may legitimately differ (the schedule interacts with
  the naming), but correctness never does;
* contention spread — how evenly each naming distributes register
  traffic, the practical knob the paper points at.
"""

from repro.analysis.metrics import contention_spread, register_contention
from repro.analysis.tables import render_table
from repro.core.consensus import AnonymousConsensus
from repro.core.mutex import AnonymousMutex
from repro.core.renaming import AnonymousRenaming
from repro.memory.naming import IdentityNaming, RandomNaming, RingNaming
from repro.runtime.adversary import RandomAdversary, StagedObstructionAdversary
from repro.runtime.system import System
from repro.spec.consensus_spec import AgreementChecker
from repro.spec.mutex_spec import MutualExclusionChecker
from repro.spec.renaming_spec import UniqueNamesChecker

from benchmarks.conftest import consensus_inputs, pids


def namings(n, m):
    result = [("identity", IdentityNaming())]
    result += [(f"random(seed={s})", RandomNaming(s)) for s in (0, 1)]
    result.append(
        ("ring(rotated)", RingNaming({pid: k for k, pid in enumerate(pids(n))}))
    )
    return result


def consensus_across_namings(n: int = 3, seed: int = 4):
    inputs = consensus_inputs(n)
    rows = []
    for label, naming in namings(n, 2 * n - 1):
        system = System(AnonymousConsensus(n=n), inputs, naming=naming)
        adversary = StagedObstructionAdversary(prefix_steps=60, seed=seed)
        trace = system.run(adversary, max_steps=500_000)
        AgreementChecker().check(trace)
        rows.append([label, len(trace), len(trace.decided()),
                     f"{contention_spread(trace):.2f}"])
    return rows


def test_e13_consensus_plasticity(benchmark):
    rows = benchmark(consensus_across_namings)
    print(render_table(
        ["naming", "events", "decided", "write spread (max/mean)"], rows,
        title="E13a (Fig 2 under every naming: correct everywhere)",
    ))
    assert all(row[2] == 3 for row in rows)


def renaming_across_namings(n: int = 3, seed: int = 6):
    rows = []
    for label, naming in namings(n, 2 * n - 1):
        system = System(AnonymousRenaming(n=n), pids(n), naming=naming)
        adversary = StagedObstructionAdversary(prefix_steps=60, seed=seed)
        trace = system.run(adversary, max_steps=1_000_000)
        UniqueNamesChecker().check(trace)
        rows.append([label, len(trace), sorted(trace.outputs.values())])
    return rows


def test_e13_renaming_plasticity(benchmark):
    rows = benchmark(renaming_across_namings)
    print(render_table(
        ["naming", "events", "names"], rows,
        title="E13b (Fig 3 under every naming)",
    ))
    assert all(row[2] == [1, 2, 3] for row in rows)


def mutex_contention_profile(seed: int = 2):
    """§1's contention point, concretely: per-register write histograms
    of the same Figure 1 workload under different namings."""
    rows = []
    for label, naming in namings(2, 5):
        system = System(AnonymousMutex(m=5, cs_visits=3), pids(2), naming=naming)
        trace = system.run(RandomAdversary(seed), max_steps=500_000)
        MutualExclusionChecker().check(trace)
        histogram = register_contention(trace)
        writes = [w for _, w in histogram.values()]
        rows.append([label, len(trace), str(writes),
                     f"{contention_spread(trace):.2f}"])
    return rows


def test_e13_mutex_contention_profiles(benchmark):
    rows = benchmark(mutex_contention_profile)
    print(render_table(
        ["naming", "events", "writes per register", "spread"], rows,
        title="E13c (Fig 1 contention profiles: the naming is a tuning knob)",
    ))
    assert len(rows) == 4
