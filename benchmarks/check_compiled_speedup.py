#!/usr/bin/env python3
"""CI gate for the table-compiled step kernel's throughput claim.

Runs the mutex m=7 bench instance (the headline row of
``BENCH_explore.json``) under the seed engine and the compiled kernel —
same trivial-dedup walk, same budgets, same process — asserts the state
counts are identical, and exits non-zero when the measured
``speedup_vs_interpreted`` falls below the threshold.

The committed benchmark records the full ≥10× measurement; CI holds the
gate at 5× (``--threshold 5``) so shared-runner noise cannot flake an
honest build.  On a single-CPU host the correctness asserts still run
but the throughput gate is skipped (exit 0), not failed: a degraded
host measures contention, not the kernel.

Run with:   PYTHONPATH=src python benchmarks/check_compiled_speedup.py
"""

import argparse
import os
import sys

from repro.core.mutex import AnonymousMutex
from repro.runtime.canonical import TrivialCanonicalizer
from repro.runtime.compiled import CompiledBackend
from repro.runtime.exploration import explore, mutual_exclusion_invariant
from repro.runtime.system import System

PIDS = (101, 103)

#: The exploration benchmark's budgets (BENCH_BUDGETS in
#: run_experiments.py) — m=7 completes exhaustively well inside them.
BUDGETS = {"max_states": 500_000, "max_depth": 1_000_000}


def run(m, backend):
    system = System(AnonymousMutex(m=m, cs_visits=1), PIDS, record_trace=False)
    return explore(
        system,
        mutual_exclusion_invariant,
        canonicalizer=TrivialCanonicalizer(system.scheduler),
        backend=backend,
        **BUDGETS,
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--m", type=int, default=7, metavar="M",
        help="mutex register count (default: 7, the headline instance)",
    )
    parser.add_argument(
        "--threshold", type=float, default=5.0, metavar="X",
        help="minimum acceptable compiled/interpreted throughput ratio "
             "(default: 5)",
    )
    args = parser.parse_args(argv)

    interpreted = run(args.m, backend=None)
    compiled = run(args.m, backend=CompiledBackend())
    assert compiled.kernel == "compiled", "table compilation fell back"
    assert compiled.states_explored == interpreted.states_explored, (
        f"state-count mismatch: compiled {compiled.states_explored} "
        f"!= interpreted {interpreted.states_explored}"
    )
    assert compiled.ok == interpreted.ok

    if not interpreted.states_per_second or not compiled.states_per_second:
        print("walk finished below timer resolution; cannot gate throughput")
        return 1
    speedup = compiled.states_per_second / interpreted.states_per_second
    print(
        f"mutex m={args.m}: {interpreted.states_explored} states; "
        f"interpreted {interpreted.states_per_second:,.0f}/s, "
        f"compiled {compiled.states_per_second:,.0f}/s "
        f"-> speedup x{speedup:.2f} (threshold x{args.threshold})"
    )
    if (os.cpu_count() or 1) == 1:
        print(
            "degraded host (1 cpu): correctness asserts passed; "
            "speedup gate skipped, not failed"
        )
        return 0
    if speedup < args.threshold:
        print(
            f"FAIL: compiled kernel speedup x{speedup:.2f} is below the "
            f"x{args.threshold} gate"
        )
        return 1
    print("compiled speedup gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
