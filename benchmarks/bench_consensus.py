"""E3/E4/E5 — Theorems 4.1, 4.2 and the §4 election note.

* E3: obstruction-free termination, with the quantitative handle from
  the Theorem 4.1 proof — a solo run decides within 2n-1 write
  iterations; measured for n in {1..6};
* E4: agreement + validity across a naming × adversary sweep;
* E5: election derived from consensus — unanimous participant winner.
"""

import pytest

from repro.analysis.experiments import gives_solo_opportunities, sweep
from repro.analysis.metrics import solo_iterations
from repro.analysis.tables import render_table
from repro.core.consensus import AnonymousConsensus
from repro.core.election import AnonymousElection
from repro.memory.naming import all_namings_for_tests
from repro.runtime.adversary import (
    SoloAdversary,
    StagedObstructionAdversary,
    standard_adversaries,
)
from repro.runtime.system import System
from repro.spec.consensus_spec import (
    AgreementChecker,
    ElectionChecker,
    ObstructionFreeTerminationChecker,
    ValidityChecker,
)

from benchmarks.conftest import consensus_inputs, pids


def solo_decide(n: int):
    inputs = consensus_inputs(n)
    system = System(AnonymousConsensus(n=n), inputs)
    pid = pids(n)[0]
    trace = system.run(SoloAdversary(pid), max_steps=1_000_000)
    return trace, pid


@pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 6])
def test_e3_solo_iteration_bound(benchmark, n):
    trace, pid = benchmark(solo_decide, n)
    iterations = solo_iterations(trace, pid)
    bound = 2 * n - 1
    assert iterations <= bound
    assert trace.outputs[pid] == consensus_inputs(n)[pid]
    print(
        render_table(
            ["n", "registers", "solo iterations", "bound 2n-1", "steps"],
            [[n, 2 * n - 1, iterations, bound, trace.steps_taken(pid)]],
            title=f"E3 (Theorem 4.1 solo bound, n={n})",
        )
    )


def consensus_sweep(n: int):
    inputs = consensus_inputs(n)

    def checkers(adversary):
        battery = [AgreementChecker(), ValidityChecker(inputs)]
        if gives_solo_opportunities(adversary):
            battery.append(ObstructionFreeTerminationChecker())
        return battery

    return sweep(
        lambda: AnonymousConsensus(n=n),
        inputs,
        namings=all_namings_for_tests(pids(n), 2 * n - 1),
        adversaries=standard_adversaries(range(3)),
        checkers_factory=checkers,
        max_steps=150_000,
    )


@pytest.mark.parametrize("n", [2, 3, 4])
def test_e4_agreement_validity_sweep(benchmark, n):
    result = benchmark.pedantic(consensus_sweep, args=(n,), rounds=1, iterations=1)
    assert result.all_ok, result.describe_failures()
    print(
        render_table(
            ["n", "runs", "violations", "verdict"],
            [[n, result.runs, len(result.failures), "agreement+validity hold"]],
            title=f"E4 (Theorems 4.1/4.2 sweep, n={n})",
        )
    )


def election_run(n: int, seed: int):
    system = System(AnonymousElection(n=n), pids(n))
    adversary = StagedObstructionAdversary(prefix_steps=40 * n, seed=seed)
    return system.run(adversary, max_steps=500_000)


@pytest.mark.parametrize("n", [2, 3, 4, 5])
def test_e5_election(benchmark, n):
    trace = benchmark(election_run, n, 1)
    ElectionChecker().check(trace)
    assert len(trace.decided()) == n
    winner = next(iter(trace.decided().values()))
    print(
        render_table(
            ["n", "winner", "unanimous", "events"],
            [[n, winner, True, len(trace)]],
            title=f"E5 (§4 election, n={n})",
        )
    )
