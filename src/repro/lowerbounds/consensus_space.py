"""Theorem 6.3, executable: consensus space lower bound.

    "There is no obstruction-free consensus algorithm (1) when the number
    of processes is not a priori known using (an unlimited number of)
    unnamed registers, and (2) for n >= 2 processes using n - 1 unnamed
    registers."

The demonstration targets clause (2) on the paper's own algorithm:
Figure 2 instantiated with ``registers = n - 1`` (the ``registers``
override of :class:`~repro.core.consensus.AnonymousConsensus`).  Process
``q`` (input ``0``-side value) runs solo and decides; with only ``n - 1``
registers there are enough remaining processes (all holding the other
input) to cover every register ``q`` wrote; the block write erases ``q``
entirely; obstruction-freedom then forces some covering process to decide
its own value — and the replayed run ``rho`` contains two different
decisions.

Clause (1) is the same construction with the pool size unbounded; the
report's ``covering_pids`` shows how many fresh processes the argument
consumed, which is also the witness for Corollary 6.4 (no obstruction-
free implementation of a named register from unnamed ones).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence, Tuple

from repro.lowerbounds.construction import (
    ConstructionReport,
    execute_covering_construction,
)
from repro.runtime.adversary import StagedObstructionAdversary
from repro.runtime.automaton import Algorithm
from repro.runtime.scheduler import Scheduler
from repro.types import ProcessId


def _q_done(scheduler: Scheduler, pid: ProcessId) -> bool:
    return scheduler.runtime(pid).halted


def _q_outcome(scheduler: Scheduler, pid: ProcessId) -> Any:
    return scheduler.output_of(pid)


def _z_done(scheduler: Scheduler, pids: Sequence[ProcessId]) -> bool:
    return any(scheduler.runtime(pid).halted for pid in pids)


def _classify(scheduler: Scheduler, q_pid: ProcessId, pids: Sequence[ProcessId]) -> str:
    q_value = scheduler.output_of(q_pid)
    p_values = {
        pid: scheduler.output_of(pid)
        for pid in pids
        if scheduler.runtime(pid).halted
    }
    conflicting = {pid: v for pid, v in p_values.items() if v != q_value}
    if conflicting:
        return (
            f"agreement violated: q={q_pid} decided {q_value!r} but "
            f"{conflicting} decided differently"
        )
    return (  # pragma: no cover - the construction forces a conflict
        f"construction completed without conflict: q={q_value!r}, P={p_values}"
    )


def demonstrate_consensus_space_bound(
    algorithm_factory: Callable[[], Algorithm],
    q_input: Any = "zero",
    p_input: Any = "one",
    q_pid: ProcessId = 101,
    pool_pids: Tuple[ProcessId, ...] = tuple(range(201, 265)),
    max_solo_steps: int = 500_000,
    max_z_steps: int = 500_000,
) -> ConstructionReport:
    """Run the Theorem 6.3 construction against a consensus candidate.

    ``q`` runs with ``q_input``; every recruited covering process runs
    with ``p_input`` (the proof's "all with input 1"), so validity pins
    the ``z`` decision to ``p_input`` and the conflict is guaranteed.
    """
    return execute_covering_construction(
        algorithm_factory,
        problem="obstruction-free consensus (Thm 6.3)",
        q_pid=q_pid,
        q_input=q_input,
        p_pool=[(pid, p_input) for pid in pool_pids],
        q_done=_q_done,
        q_outcome=_q_outcome,
        z_done=_z_done,
        make_z_adversary=lambda pids: StagedObstructionAdversary(
            prefix_steps=0, solo_order=list(pids)
        ),
        classify_violation=_classify,
        max_solo_steps=max_solo_steps,
        max_z_steps=max_z_steps,
    )
