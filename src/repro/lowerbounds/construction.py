"""The shared engine behind the Section 6 impossibility constructions.

Theorems 6.2, 6.3 and 6.5 use one proof skeleton (the paper notes "the
impossibility proofs below are all based on covering arguments and have
the same structure"):

1. run ``y``: process ``q`` alone until it succeeds (enters its critical
   section / decides / acquires name 1); record ``write(y, q)``, the set
   of registers it wrote;
2. recruit a set ``P`` of fresh processes, one per register in
   ``write(y, q)`` — possible because the number of processes is unknown
   (or because the register count is below the process count);
3. run ``x``: each ``p in P`` runs alone until it covers its assigned
   register of ``write(y, q)`` — write-free prefixes, made possible by
   *choosing each p's register naming* (only available against anonymous
   registers!);
4. ``x'`` = ``x`` + block write by ``P``; extend with a ``P``-only run
   ``z`` until some ``p`` succeeds;
5. build ``rho`` = ``x ; y ;`` block write ``; (z - x')``: the block
   write erases every trace of ``q``, making the state indistinguishable
   *for P* from ``x'``, so the ``z`` suffix replays verbatim — and now
   two processes have succeeded where at most one may.

:func:`execute_covering_construction` performs these five phases against
a concrete candidate algorithm, **verifying the proof's intermediate
claims as it goes** (write-free covering prefixes, distinct covered
registers, exact indistinguishability after the block write) and returns
a :class:`ConstructionReport` describing which property the candidate was
caught violating:

* ``branch == "rho-violation"`` — the construction completed and ``rho``
  exhibits the safety violation (two CS occupants / conflicting
  decisions / duplicate names), exactly as in the proofs;
* ``branch == "z-no-progress"`` — the candidate already fails the
  *progress* half in the ``P``-only run ``z`` (detected by global-state
  cycle or budget exhaustion).  This, too, proves the candidate wrong:
  the proofs' step "by deadlock-freedom / obstruction-freedom there
  exists an extension z ..." is exactly what such a candidate lacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from repro.errors import SchedulingError
from repro.lowerbounds.covering import (
    block_write,
    build_covering_run,
    replay_schedule,
)
from repro.memory.naming import ExplicitNaming, first_visit_permutation
from repro.runtime.adversary import Adversary
from repro.runtime.automaton import Algorithm
from repro.runtime.scheduler import Scheduler
from repro.runtime.system import System
from repro.types import PhysicalIndex, ProcessId


@dataclass
class ConstructionReport:
    """Everything a covering-construction run established."""

    algorithm: str
    problem: str
    #: The proofs' write(y, q): physical registers q wrote running solo.
    write_set: Tuple[PhysicalIndex, ...] = ()
    #: The processes recruited to cover write(y, q), in target order.
    covering_pids: Tuple[ProcessId, ...] = ()
    q_pid: Optional[ProcessId] = None
    #: q's solo outcome (its decision / acquired name / "in-CS").
    q_outcome: Any = None
    q_solo_steps: int = 0
    #: "rho-violation" or "z-no-progress".
    branch: str = ""
    #: Human-readable description of the violated property.
    violation: str = ""
    #: Outcomes of the P processes at the end (rho branch).
    p_outcomes: Dict[ProcessId, Any] = field(default_factory=dict)
    #: Whether the indistinguishability claim was verified exactly.
    indistinguishability_verified: bool = False
    #: Length of the replayed z suffix.
    z_steps: int = 0

    def summary(self) -> str:
        """One-line report for experiment tables."""
        return (
            f"{self.problem} vs {self.algorithm}: {self.branch} — "
            f"{self.violation} (|write(y,q)|={len(self.write_set)}, "
            f"z={self.z_steps} steps)"
        )


def _run_solo_until(
    scheduler: Scheduler,
    pid: ProcessId,
    done: Callable[[Scheduler, ProcessId], bool],
    max_steps: int,
) -> int:
    """Step ``pid`` alone until ``done`` holds; returns steps taken."""
    taken = 0
    while not done(scheduler, pid):
        if pid not in scheduler.enabled_pids():
            raise SchedulingError(
                f"process {pid} became disabled before its solo goal"
            )
        if taken >= max_steps:
            raise SchedulingError(
                f"process {pid} did not reach its solo goal within "
                f"{max_steps} steps"
            )
        scheduler.step(pid)
        taken += 1
    return taken


def _detect_cycle_run(
    scheduler: Scheduler,
    adversary: Adversary,
    pids: Sequence[ProcessId],
    done: Callable[[Scheduler], bool],
    max_steps: int,
):
    """Run ``adversary`` until ``done``; detect no-progress state cycles.

    Returns ``(schedule, None)`` on success or ``(partial_schedule,
    reason)`` when the run provably (state cycle) or practically (budget)
    makes no progress — the "z-no-progress" branch.
    """
    adversary.reset()
    schedule = []
    seen = {scheduler.capture_state(): 0}
    while not done(scheduler):
        if len(schedule) >= max_steps:
            return schedule, f"no progress within {max_steps} steps"
        enabled = scheduler.enabled_pids()
        if not enabled:
            return schedule, "all processes disabled before progress"
        pid = adversary.choose(scheduler)
        if pid is None:
            return schedule, "adversary stopped before progress"
        scheduler.step(pid)
        schedule.append(pid)
        state = scheduler.capture_state()
        if state in seen:
            return schedule, (
                f"global-state cycle of length {len(schedule) - seen[state]} "
                "steps with no progress"
            )
        seen[state] = len(schedule)
    return schedule, None


def execute_covering_construction(
    algorithm_factory: Callable[[], Algorithm],
    problem: str,
    q_pid: ProcessId,
    q_input: Any,
    p_pool: Sequence[Tuple[ProcessId, Any]],
    q_done: Callable[[Scheduler, ProcessId], bool],
    q_outcome: Callable[[Scheduler, ProcessId], Any],
    z_done: Callable[[Scheduler, Sequence[ProcessId]], bool],
    make_z_adversary: Callable[[Sequence[ProcessId]], Adversary],
    classify_violation: Callable[[Scheduler, ProcessId, Sequence[ProcessId]], str],
    max_solo_steps: int = 200_000,
    max_z_steps: int = 200_000,
) -> ConstructionReport:
    """Run the five-phase covering construction; see the module docstring.

    ``algorithm_factory`` must build a fresh, identically configured
    algorithm on each call (three systems are built: the write-set probe,
    ``x'; z``, and ``rho``).  ``p_pool`` supplies more (pid, input) pairs
    than ``write(y, q)`` can possibly need; exactly ``|write(y, q)|`` are
    recruited.
    """
    report = ConstructionReport(
        algorithm=algorithm_factory().name, problem=problem, q_pid=q_pid
    )

    # ---- Phase 0: probe run y to learn write(y, q). ----------------------
    pool_pids = [pid for pid, _ in p_pool]
    pool_inputs = dict(p_pool)
    probe = System(
        algorithm_factory(),
        {q_pid: q_input, **pool_inputs},
        record_trace=True,
    )
    report.q_solo_steps = _run_solo_until(
        probe.scheduler, q_pid, q_done, max_solo_steps
    )
    write_set = probe.scheduler.trace.registers_written_by(q_pid)
    report.write_set = tuple(write_set)
    if not write_set:
        raise SchedulingError(
            f"{report.algorithm}: q succeeded without writing — the paper "
            "shows this is immediately fatal, but the construction engine "
            "expects candidates whose solo runs write at least once"
        )
    if len(write_set) > len(pool_pids):
        raise SchedulingError(
            f"p_pool has {len(pool_pids)} processes but write(y,q) has "
            f"{len(write_set)} registers; supply a larger pool"
        )
    covering_pids = tuple(pool_pids[: len(write_set)])
    report.covering_pids = covering_pids
    assignments = dict(zip(covering_pids, write_set))

    # Namings: q keeps identity; each covering process scans so that its
    # first write lands on its assigned register ("since all the registers
    # are unnamed, we can let each process scan the registers in an order
    # which ensures ..." — only possible against anonymous registers).
    algorithm = algorithm_factory()
    m = algorithm.register_count()
    naming = ExplicitNaming(
        {pid: first_visit_permutation(target, m) for pid, target in assignments.items()}
    )
    participants = {q_pid: q_input}
    participants.update({pid: pool_inputs[pid] for pid in covering_pids})

    # ---- Phases x', z on system S1. ----------------------------------------
    s1 = System(algorithm, participants, naming=naming, record_trace=False)
    build_covering_run(s1.scheduler, assignments, max_steps=max_solo_steps)
    block_write(s1.scheduler, covering_pids)
    # Snapshot x' — the state the indistinguishability claim compares
    # against — before z extends the run.
    x_prime_registers = s1.scheduler.memory.snapshot()
    x_prime_states = {
        pid: s1.scheduler.runtime(pid).state for pid in covering_pids
    }
    z_adversary = make_z_adversary(covering_pids)
    z_schedule, z_failure = _detect_cycle_run(
        s1.scheduler,
        z_adversary,
        covering_pids,
        lambda sched: z_done(sched, covering_pids),
        max_z_steps,
    )
    if z_failure is not None:
        report.branch = "z-no-progress"
        report.violation = (
            f"progress violation with {len(covering_pids)} fresh processes: "
            f"{z_failure}"
        )
        report.z_steps = len(z_schedule)
        return report
    report.z_steps = len(z_schedule)

    # ---- Phase rho on system S2: x ; y ; block write ; (z - x'). ----------
    s2 = System(algorithm_factory(), participants, naming=naming, record_trace=False)
    build_covering_run(s2.scheduler, assignments, max_steps=max_solo_steps)
    _run_solo_until(s2.scheduler, q_pid, q_done, max_solo_steps)
    q_result = q_outcome(s2.scheduler, q_pid)
    report.q_outcome = q_result
    block_write(s2.scheduler, covering_pids)

    # The proofs' central claim: after the block write, w and x' are
    # indistinguishable for every process in P (equal registers, equal
    # local states).
    w_registers = s2.scheduler.memory.snapshot()
    if w_registers != x_prime_registers:
        raise SchedulingError(
            "indistinguishability failed: registers after the block write "
            f"differ:\n  x': {x_prime_registers}\n  w:  {w_registers}"
        )
    for pid in covering_pids:
        w_state = s2.scheduler.runtime(pid).state
        if w_state != x_prime_states[pid]:
            raise SchedulingError(
                f"indistinguishability failed: process {pid} has state "
                f"{w_state!r} in w but {x_prime_states[pid]!r} in x'"
            )
    report.indistinguishability_verified = True

    replay_schedule(s2.scheduler, z_schedule)
    report.p_outcomes = {
        pid: (
            s2.scheduler.output_of(pid)
            if s2.scheduler.runtime(pid).halted
            else None
        )
        for pid in covering_pids
    }
    report.branch = "rho-violation"
    report.violation = classify_violation(s2.scheduler, q_pid, covering_pids)
    return report
