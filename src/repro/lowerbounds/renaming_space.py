"""Theorem 6.5, executable: adaptive perfect renaming space lower bound.

    "There is no obstruction-free adaptive perfect renaming algorithm
    (1) when the number of processes is not a priori known using (an
    unlimited number of) unnamed registers, and (2) for n >= 2 processes
    using n - 1 unnamed registers."

The demonstration targets clause (2) on Figure 3 instantiated with
``registers = n - 1``.  By adaptivity, ``q`` running alone must acquire
the name 1; the covering processes erase its traces; by adaptivity again,
the first covering process to finish in the ``P``-only run ``z`` also
acquires the name 1 — and the replayed run ``rho`` hands out the name 1
twice.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

from repro.errors import SchedulingError
from repro.lowerbounds.construction import (
    ConstructionReport,
    execute_covering_construction,
)
from repro.runtime.adversary import StagedObstructionAdversary
from repro.runtime.automaton import Algorithm
from repro.runtime.scheduler import Scheduler
from repro.types import ProcessId


def _q_done(scheduler: Scheduler, pid: ProcessId) -> bool:
    return scheduler.runtime(pid).halted


def _q_outcome(scheduler: Scheduler, pid: ProcessId) -> Optional[int]:
    name = scheduler.output_of(pid)
    if name != 1:
        raise SchedulingError(
            f"adaptivity premise failed: q running alone acquired name "
            f"{name!r}, expected 1"
        )
    return name


def _z_done(scheduler: Scheduler, pids: Sequence[ProcessId]) -> bool:
    return any(scheduler.runtime(pid).halted for pid in pids)


def _classify(scheduler: Scheduler, q_pid: ProcessId, pids: Sequence[ProcessId]) -> str:
    q_name = scheduler.output_of(q_pid)
    p_names = {
        pid: scheduler.output_of(pid)
        for pid in pids
        if scheduler.runtime(pid).halted
    }
    duplicates = {pid: name for pid, name in p_names.items() if name == q_name}
    if duplicates:
        return (
            f"uniqueness violated: q={q_pid} and {sorted(duplicates)} all "
            f"acquired the name {q_name}"
        )
    return (  # pragma: no cover - adaptivity forces the duplicate
        f"construction completed without duplicate: q={q_name}, P={p_names}"
    )


def demonstrate_renaming_space_bound(
    algorithm_factory: Callable[[], Algorithm],
    q_pid: ProcessId = 101,
    pool_pids: Tuple[ProcessId, ...] = tuple(range(201, 265)),
    max_solo_steps: int = 500_000,
    max_z_steps: int = 500_000,
) -> ConstructionReport:
    """Run the Theorem 6.5 construction against a renaming candidate."""
    return execute_covering_construction(
        algorithm_factory,
        problem="adaptive perfect renaming (Thm 6.5)",
        q_pid=q_pid,
        q_input=None,
        p_pool=[(pid, None) for pid in pool_pids],
        q_done=_q_done,
        q_outcome=_q_outcome,
        z_done=_z_done,
        make_z_adversary=lambda pids: StagedObstructionAdversary(
            prefix_steps=0, solo_order=list(pids)
        ),
        classify_violation=_classify,
        max_solo_steps=max_solo_steps,
        max_z_steps=max_z_steps,
    )
