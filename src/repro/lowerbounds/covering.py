"""Executable §6.1: runs, covering processes, block writes,
indistinguishability.

The paper's impossibility proofs are themselves little algorithms for
building bad runs.  This module provides their vocabulary as operations
on live :class:`~repro.runtime.scheduler.Scheduler` instances:

* "Process p **covers** a register in run x, if x can be extended by an
  event in which p writes to some register" — :func:`covered_register`
  (pending-write inspection) and :func:`run_solo_until_covering` (extend
  p's run, read-only, until it covers its assigned target register);
* "A **block write** by a set of covering processes P is an execution in
  which each process in P performs a single write (and nothing else)" —
  :func:`block_write`;
* "Runs x and y are **indistinguishable** for process p, if the
  subsequence of all events by p in x is the same as in y [...] and the
  values of all the shared registers in x are the same as in y" —
  :func:`assert_indistinguishable_for` compares two schedulers' register
  contents and the local states of the given processes (with explicit
  local states, equal histories and equal memory mean exactly
  indistinguishability).

The three construction modules (:mod:`repro.lowerbounds.mutex_unbounded`,
:mod:`repro.lowerbounds.consensus_space`,
:mod:`repro.lowerbounds.renaming_space`) compose these into the proofs'
runs ``x``, ``x'``, ``y``, ``w``, ``z`` and ``rho``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ProtocolError, SchedulingError
from repro.runtime.ops import WriteOp
from repro.runtime.scheduler import Scheduler
from repro.types import PhysicalIndex, ProcessId


def covered_register(scheduler: Scheduler, pid: ProcessId) -> Optional[PhysicalIndex]:
    """The physical register ``pid`` currently covers, or ``None``.

    Thin re-export of :meth:`Scheduler.covered_register` so construction
    code reads like the proofs.
    """
    return scheduler.covered_register(pid)


def run_solo_until_covering(
    scheduler: Scheduler,
    pid: ProcessId,
    target: PhysicalIndex,
    max_steps: int = 100_000,
) -> int:
    """Extend the run with steps by ``pid`` alone until it covers
    ``target`` — the proofs' ``r.p``.

    The proofs require these covering prefixes to be write-free ("since,
    for each p in P, there are no writes in r.p"); a write by ``pid``
    before reaching coverage is therefore an error: the naming chosen for
    ``pid`` failed to steer its first write to ``target``, and the
    construction must be set up differently for this algorithm.

    Returns the number of steps taken.
    """
    taken = 0
    while True:
        covered = scheduler.covered_register(pid)
        if covered == target:
            return taken
        if covered is not None:
            raise ProtocolError(
                f"process {pid} covers physical register {covered}, not the "
                f"assigned target {target}; choose a naming under which its "
                "first write lands on the target"
            )
        if taken >= max_steps:
            raise ProtocolError(
                f"process {pid} did not cover any register within "
                f"{max_steps} solo steps"
            )
        event = scheduler.step(pid)
        taken += 1
        if event.is_write():
            raise ProtocolError(
                f"process {pid} wrote register {event.physical_index} during "
                "its covering prefix; covering runs must be write-free"
            )


def build_covering_run(
    scheduler: Scheduler,
    assignments: Dict[ProcessId, PhysicalIndex],
    max_steps: int = 100_000,
) -> Dict[ProcessId, int]:
    """The proofs' run ``x``: each process in P runs solo (in sequence)
    until it covers its assigned register.

    Because covering prefixes are write-free, the concatenation behaves
    exactly as if each process had run alone — the proofs' construction
    of ``x`` from the individual ``r.p`` runs.  Returns steps per process.
    """
    distinct_targets = set(assignments.values())
    if len(distinct_targets) != len(assignments):
        raise SchedulingError(
            f"covering assignments must target distinct registers, got "
            f"{assignments}"
        )
    steps = {}
    for pid, target in assignments.items():
        steps[pid] = run_solo_until_covering(scheduler, pid, target, max_steps)
    return steps


def block_write(scheduler: Scheduler, pids: Sequence[ProcessId]) -> List[PhysicalIndex]:
    """Perform the proofs' block write: one write step per covering process.

    Every listed process must currently cover a register; "if every
    process in P covers a different register then the order of writes
    does not matter".  Returns the physical registers written, in order.
    """
    written: List[PhysicalIndex] = []
    for pid in pids:
        covered = scheduler.covered_register(pid)
        if covered is None:
            raise SchedulingError(
                f"process {pid} does not cover a register; block write "
                "requires a set of covering processes"
            )
        event = scheduler.step(pid)
        if not isinstance(event.op, WriteOp):  # pragma: no cover - guarded above
            raise SchedulingError(
                f"process {pid}'s step was {event.op}, not a write"
            )
        written.append(event.physical_index)
    return written


def run_until(
    scheduler: Scheduler,
    adversary,
    predicate: Callable[[Scheduler], bool],
    max_steps: int = 1_000_000,
) -> List[ProcessId]:
    """Extend the run under ``adversary`` until ``predicate`` holds.

    Returns the schedule (sequence of pids) that was executed, so the
    construction can *replay* it verbatim on an indistinguishable run —
    the proofs' "any extension of x' by processes in P is also a possible
    extension of w".  Raises :class:`SchedulingError` if the adversary
    stops or the budget runs out before the predicate holds.
    """
    adversary.reset()
    schedule: List[ProcessId] = []
    while not predicate(scheduler):
        if len(schedule) >= max_steps:
            raise SchedulingError(
                f"predicate not reached within {max_steps} steps"
            )
        enabled = scheduler.enabled_pids()
        if not enabled:
            raise SchedulingError(
                "no process enabled before the predicate held"
            )
        pid = adversary.choose(scheduler)
        if pid is None:
            raise SchedulingError(
                "adversary stopped before the predicate held"
            )
        scheduler.step(pid)
        schedule.append(pid)
    return schedule


def replay_schedule(scheduler: Scheduler, schedule: Sequence[ProcessId]) -> None:
    """Execute a recorded schedule verbatim (the ``z - x'`` suffix)."""
    for pid in schedule:
        scheduler.step(pid)


def assert_indistinguishable_for(
    scheduler_a: Scheduler,
    scheduler_b: Scheduler,
    pids: Sequence[ProcessId],
    context: str = "",
) -> None:
    """Verify §6.1 indistinguishability for ``pids`` between two runs.

    Checks that (1) all shared registers hold equal values and (2) each
    listed process has an identical local state (which, with explicit
    automata, subsumes "took the same subsequence of events with the same
    results").  Raises :class:`SchedulingError` with a diagnostic if the
    construction's central claim fails — it never should, and the tests
    assert that it doesn't.
    """
    mem_a = scheduler_a.memory.snapshot()
    mem_b = scheduler_b.memory.snapshot()
    if mem_a != mem_b:
        raise SchedulingError(
            f"indistinguishability failed{context and f' ({context})'}: "
            f"register contents differ:\n  a: {mem_a}\n  b: {mem_b}"
        )
    for pid in pids:
        state_a = scheduler_a.runtime(pid).state
        state_b = scheduler_b.runtime(pid).state
        if state_a != state_b:
            raise SchedulingError(
                f"indistinguishability failed{context and f' ({context})'}: "
                f"process {pid} has different local states:\n"
                f"  a: {state_a}\n  b: {state_b}"
            )


def registers_written_in(trace, pid: ProcessId) -> Tuple[PhysicalIndex, ...]:
    """The proofs' ``write(y, q)``: distinct physical registers ``pid``
    wrote in the recorded run."""
    return trace.registers_written_by(pid)
