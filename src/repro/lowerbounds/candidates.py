"""Deliberately limited candidate algorithms for the impossibility demos.

The Section 6 proofs quantify over *all* algorithms: every candidate,
however clever, breaks when the number of processes is unknown (mutex) or
the register count drops below the bound (consensus, renaming).  The
experiments demonstrate this on concrete candidates:

* the paper's own algorithms pushed outside their envelope (Figure 2 with
  ``registers=n-1``, Figure 3 likewise, Figure 1 facing more processes
  than any fixed bound) — built directly via the core classes' override
  parameters; and
* :class:`NaiveTestAndSetLock`, defined here — the textbook broken lock
  ("read 0, write my id, read it back") whose failure mode is exactly the
  covering argument's: a single covering process can erase the owner's
  trace and let a second process through.  It exists because Figure 1's
  failure under the Theorem 6.2 construction manifests as *livelock*
  (deadlock-freedom violation), and the test suite also wants to exercise
  the construction's other branch, where the block write leads to a
  *mutual exclusion* violation exactly as in the proof's run ``rho``.

``NaiveTestAndSetLock`` is of course not a correct mutex even for two
processes under general schedules; the lower-bound harness drives it only
along the proof's specific runs, where its solo behaviour is exemplary
and its covering behaviour is fatal.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.core.mutex import MutexAutomatonMixin
from repro.errors import ProtocolError
from repro.runtime.automaton import Algorithm, ProcessAutomaton
from repro.runtime.ops import (
    CritOp,
    EnterCritOp,
    ExitCritOp,
    Operation,
    ReadOp,
    WriteOp,
)
from repro.types import ProcessId, validate_process_id


@dataclass(frozen=True)
class NaiveLockState:
    """Local state of one naive-lock process."""

    pc: str = "probe"
    crit_remaining: int = 0
    visits_done: int = 0


class NaiveTestAndSetProcess(MutexAutomatonMixin, ProcessAutomaton):
    """Read the register; if 0, write our id; read back; if ours, enter.

    The read-modify-write is *not* atomic (three separate steps), which
    is what the covering construction exploits.
    """

    EXIT_PCS = frozenset({"release"})

    PC_LINES = {
        "probe": "naive lock — read the register, wait for 0",
        "claim": "naive lock — write own identifier",
        "verify": "naive lock — read back; enter iff still ours",
        "enter_cs": "naive lock — claim verified; enter the CS",
        "crit": "critical section occupancy",
        "exit_crit": "leave the critical section",
        "release": "naive lock — write 0 to release",
        "done": "left the algorithm (cs_visits spent)",
    }

    def __init__(self, pid: ProcessId, cs_visits: int = 1, cs_steps: int = 1):
        self.pid = validate_process_id(pid)
        self.cs_visits = cs_visits
        self.cs_steps = max(1, cs_steps)

    def initial_state(self) -> NaiveLockState:
        return NaiveLockState()

    def is_halted(self, state: NaiveLockState) -> bool:
        return state.pc == "done"

    def output(self, state: NaiveLockState) -> Any:
        return state.visits_done if state.pc == "done" else None

    def next_op(self, state: NaiveLockState) -> Operation:
        self.require_running(state)
        pc = state.pc
        if pc in ("probe", "verify"):
            return ReadOp(0)
        if pc == "claim":
            return WriteOp(0, self.pid)
        if pc == "enter_cs":
            return EnterCritOp()
        if pc == "crit":
            return CritOp()
        if pc == "exit_crit":
            return ExitCritOp()
        if pc == "release":
            return WriteOp(0, 0)
        raise ProtocolError(f"naive lock {self.pid}: unknown pc {pc!r}")

    def apply(self, state: NaiveLockState, op: Operation, result: Any) -> NaiveLockState:
        pc = state.pc
        if pc == "probe":
            if result == 0:
                return replace(state, pc="claim")
            return state  # busy: probe again
        if pc == "claim":
            return replace(state, pc="verify")
        if pc == "verify":
            if result == self.pid:
                return replace(state, pc="enter_cs")
            return replace(state, pc="probe")
        if pc == "enter_cs":
            return replace(state, pc="crit", crit_remaining=self.cs_steps)
        if pc == "crit":
            remaining = state.crit_remaining - 1
            if remaining > 0:
                return replace(state, crit_remaining=remaining)
            return replace(state, pc="exit_crit")
        if pc == "exit_crit":
            return replace(state, pc="release")
        if pc == "release":
            visits = state.visits_done + 1
            if visits >= self.cs_visits:
                return NaiveLockState(pc="done", visits_done=visits)
            return NaiveLockState(pc="probe", visits_done=visits)
        raise ProtocolError(f"naive lock {self.pid}: cannot apply {pc!r}")


class NaiveTestAndSetLock(Algorithm):
    """Single-register naive lock — the covering construction's showcase."""

    name = "naive-test-and-set-lock"

    def __init__(self, cs_visits: int = 1, cs_steps: int = 1):
        self.cs_visits = cs_visits
        self.cs_steps = cs_steps

    def register_count(self) -> int:
        return 1

    def automaton_for(self, pid: ProcessId, input: Any = None) -> NaiveTestAndSetProcess:
        return NaiveTestAndSetProcess(
            pid, cs_visits=self.cs_visits, cs_steps=self.cs_steps
        )
