"""Executable lower bounds: the paper's proofs as run-building programs.

* :mod:`repro.lowerbounds.symmetry` — Theorem 3.4's lockstep symmetry
  attack on a register ring (and, as its l=2 special case, the "even m is
  impossible" half of Theorem 3.1);
* :mod:`repro.lowerbounds.covering` — the §6.1 formalism: covering
  processes, block writes, indistinguishability;
* :mod:`repro.lowerbounds.construction` — the shared five-phase engine
  behind the Section 6 proofs;
* :mod:`repro.lowerbounds.mutex_unbounded` — Theorem 6.2 (and thereby
  Theorem 6.1, the strict separation of named from unnamed registers);
* :mod:`repro.lowerbounds.consensus_space` — Theorem 6.3 / Corollary 6.4;
* :mod:`repro.lowerbounds.renaming_space` — Theorem 6.5;
* :mod:`repro.lowerbounds.candidates` — deliberately limited candidates
  (the naive test-and-set lock) that exercise the constructions' safety
  branch.
"""

from repro.lowerbounds.candidates import NaiveTestAndSetLock, NaiveTestAndSetProcess
from repro.lowerbounds.construction import (
    ConstructionReport,
    execute_covering_construction,
)
from repro.lowerbounds.consensus_space import demonstrate_consensus_space_bound
from repro.lowerbounds.covering import (
    assert_indistinguishable_for,
    block_write,
    build_covering_run,
    covered_register,
    replay_schedule,
    run_solo_until_covering,
    run_until,
)
from repro.lowerbounds.mutex_unbounded import demonstrate_mutex_impossibility
from repro.lowerbounds.renaming_space import demonstrate_renaming_space_bound
from repro.lowerbounds.symmetry import (
    SymmetryAttackResult,
    attack_group_size,
    forbidden_pairs,
    relabel_value,
    ring_system,
    run_symmetry_attack,
    states_symmetric,
)

__all__ = [
    "NaiveTestAndSetLock",
    "NaiveTestAndSetProcess",
    "ConstructionReport",
    "execute_covering_construction",
    "demonstrate_consensus_space_bound",
    "demonstrate_mutex_impossibility",
    "demonstrate_renaming_space_bound",
    "assert_indistinguishable_for",
    "block_write",
    "build_covering_run",
    "covered_register",
    "replay_schedule",
    "run_solo_until_covering",
    "run_until",
    "SymmetryAttackResult",
    "attack_group_size",
    "forbidden_pairs",
    "relabel_value",
    "ring_system",
    "run_symmetry_attack",
    "states_symmetric",
]
