"""Theorem 3.4's lockstep symmetry attack, executable.

    "We arrange the registers as a unidirectional ring of size m [...]
    we pick l processes, and assign these l processes the same ring
    ordering, though potentially different initial registers [...] the
    distance between any two neighbouring initial registers is exactly
    m/l.  We run the l processes in lock steps.  Since only comparisons
    for equality are allowed, processes that take the same number of
    steps will be at the same state, and thus it is not possible to break
    symmetry.  Thus, either all the processes will enter their critical
    sections at the same time violating mutual exclusion, or no process
    will ever enter its critical section violating deadlock-freedom."

:func:`run_symmetry_attack` mechanises this argument against a *concrete*
candidate algorithm:

1. build the ring configuration (requires ``l`` to divide ``m`` — the
   arithmetic content of "m and l are not relatively prime");
2. run the ``l`` processes in lockstep;
3. after every step, detect a **mutual exclusion violation** (two or more
   processes in their critical sections);
4. after every full lockstep round, detect a **deadlock-freedom
   violation** by global-state cycle detection: the system is
   deterministic under the lockstep schedule, so a repeated global state
   with no intervening critical-section entry proves the run loops
   forever with nobody making progress;
5. along the way, verify the proof's symmetry claim: after each full
   round the processes' local states are equal up to identifier
   relabelling (:func:`states_symmetric`).

The attack must *succeed* (find one of the two violations) against every
algorithm in the forbidden regime — e.g. Figure 1 with even ``m`` — and
must *fail* (run out of budget with the candidate making progress)
against Figure 1 with odd ``m``.  Both directions are exercised by the
tests and by ``benchmarks/bench_space_bounds.py``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from math import gcd
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.memory.naming import RingNaming
from repro.runtime.automaton import Algorithm
from repro.runtime.system import System
from repro.types import ProcessId, require


def relabel_value(value, mapping: Dict[ProcessId, ProcessId]):
    """Recursively replace process identifiers inside a local-state value.

    Applies ``mapping`` to every int found in tuples, frozensets and
    (frozen) dataclass fields.  Used to compare local states "up to
    identifier substitution" — the formal content of the proof's
    "processes that take the same number of steps will be at the same
    state".

    Caveat: any int equal to a mapped identifier is relabelled, including
    loop counters that happen to collide.  Experiments avoid collisions
    by using process identifiers ≥ 100; the violation detection itself
    (CS overlap, state cycles) never depends on relabelling.
    """
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return mapping.get(value, value)
    if isinstance(value, tuple):
        return tuple(relabel_value(v, mapping) for v in value)
    if isinstance(value, frozenset):
        return frozenset(relabel_value(v, mapping) for v in value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        changes = {
            f.name: relabel_value(getattr(value, f.name), mapping)
            for f in dataclasses.fields(value)
        }
        return dataclasses.replace(value, **changes)
    return value


def states_symmetric(system: System, pids: Sequence[ProcessId]) -> bool:
    """Whether all listed processes are in the same state up to renaming.

    Every process's local state is canonicalised by mapping the
    participant identifiers to their ring positions *relative to that
    process* (its own id becomes 0, its successor 1, ...); symmetric
    configurations canonicalise identically.
    """
    pids = list(pids)
    l = len(pids)
    canonical = []
    for idx, pid in enumerate(pids):
        mapping = {
            other: (pids.index(other) - idx) % l for other in pids
        }
        state = system.scheduler.runtime(pid).state
        canonical.append(relabel_value(state, mapping))
    return all(c == canonical[0] for c in canonical)


@dataclass
class SymmetryAttackResult:
    """Outcome of one lockstep symmetry attack."""

    #: Candidate algorithm name.
    algorithm: str
    #: Register count m and lockstep group size l.
    m: int
    l: int
    #: "mutual-exclusion", "deadlock-freedom", or None (attack exhausted
    #: its budget without a violation — expected in the allowed regime).
    violation: Optional[str] = None
    #: Steps executed before the verdict.
    steps: int = 0
    #: For deadlock-freedom: the length of the detected state cycle, in
    #: full lockstep rounds.
    cycle_rounds: Optional[int] = None
    #: Processes found simultaneously in the critical section.
    overlapping: Tuple[ProcessId, ...] = ()
    #: Whether the proof's symmetry claim held at every round boundary.
    symmetric_throughout: bool = True
    #: Critical-section entries observed (progress indicator).
    cs_entries: int = 0

    @property
    def violated(self) -> bool:
        """True when the attack found a violation."""
        return self.violation is not None

    def summary(self) -> str:
        """One-line report for experiment tables."""
        if self.violation == "mutual-exclusion":
            return (
                f"ME violation after {self.steps} steps: processes "
                f"{list(self.overlapping)} in CS together"
            )
        if self.violation == "deadlock-freedom":
            return (
                f"DF violation: state cycle of {self.cycle_rounds} round(s) "
                f"with no CS entry (after {self.steps} steps)"
            )
        return f"no violation within {self.steps} steps ({self.cs_entries} CS entries)"


def ring_system(
    algorithm: Algorithm, pids: Sequence[ProcessId], record_trace: bool = False
) -> System:
    """Build the theorem's configuration: equispaced starts on a register
    ring shared by all processes."""
    pids = tuple(pids)
    m = algorithm.register_count()
    l = len(pids)
    require(
        m % l == 0,
        f"the symmetry attack needs l={l} to divide m={m}: the equispaced "
        "ring placement exists exactly when they are not relatively prime",
        ConfigurationError,
    )
    naming = RingNaming.equispaced(pids, m)
    return System(algorithm, pids, naming=naming, record_trace=record_trace)


def run_symmetry_attack(
    algorithm: Algorithm,
    pids: Sequence[ProcessId],
    max_rounds: int = 100_000,
    check_symmetry: bool = True,
) -> SymmetryAttackResult:
    """Run the Theorem 3.4 attack against ``algorithm``.

    ``pids`` are the l processes placed equispaced on the ring (their
    count must divide the algorithm's register count).  The attack runs
    lockstep rounds until it detects a violation, a process halts
    (breaking the premise — counted as "no violation"), or the round
    budget is exhausted.
    """
    pids = tuple(pids)
    system = ring_system(algorithm, pids)
    scheduler = system.scheduler
    mutex_like = all(
        hasattr(scheduler.runtime(pid).automaton, "in_critical_section")
        for pid in pids
    )
    result = SymmetryAttackResult(
        algorithm=algorithm.name, m=system.memory.size, l=len(pids)
    )
    seen_states: Dict[object, int] = {scheduler.capture_state(): 0}

    for round_no in range(1, max_rounds + 1):
        for pid in pids:
            if pid not in scheduler.enabled_pids():
                # A process halted: the lockstep premise is broken (it got
                # through its visits) — the candidate survived.
                return result
            scheduler.step(pid)
            result.steps += 1
            if mutex_like:
                inside = [
                    p
                    for p in pids
                    if scheduler.runtime(p).automaton.in_critical_section(
                        scheduler.runtime(p).state
                    )
                ]
                if len(inside) > 1:
                    result.violation = "mutual-exclusion"
                    result.overlapping = tuple(inside)
                    return result
                if len(inside) == 1:
                    result.cs_entries += 1

        # Round boundary: symmetry diagnostic and cycle detection.
        if check_symmetry and not states_symmetric(system, pids):
            result.symmetric_throughout = False
        global_state = scheduler.capture_state()
        if global_state in seen_states and result.cs_entries == 0:
            result.violation = "deadlock-freedom"
            result.cycle_rounds = round_no - seen_states[global_state]
            return result
        seen_states.setdefault(global_state, round_no)

    return result


def forbidden_pairs(n: int, m_values: Sequence[int]):
    """Enumerate (m, l) pairs Theorem 3.4 forbids for n processes.

    Yields ``(m, l)`` with ``2 <= l <= n`` and ``gcd(m, l) > 1`` — for
    each such pair the attack (run with ``gcd``'s smallest prime divisor
    of processes, or l itself when it divides m) must find a violation.
    """
    for m in m_values:
        for l in range(2, n + 1):
            if gcd(m, l) > 1:
                yield m, l


def attack_group_size(m: int, l: int) -> int:
    """The number of lockstep processes to use against (m, l).

    The proof reduces a non-coprime pair to a divisor: "there is a number
    1 < l <= m such that l divides m".  We use the smallest prime factor
    of gcd(m, l), which both divides m and is at most l.
    """
    g = gcd(m, l)
    require(g > 1, f"m={m} and l={l} are relatively prime; nothing to attack")
    factor = next(d for d in range(2, g + 1) if g % d == 0)
    return factor
