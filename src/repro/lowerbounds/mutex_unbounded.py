"""Theorem 6.2, executable: no deadlock-free mutex with unknown #processes.

    "There is no deadlock-free mutual exclusion algorithm using unnamed
    registers when the number of processes is not a priori known."

The proof recruits one covering process per register the solo winner
wrote, erases the winner's traces with a block write, and lets the
deadlock-freedom property march a second process into the critical
section.  :func:`demonstrate_mutex_impossibility` runs that construction
against a concrete candidate and reports which property broke:

* candidates whose covering victims still make progress (e.g. the naive
  single-register lock) end with **two processes in the critical
  section** — the proof's run ``rho``;
* candidates that defend mutual exclusion (e.g. Figure 1 facing more
  processes than two) instead **stop making progress** in the P-only run
  ``z`` — a deadlock-freedom violation, detected by global-state cycle.

Either way the candidate fails, which is the theorem.  Since Theorem 6.2
is what separates the models (a deadlock-free mutex for unboundedly many
processes *does* exist with named registers [17]), this module is also
the executable witness of Theorem 6.1.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

from repro.lowerbounds.construction import (
    ConstructionReport,
    execute_covering_construction,
)
from repro.runtime.adversary import RoundRobinAdversary
from repro.runtime.automaton import Algorithm
from repro.runtime.scheduler import Scheduler
from repro.types import ProcessId


def _in_cs(scheduler: Scheduler, pid: ProcessId) -> bool:
    rt = scheduler.runtime(pid)
    return not rt.halted and rt.automaton.in_critical_section(rt.state)


def _q_done(scheduler: Scheduler, pid: ProcessId) -> bool:
    return _in_cs(scheduler, pid)


def _q_outcome(scheduler: Scheduler, pid: ProcessId) -> str:
    return "in-critical-section"


def _z_done(scheduler: Scheduler, pids: Sequence[ProcessId]) -> bool:
    return any(_in_cs(scheduler, pid) for pid in pids)


def _classify(scheduler: Scheduler, q_pid: ProcessId, pids: Sequence[ProcessId]) -> str:
    inside = [pid for pid in (q_pid, *pids) if _in_cs(scheduler, pid)]
    if len(inside) >= 2:
        return (
            f"mutual exclusion violated: processes {inside} are in their "
            "critical sections simultaneously"
        )
    return (  # pragma: no cover - z_done guarantees two occupants
        f"construction completed but only {inside} in the critical section"
    )


def demonstrate_mutex_impossibility(
    algorithm_factory: Callable[[], Algorithm],
    q_pid: ProcessId = 101,
    pool_pids: Tuple[ProcessId, ...] = tuple(range(201, 233)),
    max_solo_steps: int = 200_000,
    max_z_steps: int = 200_000,
) -> ConstructionReport:
    """Run the Theorem 6.2 construction against a mutex candidate.

    ``pool_pids`` is the reservoir of fresh processes the "number of
    processes is not a priori known" premise grants us; exactly
    ``|write(y, q)|`` of them are recruited.
    """
    return execute_covering_construction(
        algorithm_factory,
        problem="deadlock-free mutual exclusion (Thm 6.2)",
        q_pid=q_pid,
        q_input=None,
        p_pool=[(pid, None) for pid in pool_pids],
        q_done=_q_done,
        q_outcome=_q_outcome,
        z_done=_z_done,
        make_z_adversary=lambda pids: RoundRobinAdversary(order=list(pids)),
        classify_violation=_classify,
        max_solo_steps=max_solo_steps,
        max_z_steps=max_z_steps,
    )
