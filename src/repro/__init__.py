"""repro — reproduction of "Coordination Without Prior Agreement"
(Gadi Taubenfeld, PODC 2017).

The package implements the paper's model of *memory-anonymous*
shared-memory computation — atomic MWMR registers with no globally agreed
names — together with its three algorithms, the named-model baselines it
contrasts against, and executable versions of its lower-bound and
impossibility constructions.

Layout
------
``repro.memory``
    Registers, per-process register namings, anonymous memory views,
    record encodings, snapshot object.
``repro.runtime``
    Process automata, adversarial scheduler, traces, bounded exhaustive
    exploration, real-thread backend.
``repro.core``
    The paper's algorithms: Figure 1 mutex, Figure 2 consensus, §4
    election, Figure 3 adaptive perfect renaming.
``repro.baselines``
    Named-register comparators: Peterson/tournament mutex, named
    consensus, election-chain renaming, register padding.
``repro.lowerbounds``
    Theorem 3.4's lockstep symmetry attack and the Section 6 covering
    constructions, as executable run builders.
``repro.spec``
    Trace checkers for every property the theorems claim.
``repro.analysis``
    Experiment sweeps, metrics and table rendering for the benchmark
    harness.
``repro.obs``
    Structured run observability: telemetry sinks (counters, gauges,
    phase timers, bounded events), versioned run manifests, and the
    ``python -m repro report`` renderer.
``repro.problems``
    The declarative problem registry: one :class:`ProblemSpec` per
    shipped algorithm (builder, parameter space, invariants, declared
    liveness theorems, role-tagged instances) — the single table lint,
    verify, sweep and the benchmark all resolve algorithms through.
``repro.verify``
    Exhaustive verification: state-graph retention during exploration,
    SCC-based deadlock-freedom and solo-run obstruction-freedom
    checking, replayable lasso counterexamples
    (``python -m repro verify``).

Quickstart
----------
>>> from repro import AnonymousConsensus, System, RandomNaming
>>> from repro.runtime import StagedObstructionAdversary
>>> system = System(AnonymousConsensus(n=3), {7: "red", 21: "green", 9: "blue"},
...                 naming=RandomNaming(seed=1))
>>> trace = system.run(StagedObstructionAdversary(prefix_steps=30, seed=1))
>>> len(set(trace.outputs.values()))
1
"""

from repro.analysis.experiments import sweep, sweep_problem
from repro.core.consensus import AnonymousConsensus
from repro.core.election import AnonymousElection, elected_leader
from repro.core.mutex import AnonymousMutex
from repro.core.renaming import AnonymousRenaming
from repro.errors import (
    AgreementViolation,
    ConfigurationError,
    DeadlockFreedomViolation,
    ManifestValidationError,
    MutualExclusionViolation,
    NameRangeViolation,
    ProtocolError,
    ReproError,
    SchedulingError,
    SpecViolation,
    TerminationViolation,
    UniquenessViolation,
    ValidityViolation,
    VerificationError,
)
from repro.memory import (
    AnonymousMemory,
    ExplicitNaming,
    IdentityNaming,
    RandomNaming,
    RingNaming,
)
from repro.obs import NULL_TELEMETRY, NullTelemetry, RunManifest, Telemetry
from repro.problems import ProblemInstance, ProblemSpec, get_problem, problem_specs
from repro.runtime import (
    LockstepAdversary,
    RandomAdversary,
    RoundRobinAdversary,
    SoloAdversary,
    StagedObstructionAdversary,
    System,
    explore,
    run_threaded,
    run_threaded_with_backoff,
)
from repro.verify import (
    StateGraph,
    VerificationReport,
    verify_instance,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core algorithms
    "AnonymousMutex",
    "AnonymousConsensus",
    "AnonymousElection",
    "elected_leader",
    "AnonymousRenaming",
    # memory
    "AnonymousMemory",
    "IdentityNaming",
    "RandomNaming",
    "RingNaming",
    "ExplicitNaming",
    # runtime + analysis
    "System",
    "explore",
    "sweep",
    "sweep_problem",
    # problem registry + exhaustive verification
    "ProblemSpec",
    "ProblemInstance",
    "problem_specs",
    "get_problem",
    "StateGraph",
    "VerificationReport",
    "verify_instance",
    # observability
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "RunManifest",
    "RandomAdversary",
    "RoundRobinAdversary",
    "LockstepAdversary",
    "SoloAdversary",
    "StagedObstructionAdversary",
    "run_threaded",
    "run_threaded_with_backoff",
    # errors
    "ReproError",
    "ConfigurationError",
    "ManifestValidationError",
    "ProtocolError",
    "SchedulingError",
    "SpecViolation",
    "MutualExclusionViolation",
    "DeadlockFreedomViolation",
    "AgreementViolation",
    "ValidityViolation",
    "UniquenessViolation",
    "NameRangeViolation",
    "TerminationViolation",
    "VerificationError",
]
