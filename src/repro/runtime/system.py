"""System façade: assemble memory + automata + scheduler in one call.

Experiments, tests and examples all follow the same pattern: pick an
algorithm, pick the participants and their inputs, pick the adversary's
register naming, run under some schedule, check the trace.
:class:`System` packages the first three steps; its :meth:`System.run`
performs the fourth.

Example
-------
>>> from repro.core.consensus import AnonymousConsensus
>>> from repro.memory.naming import RandomNaming
>>> from repro.runtime.adversary import StagedObstructionAdversary
>>> from repro.runtime.system import System
>>> system = System(
...     AnonymousConsensus(n=3),
...     inputs={10: "a", 20: "b", 30: "c"},
...     naming=RandomNaming(seed=7),
... )
>>> trace = system.run(StagedObstructionAdversary(prefix_steps=40, seed=7))
>>> len(set(trace.outputs.values())) == 1
True
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Sequence

from repro.errors import ConfigurationError
from repro.memory.anonymous import AnonymousMemory
from repro.memory.naming import IdentityNaming, NamingAssignment
from repro.runtime.adversary import Adversary
from repro.runtime.automaton import Algorithm
from repro.runtime.events import Trace
from repro.runtime.scheduler import Scheduler
from repro.types import ProcessId, require, validate_distinct_ids


class System:
    """A ready-to-run configuration of one algorithm instance.

    Parameters
    ----------
    algorithm:
        The :class:`~repro.runtime.automaton.Algorithm` to execute.
    inputs:
        Either a mapping ``{pid: input}`` or a plain sequence of pids (for
        input-free problems such as mutual exclusion, where the "input"
        defaults to ``None``).
    naming:
        The adversary's register-naming choice.  Defaults to identity.
        Named-model baselines *reject* any other naming — they are the
        algorithms whose correctness depends on prior agreement.
    locked:
        Use lock-guarded registers (when the system will be driven by the
        real-thread backend rather than the scheduler).
    record_trace:
        Forwarded to the scheduler; exploration turns it off.
    telemetry:
        Optional :class:`~repro.obs.telemetry.TelemetrySink`, forwarded
        to the scheduler for per-step and contention counters (see
        :class:`~repro.runtime.scheduler.Scheduler`).
    """

    def __init__(
        self,
        algorithm: Algorithm,
        inputs,
        naming: Optional[NamingAssignment] = None,
        locked: bool = False,
        record_trace: bool = True,
        telemetry=None,
    ):
        self.algorithm = algorithm
        if isinstance(inputs, Mapping):
            self.inputs: Dict[ProcessId, Any] = dict(inputs)
        else:
            # Validate the raw sequence before the dict comprehension can
            # silently collapse duplicate pids.
            pid_list = list(inputs)
            validate_distinct_ids(pid_list)
            self.inputs = {pid: None for pid in pid_list}
        validate_distinct_ids(self.inputs.keys())
        require(
            len(self.inputs) >= 1,
            "a system needs at least one participating process",
            ConfigurationError,
        )

        self.naming = naming if naming is not None else IdentityNaming()
        if not algorithm.is_anonymous() and not isinstance(self.naming, IdentityNaming):
            raise ConfigurationError(
                f"{algorithm.name} assumes named registers (prior agreement) "
                f"and cannot run under {self.naming.describe()}; this is "
                "precisely the distinction the paper studies"
            )

        self.memory = AnonymousMemory(
            size=algorithm.register_count(),
            pids=tuple(self.inputs),
            naming=self.naming,
            initial=algorithm.initial_value(),
            locked=locked,
        )
        self.automata = {
            pid: algorithm.automaton_for(pid, value)
            for pid, value in self.inputs.items()
        }
        self.scheduler = Scheduler(
            self.memory, self.automata, record_trace=record_trace,
            telemetry=telemetry,
        )

    @property
    def pids(self) -> Sequence[ProcessId]:
        """The participating process identifiers."""
        return tuple(self.inputs)

    def run(self, adversary: Adversary, max_steps: int = 100_000) -> Trace:
        """Run to adversary stop / all-halted / step budget; return trace."""
        return self.scheduler.run(adversary, max_steps=max_steps)

    def outputs(self) -> Dict[ProcessId, Any]:
        """Outputs of all processes that have halted so far."""
        return self.scheduler.outputs()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"System({self.algorithm.name}, pids={list(self.inputs)}, "
            f"m={self.memory.size}, naming={self.naming.describe()})"
        )


def fresh_system(algorithm: Algorithm, inputs, **kwargs) -> System:
    """Build a new :class:`System`; sugar for sweep loops in experiments."""
    return System(algorithm, inputs, **kwargs)
