"""Adversary strategies: who takes the next step.

The paper's correctness claims quantify over *all* schedules, and its
lower-bound proofs are constructive schedules.  This module provides both
kinds of adversary:

* coverage adversaries for testing possibility results —
  :class:`RandomAdversary`, :class:`RoundRobinAdversary`,
  :class:`AlternatingBurstAdversary`;
* proof adversaries that mechanise the paper's arguments —
  :class:`LockstepAdversary` (Theorem 3.4: "we run the l processes in lock
  steps"), :class:`SoloAdversary` and :class:`StagedObstructionAdversary`
  (the obstruction-freedom scenario: "runs alone for sufficiently long"),
  :class:`FixedScheduleAdversary` (replay of explicitly constructed runs,
  used by the Section 6 covering constructions), and
  :class:`CrashAdversary` (crash faults at chosen points).

An adversary's :meth:`Adversary.choose` receives the scheduler itself —
the model's adversary is "very powerful" (§2) and may inspect everything,
including pending operations and register contents.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import SchedulingError
from repro.types import ProcessId


class Adversary:
    """Base class.  Subclasses override :meth:`choose`."""

    def choose(self, scheduler) -> Optional[ProcessId]:
        """Pick the next process to step, or ``None`` to stop the run.

        Must return a pid from ``scheduler.enabled_pids()`` (or ``None``).
        """
        raise NotImplementedError

    def observe(self, event, scheduler) -> None:
        """Hook called after every executed event (default: ignore)."""

    def reset(self) -> None:
        """Forget accumulated state so the adversary can drive a new run."""

    def describe(self) -> str:
        """One-line description for experiment reports."""
        return type(self).__name__


class RoundRobinAdversary(Adversary):
    """Cycle through the enabled processes in a fixed order.

    With all processes enabled this is a perfectly fair, perfectly regular
    schedule; halted/crashed processes are skipped.
    """

    def __init__(self, order: Optional[Sequence[ProcessId]] = None):
        self._order = list(order) if order is not None else None
        self._cursor = 0

    def choose(self, scheduler) -> Optional[ProcessId]:
        order = self._order if self._order is not None else list(scheduler.pids)
        for _ in range(len(order)):
            pid = order[self._cursor % len(order)]
            self._cursor += 1
            if pid in scheduler.enabled_pids():
                return pid
        return None

    def reset(self) -> None:
        self._cursor = 0


class LockstepAdversary(RoundRobinAdversary):
    """Strict lockstep over a fixed process set — the Theorem 3.4 schedule.

    "We run the l processes in lock steps.  We first let each one of them
    take one step (in some order), and then let each one of them takes
    another step, and so on."  Unlike plain round-robin, a lockstep
    adversary *stops the run* the moment any of its processes becomes
    unable to step (halted or crashed): the symmetry argument is over.
    """

    def __init__(self, pids: Sequence[ProcessId]):
        super().__init__(order=list(pids))
        self._pids = list(pids)

    def choose(self, scheduler) -> Optional[ProcessId]:
        enabled = scheduler.enabled_pids()
        if any(pid not in enabled for pid in self._pids):
            return None
        return super().choose(scheduler)

    def describe(self) -> str:
        return f"LockstepAdversary(pids={self._pids})"


class RandomAdversary(Adversary):
    """Uniformly random choice among enabled processes, seeded."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)

    def choose(self, scheduler) -> Optional[ProcessId]:
        enabled = scheduler.enabled_pids()
        if not enabled:
            return None
        return self._rng.choice(list(enabled))

    def reset(self) -> None:
        self._rng = random.Random(self.seed)

    def describe(self) -> str:
        return f"RandomAdversary(seed={self.seed})"


class AlternatingBurstAdversary(Adversary):
    """Let each chosen process run a random-length burst before switching.

    Bursty schedules hit different interleavings than per-step uniform
    choices (long solo stretches followed by preemption at awkward
    points); they are part of the coverage mix in the test suite.
    """

    def __init__(self, seed: int = 0, max_burst: int = 8):
        self.seed = seed
        self.max_burst = max_burst
        self._rng = random.Random(seed)
        self._current: Optional[ProcessId] = None
        self._remaining = 0

    def choose(self, scheduler) -> Optional[ProcessId]:
        enabled = scheduler.enabled_pids()
        if not enabled:
            return None
        if self._current not in enabled or self._remaining <= 0:
            self._current = self._rng.choice(list(enabled))
            self._remaining = self._rng.randint(1, self.max_burst)
        self._remaining -= 1
        return self._current

    def reset(self) -> None:
        self._rng = random.Random(self.seed)
        self._current = None
        self._remaining = 0

    def describe(self) -> str:
        return f"AlternatingBurstAdversary(seed={self.seed}, max_burst={self.max_burst})"


class FixedScheduleAdversary(Adversary):
    """Replay an explicit schedule, then stop.

    The Section 6 impossibility proofs build runs event by event; this
    adversary is how those constructions are executed.  It is an error if
    a scheduled process cannot step when its turn arrives — the
    construction itself is then wrong, and the experiment must fail
    loudly.
    """

    def __init__(self, schedule: Iterable[ProcessId]):
        self._schedule: List[ProcessId] = list(schedule)
        self._cursor = 0

    def choose(self, scheduler) -> Optional[ProcessId]:
        if self._cursor >= len(self._schedule):
            return None
        pid = self._schedule[self._cursor]
        self._cursor += 1
        if pid not in scheduler.enabled_pids():
            raise SchedulingError(
                f"fixed schedule requires process {pid} to step at position "
                f"{self._cursor - 1}, but it is not enabled"
            )
        return pid

    def reset(self) -> None:
        self._cursor = 0

    def describe(self) -> str:
        return f"FixedScheduleAdversary(len={len(self._schedule)})"


class SoloAdversary(Adversary):
    """Run a single process and nobody else — pure obstruction-freedom.

    Stops when the process halts (or crashes).
    """

    def __init__(self, pid: ProcessId):
        self.pid = pid

    def choose(self, scheduler) -> Optional[ProcessId]:
        if self.pid in scheduler.enabled_pids():
            return self.pid
        return None

    def describe(self) -> str:
        return f"SoloAdversary(pid={self.pid})"


class StagedObstructionAdversary(Adversary):
    """Contended prefix, then each process finishes solo in turn.

    Obstruction-free algorithms guarantee progress only for a process that
    eventually "runs alone for sufficiently long".  This adversary first
    generates ``prefix_steps`` of contention with ``prefix`` (default: a
    seeded random adversary), then picks the first unfinished process and
    runs it solo until it halts, then the next, and so on — producing a
    run where *every* correct process decides, while still exercising the
    algorithm's contention paths.

    This is the reproduction's stand-in for the paper's progress scenario
    and the workhorse of the consensus/renaming experiments.
    """

    def __init__(
        self,
        prefix_steps: int = 50,
        prefix: Optional[Adversary] = None,
        solo_order: Optional[Sequence[ProcessId]] = None,
        seed: int = 0,
    ):
        self.prefix_steps = prefix_steps
        self.prefix = prefix if prefix is not None else RandomAdversary(seed)
        self.solo_order = list(solo_order) if solo_order is not None else None

    def choose(self, scheduler) -> Optional[ProcessId]:
        enabled = scheduler.enabled_pids()
        if not enabled:
            return None
        if scheduler.steps_so_far < self.prefix_steps:
            pid = self.prefix.choose(scheduler)
            if pid is not None:
                return pid
            # Prefix adversary gave up early; fall through to solo phase.
        order = self.solo_order if self.solo_order is not None else list(scheduler.pids)
        for pid in order:
            if pid in enabled:
                return pid
        return None

    def reset(self) -> None:
        self.prefix.reset()

    def describe(self) -> str:
        return (
            f"StagedObstructionAdversary(prefix_steps={self.prefix_steps}, "
            f"prefix={self.prefix.describe()})"
        )


class CrashAdversary(Adversary):
    """Wrap another adversary and crash chosen processes at chosen times.

    ``crash_plan`` maps pid -> global step count at which that process is
    crashed (it takes no step at or after that point).  Crash faults are
    the paper's failure model (§2): a crashed process "permanently
    refrains from writing the shared registers".
    """

    def __init__(self, inner: Adversary, crash_plan: Dict[ProcessId, int]):
        self.inner = inner
        self.crash_plan = dict(crash_plan)
        self._crashed: set = set()

    def choose(self, scheduler) -> Optional[ProcessId]:
        for pid, when in self.crash_plan.items():
            if pid not in self._crashed and scheduler.steps_so_far >= when:
                rt = scheduler.runtime(pid)
                if not rt.halted and not rt.crashed:
                    scheduler.crash(pid)
                self._crashed.add(pid)
        if not scheduler.enabled_pids():
            return None
        return self.inner.choose(scheduler)

    def observe(self, event, scheduler) -> None:
        self.inner.observe(event, scheduler)

    def reset(self) -> None:
        self.inner.reset()
        self._crashed = set()

    def describe(self) -> str:
        return f"CrashAdversary(plan={self.crash_plan}, inner={self.inner.describe()})"


def standard_adversaries(seeds: Iterable[int] = range(5), prefix_steps: int = 60):
    """A representative battery of adversaries for test sweeps.

    Mixes fair round-robin, seeded random, bursty, and staged-obstruction
    schedules — the combination the test suite and experiments run every
    algorithm under.
    """
    battery: List[Adversary] = [RoundRobinAdversary()]
    for seed in seeds:
        battery.append(RandomAdversary(seed))
        battery.append(AlternatingBurstAdversary(seed=seed))
        battery.append(StagedObstructionAdversary(prefix_steps=prefix_steps, seed=seed))
    return battery
