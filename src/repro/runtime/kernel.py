"""The value-state transition kernel: pure steps over immutable states.

The paper's §6.1 defines a global state as "the values of the (local and
shared) registers and the values of the location counters" — a *value*,
not a machine.  The seed runtime nevertheless executed transitions by
mutating one shared :class:`~repro.runtime.scheduler.Scheduler`
(restore → step → capture), which welds every consumer to a single
mutable object and a single core.  This module is the refactor's pivot:
the transition relation as a pure function over the
:data:`GlobalState` value tuple,

    ``step_state(instance, global_state, pid) -> (global_state', meta)``

with no side effects, no shared scheduler, and nothing that cannot be
pickled to another process.  On top of it:

* :class:`StepInstance` — the immutable, picklable description of one
  algorithm instance (automata, register permutations, inputs) that a
  worker needs to run transitions locally;
* :class:`StateView` — a read-only, ``System``-shaped façade over a
  value state, so the stock invariants (and any duck-typed custom
  invariant reading ``system.scheduler.*``) evaluate on values without a
  live scheduler;
* :func:`enabled_pids` / :func:`all_settled` — scheduling predicates as
  pure functions of the state value;
* :func:`execute_via_view` — the one shared transition core the stateful
  :class:`~repro.runtime.scheduler.Scheduler` now delegates to, keeping
  the two execution paths (live runs with traces/audits, value-state
  exploration) semantically identical by construction.

The exploration backends (:mod:`repro.runtime.backends`) are built
entirely on this API: capture/restore becomes cheap value passing, and
fanning a walk out across processes is a matter of shipping
``(instance, state)`` pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional, Sequence, Tuple

from repro.errors import ProtocolError, SchedulingError
from repro.runtime.automaton import LocalState, ProcessAutomaton
from repro.runtime.ops import Operation, ReadOp, WriteOp
from repro.types import ProcessId

#: A captured global state: (register values, ((pid, local state, halted,
#: crashed), ...) sorted by pid).  §6.1: "a (global) state ... is
#: completely described by the values of the (local and shared) registers
#: and the values of the location counters" — local dataclasses carry
#: both locals and pc.  This is a plain immutable value: hashable,
#: picklable, and shared freely between schedulers, backends and worker
#: processes.
GlobalState = Tuple[
    Tuple[Any, ...], Tuple[Tuple[ProcessId, LocalState, bool, bool], ...]
]


@dataclass(frozen=True)
class StepMeta:
    """What happened in one pure step (the value-state analogue of an
    :class:`~repro.runtime.events.Event`, minus the sequence number —
    value states carry no clock)."""

    pid: ProcessId
    op: Operation
    physical_index: Optional[int]
    result: Any
    halted: bool


def execute_via_view(
    automaton: ProcessAutomaton, state: LocalState, view: Any
) -> Tuple[Operation, Optional[int], Any, LocalState, bool]:
    """One transition through a live :class:`~repro.memory.anonymous.MemoryView`.

    The stateful twin of :func:`step_state`: identical decision logic,
    but the memory access goes through the process's view so that lock
    guarding and the :class:`~repro.memory.anonymous.MemoryAudit`
    announce/observe handshake keep working.  This is the core the
    :class:`~repro.runtime.scheduler.Scheduler` façade executes.

    Returns ``(op, physical_index, result, new_state, halted)``.
    """
    op = automaton.next_op(state)
    physical_index: Optional[int] = None
    result: Any = None
    if isinstance(op, ReadOp):
        physical_index = view.physical_index_of(op.index)
        result = view.read(op.index)
    elif isinstance(op, WriteOp):
        physical_index = view.physical_index_of(op.index)
        view.write(op.index, op.value)
    new_state = automaton.apply(state, op, result)
    return op, physical_index, result, new_state, automaton.is_halted(new_state)


class StepInstance:
    """The picklable pure context of one algorithm instance.

    Everything :func:`step_state` needs that is *not* part of the global
    state value: the per-process automata (pure functions), each
    process's private-to-physical register permutation (the naming
    assignment, fixed for the run), and the inputs (for validity-style
    invariants).  A ``StepInstance`` is immutable after construction and
    contains no locks, views or live memory — it ships to worker
    processes with one pickle.

    ``pid_order`` preserves the scheduler's iteration order (system
    construction order), so :func:`enabled_pids` enumerates processes
    exactly as ``Scheduler.enabled_pids`` does — backends that replace
    the mutate-and-rewind walk stay schedule-for-schedule identical.
    """

    def __init__(
        self,
        automata: Dict[ProcessId, ProcessAutomaton],
        permutations: Dict[ProcessId, Tuple[int, ...]],
        inputs: Optional[Dict[ProcessId, Any]] = None,
        pid_order: Optional[Sequence[ProcessId]] = None,
    ) -> None:
        self.automata: Dict[ProcessId, ProcessAutomaton] = dict(automata)
        self.permutations: Dict[ProcessId, Tuple[int, ...]] = {
            pid: tuple(perm) for pid, perm in permutations.items()
        }
        self.inputs: Dict[ProcessId, Any] = dict(inputs or {})
        self.pid_order: Tuple[ProcessId, ...] = tuple(
            pid_order if pid_order is not None else automata
        )
        #: pid -> index into the (pid-sorted) locals part of a GlobalState.
        self.slot_of: Dict[ProcessId, int] = {
            pid: slot for slot, pid in enumerate(sorted(self.automata))
        }

    @classmethod
    def from_system(cls, system: Any) -> StepInstance:
        """Extract the pure context from a configured ``System``."""
        scheduler = system.scheduler
        return cls(
            automata={
                pid: scheduler.runtime(pid).automaton for pid in scheduler.pids
            },
            permutations=system.memory.permutation_table(),
            inputs=dict(system.inputs),
            pid_order=scheduler.pids,
        )

    def slot_entry(
        self, global_state: GlobalState, pid: ProcessId
    ) -> Tuple[ProcessId, LocalState, bool, bool]:
        """The ``(pid, state, halted, crashed)`` entry for ``pid``."""
        return global_state[1][self.slot_of[pid]]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StepInstance(pids={list(self.pid_order)})"


def step_state(
    instance: StepInstance, global_state: GlobalState, pid: ProcessId
) -> Tuple[GlobalState, StepMeta]:
    """Perform ``pid``'s single pending operation, purely.

    Returns the successor global state and a :class:`StepMeta` record.
    ``global_state`` is never modified — both tuples are values; callers
    keep as many (parent, child) pairs alive as they like, which is what
    makes breadth-first frontiers and cross-process fan-out cheap.

    Raises :class:`~repro.errors.SchedulingError` for crashed/halted
    processes and :class:`~repro.errors.ProtocolError` for out-of-range
    register numbers — the same contract as ``Scheduler.step``.
    """
    new_state, meta = _step(instance, global_state, pid)
    return new_state, meta


def step_value(
    instance: StepInstance, global_state: GlobalState, pid: ProcessId
) -> GlobalState:
    """:func:`step_state` without the meta record (explorer hot path)."""
    return _step(instance, global_state, pid, want_meta=False)[0]


def _step(
    instance: StepInstance,
    global_state: GlobalState,
    pid: ProcessId,
    want_meta: bool = True,
) -> Tuple[GlobalState, Optional[StepMeta]]:
    registers, locals_part = global_state
    try:
        slot = instance.slot_of[pid]
    except KeyError:
        raise SchedulingError(f"unknown process id {pid!r}") from None
    entry_pid, state, halted, crashed = locals_part[slot]
    if crashed:
        raise SchedulingError(f"process {pid} has crashed and cannot step")
    if halted:
        raise SchedulingError(f"process {pid} has halted and cannot step")

    automaton = instance.automata[pid]
    op = automaton.next_op(state)
    physical: Optional[int] = None
    result: Any = None
    if isinstance(op, ReadOp):
        physical = _physical_index(instance, pid, op.index)
        result = registers[physical]
    elif isinstance(op, WriteOp):
        physical = _physical_index(instance, pid, op.index)
        registers = (
            registers[:physical] + (op.value,) + registers[physical + 1 :]
        )
    new_local = automaton.apply(state, op, result)
    new_halted = automaton.is_halted(new_local)
    locals_part = (
        locals_part[:slot]
        + ((entry_pid, new_local, new_halted, crashed),)
        + locals_part[slot + 1 :]
    )
    meta = (
        StepMeta(pid, op, physical, result, new_halted) if want_meta else None
    )
    return (registers, locals_part), meta


def _physical_index(
    instance: StepInstance, pid: ProcessId, view_index: int
) -> int:
    perm = instance.permutations[pid]
    if not 0 <= view_index < len(perm):
        raise ProtocolError(
            f"process {pid}: register index {view_index} out of "
            f"range 0..{len(perm) - 1}"
        )
    return perm[view_index]


# ---------------------------------------------------------------------------
# Scheduling predicates over value states
# ---------------------------------------------------------------------------


def solo_run_value(
    instance: StepInstance,
    global_state: GlobalState,
    pid: ProcessId,
    max_steps: int,
) -> Tuple[GlobalState, int, bool]:
    """Run ``pid`` alone from ``global_state`` for at most ``max_steps``.

    The pure-value form of the obstruction-freedom experiment: repeated
    :func:`step_value` applications of a single process with every other
    process suspended.  Returns ``(final_state, steps_taken, settled)``
    where ``settled`` is True when the process halted (or was already
    halted/crashed) before the budget ran out.  The verifier uses this
    to confirm solo-livelock cycles found on the retained state graph by
    actually replaying them through the kernel.
    """
    state = global_state
    slot = instance.slot_of[pid]
    for steps in range(max_steps):
        _, _, halted, crashed = state[1][slot]
        if halted or crashed:
            return state, steps, True
        state = step_value(instance, state, pid)
    _, _, halted, crashed = state[1][slot]
    return state, max_steps, halted or crashed


def enabled_pids(
    instance: StepInstance, global_state: GlobalState
) -> Tuple[ProcessId, ...]:
    """Processes that can take a step, in the instance's scheduler order."""
    locals_part = global_state[1]
    slot_of = instance.slot_of
    return tuple(
        pid
        for pid in instance.pid_order
        if not (locals_part[slot_of[pid]][2] or locals_part[slot_of[pid]][3])
    )


def all_settled(global_state: GlobalState) -> bool:
    """True when every process has halted or crashed.

    The value-state analogue of ``Scheduler.all_settled``.  Under the
    current process model (a process is enabled iff neither halted nor
    crashed) a state is settled exactly when it is terminal; the
    explorers nevertheless count terminal-but-unsettled states as
    "stuck" defensively, so a future process model where a process can
    be disabled without settling (blocked, waiting) is flagged instead
    of silently under-explored.
    """
    return all(halted or crashed for _, _, halted, crashed in global_state[1])


# ---------------------------------------------------------------------------
# Invariant evaluation over value states
# ---------------------------------------------------------------------------


class ProcessStateView:
    """Read-only stand-in for a ``ProcessRuntime`` over one locals entry."""

    __slots__ = ("automaton", "state", "halted", "crashed")

    def __init__(
        self,
        automaton: ProcessAutomaton,
        state: LocalState,
        halted: bool,
        crashed: bool,
    ) -> None:
        self.automaton = automaton
        self.state = state
        self.halted = halted
        self.crashed = crashed

    @property
    def enabled(self) -> bool:
        """Whether the process can take a step."""
        return not self.halted and not self.crashed


class StateView:
    """A ``System``-shaped read surface over a value :data:`GlobalState`.

    Invariants were historically typed against the live ``System`` and
    read ``system.scheduler.runtimes()`` / ``.outputs()`` /
    ``system.inputs``.  A ``StateView`` supports exactly that duck-typed
    surface — including ``view.scheduler is view`` so both spellings
    work — without any scheduler, which lets backends (local or in a
    worker process) check invariants on value states directly.

    The surface is read-only: there is no ``step``, no ``run``, no
    ``crash``.  Invariants that mutate the system were never sound under
    exploration and are not supported.
    """

    def __init__(self, instance: StepInstance, global_state: GlobalState) -> None:
        self._instance = instance
        self._state = global_state

    # ``invariant(view)`` and ``invariant(system)`` must both work on the
    # same code path, so the view answers for its own scheduler.
    @property
    def scheduler(self) -> StateView:
        return self

    @property
    def inputs(self) -> Dict[ProcessId, Any]:
        return self._instance.inputs

    @property
    def global_state(self) -> GlobalState:
        """The underlying value state (observational)."""
        return self._state

    @property
    def pids(self) -> Tuple[ProcessId, ...]:
        return self._instance.pid_order

    def runtime(self, pid: ProcessId) -> ProcessStateView:
        try:
            slot = self._instance.slot_of[pid]
        except KeyError:
            raise SchedulingError(f"unknown process id {pid!r}") from None
        _, state, halted, crashed = self._state[1][slot]
        return ProcessStateView(
            self._instance.automata[pid], state, halted, crashed
        )

    def runtimes(self) -> Iterator[Tuple[ProcessId, ProcessStateView]]:
        """All ``(pid, runtime-view)`` pairs in ascending pid order."""
        automata = self._instance.automata
        for pid, state, halted, crashed in self._state[1]:
            yield pid, ProcessStateView(automata[pid], state, halted, crashed)

    def enabled_pids(self) -> Tuple[ProcessId, ...]:
        return enabled_pids(self._instance, self._state)

    def all_settled(self) -> bool:
        return all_settled(self._state)

    def all_halted(self) -> bool:
        return not self.enabled_pids()

    def output_of(self, pid: ProcessId) -> Any:
        view = self.runtime(pid)
        if not view.halted:
            raise SchedulingError(f"process {pid} has not halted")
        return view.automaton.output(view.state)

    def outputs(self) -> Dict[ProcessId, Any]:
        automata = self._instance.automata
        return {
            pid: automata[pid].output(state)
            for pid, state, halted, _ in self._state[1]
            if halted
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StateView(pids={list(self.pids)})"
