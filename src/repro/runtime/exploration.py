"""Bounded exhaustive exploration — a small explicit-state model checker.

Randomised adversaries sample the schedule space; for the safety theorems
(mutual exclusion, agreement, uniqueness) we can do better on small
instances: enumerate **every** reachable global state.  Because automata
keep their local state in immutable dataclasses, a global state is
hashable (§6.1's "values of the registers and the location counters"),
so a depth-first search with state deduplication is sound and, when it
reaches a fixpoint within its budgets, *complete*: the checked invariant
then provably holds on every schedule of that instance.

This is how the reproduction turns Theorem 3.2 ("the algorithm satisfies
mutual exclusion") from a sampled claim into an exhaustively verified one
for concrete (n, m, naming) instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.errors import ExplorationLimitExceeded
from repro.runtime.system import System
from repro.types import ProcessId

#: An invariant receives the system in the current (restored) global state
#: and returns ``None`` if the state is fine, or a human-readable
#: description of the violation.
Invariant = Callable[[System], Optional[str]]


@dataclass
class ExplorationResult:
    """Outcome of a bounded exhaustive exploration."""

    #: True when the reachable state space was fully explored within the
    #: budgets — the invariant then holds on *all* schedules.
    complete: bool
    #: Number of distinct global states visited.
    states_explored: int
    #: Total scheduler events executed (includes re-exploration work).
    events_executed: int
    #: Deepest schedule prefix reached.
    max_depth_reached: int
    #: Description of the first invariant violation found, if any.
    violation: Optional[str] = None
    #: The schedule (sequence of pids) reproducing the violation.
    violation_schedule: Optional[Tuple[ProcessId, ...]] = None
    #: Terminal states (no process enabled) where not all processes halted.
    stuck_states: int = 0
    #: Budget that stopped the search early, when not complete.
    truncated_by: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when no violation was found."""
        return self.violation is None

    def summary(self) -> str:
        """One-line report for experiment tables."""
        status = "VIOLATION" if self.violation else (
            "exhaustive-ok" if self.complete else "bounded-ok"
        )
        line = (
            f"{status}: {self.states_explored} states, "
            f"{self.events_executed} events, depth<={self.max_depth_reached}"
        )
        if self.truncated_by is not None:
            line += f", truncated by {self.truncated_by}"
        if self.stuck_states:
            line += f", {self.stuck_states} stuck states"
        return line


def explore(
    system: System,
    invariant: Invariant,
    max_states: int = 500_000,
    max_depth: int = 10_000,
    raise_on_truncation: bool = False,
) -> ExplorationResult:
    """Exhaustively explore ``system``'s reachable states, checking
    ``invariant`` in each.

    The system must have been built with ``record_trace=False`` (tracing
    millions of replayed events would defeat the purpose); its current
    state is taken as the initial state.  The search is depth-first with
    global-state deduplication.

    Parameters
    ----------
    system:
        The configured :class:`~repro.runtime.system.System` to explore.
    invariant:
        Checked in every reachable state; first violation stops the search
        and is reported with a reproducing schedule.
    max_states / max_depth:
        Search budgets.  If either is hit the result has
        ``complete=False`` (and ``raise_on_truncation`` optionally turns
        that into :class:`~repro.errors.ExplorationLimitExceeded`).
    """
    scheduler = system.scheduler
    if scheduler.record_trace:
        # Tolerate it, but stop accumulating events from here on.
        scheduler.record_trace = False

    initial = scheduler.capture_state()
    visited = {initial}
    # Each frame: (captured state, depth, parent link).  The link is a
    # structure-sharing chain (parent_link, pid) so path reconstruction
    # costs O(depth) only when a violation is actually found — storing a
    # schedule tuple per frame would cost O(depth^2) memory overall.
    stack: List[Tuple[object, int, Optional[tuple]]] = [(initial, 0, None)]
    result = ExplorationResult(
        complete=True, states_explored=0, events_executed=0, max_depth_reached=0
    )

    def unwind(link: Optional[tuple]) -> Tuple[ProcessId, ...]:
        path: List[ProcessId] = []
        while link is not None:
            link, pid = link
            path.append(pid)
        return tuple(reversed(path))

    while stack:
        state, depth, link = stack.pop()
        scheduler.restore_state(state)
        result.states_explored += 1
        result.max_depth_reached = max(result.max_depth_reached, depth)

        violation = invariant(system)
        if violation is not None:
            result.violation = violation
            result.violation_schedule = unwind(link)
            result.complete = False
            return result

        enabled = scheduler.enabled_pids()
        if not enabled:
            if not all(
                scheduler.runtime(pid).halted or scheduler.runtime(pid).crashed
                for pid in scheduler.pids
            ):
                result.stuck_states += 1
            continue

        if depth >= max_depth:
            result.complete = False
            result.truncated_by = "max_depth"
            continue

        for pid in enabled:
            scheduler.restore_state(state)
            scheduler.step(pid)
            result.events_executed += 1
            successor = scheduler.capture_state()
            if successor in visited:
                continue
            if len(visited) >= max_states:
                result.complete = False
                result.truncated_by = "max_states"
                continue
            visited.add(successor)
            stack.append((successor, depth + 1, (link, pid)))

    if raise_on_truncation and not result.complete and result.violation is None:
        raise ExplorationLimitExceeded(
            f"exploration truncated by {result.truncated_by}; "
            f"{result.states_explored} states visited"
        )
    return result


# ---------------------------------------------------------------------------
# Stock invariants
# ---------------------------------------------------------------------------


def mutual_exclusion_invariant(system: System) -> Optional[str]:
    """At most one process inside its critical section.

    Requires the automata to expose ``in_critical_section(state)`` (all
    mutex automata in this library do, via
    :class:`repro.core.mutex.MutexAutomatonMixin`).
    """
    inside = [
        pid
        for pid, rt in sorted(system.scheduler._runtimes.items())
        if not rt.halted and rt.automaton.in_critical_section(rt.state)
    ]
    if len(inside) > 1:
        return f"processes {inside} are in the critical section simultaneously"
    return None


def agreement_invariant(system: System) -> Optional[str]:
    """All halted processes decided the same value."""
    outputs = system.scheduler.outputs()
    decided = {pid: out for pid, out in outputs.items() if out is not None}
    if len(set(decided.values())) > 1:
        return f"conflicting decisions: {decided}"
    return None


def validity_invariant(system: System) -> Optional[str]:
    """Every decision equals some participant's input."""
    legal = set(system.inputs.values())
    outputs = system.scheduler.outputs()
    for pid, out in outputs.items():
        if out is not None and out not in legal:
            return f"process {pid} decided {out!r}, not an input ({legal})"
    return None


def unique_names_invariant(system: System) -> Optional[str]:
    """No two halted processes hold the same new name, and all names are
    within ``{1..n}``."""
    outputs = {
        pid: out for pid, out in system.scheduler.outputs().items() if out is not None
    }
    names = list(outputs.values())
    if len(set(names)) != len(names):
        return f"duplicate names acquired: {outputs}"
    n = len(system.inputs)
    bad = {pid: name for pid, name in outputs.items() if not 1 <= name <= n}
    if bad:
        return f"names outside 1..{n}: {bad}"
    return None


def conjoin(*invariants: Invariant) -> Invariant:
    """Combine invariants; reports the first violation among them."""

    def combined(system: System) -> Optional[str]:
        for inv in invariants:
            message = inv(system)
            if message is not None:
                return message
        return None

    return combined
