"""Bounded exhaustive exploration — a small explicit-state model checker.

Randomised adversaries sample the schedule space; for the safety theorems
(mutual exclusion, agreement, uniqueness) we can do better on small
instances: enumerate **every** reachable global state.  Because automata
keep their local state in immutable dataclasses, a global state is
hashable (§6.1's "values of the registers and the location counters"),
so a depth-first search with state deduplication is sound and, when it
reaches a fixpoint within its budgets, *complete*: the checked invariant
then provably holds on every schedule of that instance.

This is how the reproduction turns Theorem 3.2 ("the algorithm satisfies
mutual exclusion") from a sampled claim into an exhaustively verified one
for concrete (n, m, naming) instances.

Deduplication is delegated to a
:class:`~repro.runtime.canonical.Canonicalizer`: at minimum a compact
interned encoding of the raw global state, and — via
``explore(..., reduction="symmetry")`` — a quotient under the
instance's naming-automorphism group, which collapses states that
differ only by a symmetry and typically shrinks the visited set by the
group order and more (see docs/EXPLORATION.md for the soundness
argument).  The quotient walk explores *real* states (one
representative per orbit), so reported violation schedules replay
directly on a fresh system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Tuple, Union

from repro.errors import ConfigurationError, ExplorationLimitExceeded
from repro.obs.telemetry import NULL_TELEMETRY, TelemetrySink
from repro.runtime.canonical import (
    Canonicalizer,
    TrivialCanonicalizer,
    build_canonicalizer,
)
from repro.runtime.system import System
from repro.types import ProcessId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (backends
    # imports ExplorationResult from here at runtime)
    from repro.request import RunRequest
    from repro.runtime.backends import ExplorationBackend
    from repro.verify.graph import StateGraph

#: An invariant receives the system (or a value-state
#: :class:`~repro.runtime.kernel.StateView`, which exposes the same
#: duck-typed read surface) in the state under check and returns ``None``
#: if the state is fine, or a human-readable description of the
#: violation.
Invariant = Callable[[System], Optional[str]]


@dataclass
class ExplorationResult:
    """Outcome of a bounded exhaustive exploration.

    Two orthogonal axes describe the outcome:

    * ``violation`` / :attr:`ok` — whether the invariant failed in some
      reached state;
    * ``complete`` / ``truncated_by`` — whether the walk reached a
      fixpoint.  **Invariant:** ``complete ⟺ truncated_by is None``,
      always.  A search stopped early — by a budget (``"max_states"``,
      ``"max_depth"``), by the parallel backend's fixed-capacity
      visited table (``"visited_table_full"``), or by a found
      violation (``"violation"``) — has
      explored a strict under-approximation of the reachable space, so
      its ``complete`` is False even though its verdict may already be
      final.

    ``exhaustive-ok`` therefore means exactly: every reachable state
    (up to the canonicalizer's symmetry quotient) satisfies the
    invariant.
    """

    #: True when the reachable state space was fully explored within the
    #: budgets — the invariant then holds on *all* schedules.  Always
    #: equal to ``truncated_by is None``.
    complete: bool
    #: Number of distinct global states visited (orbit representatives
    #: when symmetry reduction is active).
    states_explored: int
    #: Total scheduler events executed (includes re-exploration work).
    events_executed: int
    #: Deepest schedule prefix reached.
    max_depth_reached: int
    #: Description of the first invariant violation found, if any.
    violation: Optional[str] = None
    #: The schedule (sequence of pids) reproducing the violation.
    violation_schedule: Optional[Tuple[ProcessId, ...]] = None
    #: Terminal states (no process enabled) that are not *settled*
    #: (halted or crashed).  Provably 0 under the current process model
    #: (enabled ⟺ neither halted nor crashed); counted defensively so a
    #: future model with disabled-but-unsettled processes (blocked,
    #: waiting) cannot be silently under-explored.
    stuck_states: int = 0
    #: What stopped the search before it exhausted the reachable states:
    #: ``"max_states"``, ``"max_depth"``, ``"visited_table_full"`` (the
    #: parallel backend's fixed-capacity shared-memory visited table
    #: overflowed — see repro.runtime.visited), ``"violation"``, or
    #: ``None`` (fixpoint reached — the search is complete).
    truncated_by: Optional[str] = None
    #: Successor encounters whose state was new but whose symmetry orbit
    #: was already visited — the work the quotient saved.  Always 0 under
    #: a trivial canonicalizer.
    orbits_collapsed: int = 0
    #: Order of the symmetry group the canonicalizer reduced by (1 when
    #: trivial).
    group_size: int = 1
    #: Wall-clock duration of the walk, in seconds.
    wall_seconds: float = 0.0
    #: Final size of the visited table (canonical keys), the walk's
    #: peak memory driver.
    peak_visited: int = 0
    #: Name of the backend that ran the walk
    #: (``"serial"``/``"parallel"``/``"compiled"``).
    backend: str = "serial"
    #: Worker processes the backend used (1 for serial).
    workers: int = 1
    #: Which step kernel actually executed the walk: ``"interpreted"``
    #: (the ``step_value`` interpreter) or ``"compiled"`` (the
    #: table-compiled packed-state kernel).  A ``CompiledBackend`` that
    #: overflowed its compilation envelope and fell back to the
    #: interpreter reports ``backend="compiled"`` but
    #: ``kernel="interpreted"``.
    kernel: str = "interpreted"
    #: The retained :class:`~repro.verify.graph.StateGraph` when the
    #: walk ran with ``retain_graph=True`` (else ``None``).  On complete
    #: runs the graph is byte-identical across backends; liveness
    #: verification (:mod:`repro.verify.liveness`) consumes it.
    graph: Optional["StateGraph"] = None

    @property
    def ok(self) -> bool:
        """True when no violation was found."""
        return self.violation is None

    @property
    def states_per_second(self) -> Optional[float]:
        """Exploration throughput, or ``None`` when the walk finished
        below timer resolution (a 0-second walk has no meaningful rate;
        reporting 0.0 would silently record the *worst* possible
        throughput for the *fastest* possible walk)."""
        if self.wall_seconds <= 0.0:
            return None
        return self.states_explored / self.wall_seconds

    def summary(self) -> str:
        """One-line report for experiment tables."""
        status = "VIOLATION" if self.violation else (
            "exhaustive-ok" if self.complete else "bounded-ok"
        )
        line = (
            f"{status}: {self.states_explored} states, "
            f"{self.events_executed} events, depth<={self.max_depth_reached}"
        )
        if self.truncated_by is not None and self.truncated_by != "violation":
            line += f", truncated by {self.truncated_by}"
        if self.orbits_collapsed:
            line += (
                f", {self.orbits_collapsed} orbit hits (group {self.group_size})"
            )
        if self.stuck_states:
            line += f", {self.stuck_states} stuck states"
        return line


def explore(
    system: System,
    invariant: Invariant,
    max_states: int = 500_000,
    max_depth: int = 10_000,
    raise_on_truncation: bool = False,
    canonicalizer: Optional[Canonicalizer] = None,
    backend: Optional[Union[str, "ExplorationBackend"]] = None,
    *,
    reduction: Optional[str] = None,
    kernel: Optional[str] = None,
    telemetry: Optional[TelemetrySink] = None,
    footprints: bool = True,
    max_group: int = 720,
    retain_graph: bool = False,
    request: Optional["RunRequest"] = None,
) -> ExplorationResult:
    """Exhaustively explore ``system``'s reachable states, checking
    ``invariant`` in each.  The single public exploration entrypoint.

    The walk runs entirely over *value* states: the system's current
    state is captured once as the initial state and ``system`` itself is
    never stepped, mutated or rewound — in particular its
    ``record_trace`` flag and trace are left exactly as the caller set
    them (historically this function force-flipped ``record_trace`` to
    False and left it that way; the value-state kernel made the whole
    concern moot).  Invariants are evaluated against a read-only
    :class:`~repro.runtime.kernel.StateView`, which duck-types the
    ``system.scheduler.*`` / ``system.inputs`` surface the stock
    invariants (and the lint passes' custom collectors) read.

    Parameters
    ----------
    system:
        The configured :class:`~repro.runtime.system.System` to explore.
    invariant:
        Checked in every reached representative state; the first
        violation stops the search and is reported with a reproducing
        schedule (replayable from the initial state, e.g. via
        :func:`repro.runtime.replay.replay_schedule`).  With symmetry
        reduction active the invariant must be symmetric — indifferent
        to the renamings the group applies (all stock invariants are).
    max_states / max_depth:
        Search budgets.  Hitting ``max_states`` stops the walk
        immediately; hitting ``max_depth`` prunes deeper exploration
        only.  Either way the result has ``complete=False`` and
        ``truncated_by`` set (``raise_on_truncation`` optionally turns
        budget truncation into
        :class:`~repro.errors.ExplorationLimitExceeded`).
    reduction:
        State-space quotient selector: ``"none"`` (the default — plain
        compact dedup of raw states) or ``"symmetry"`` (the strongest
        sound canonicalizer for this system, built via
        :func:`~repro.runtime.canonical.build_canonicalizer` with
        ``footprints``/``max_group`` — typically shrinks the visited
        set by the naming-automorphism group order and more).  Mutually
        exclusive with ``canonicalizer``.
    canonicalizer:
        Explicit state-keying strategy for callers that need one beyond
        the two ``reduction`` presets (the benchmark harness compares
        engines this way).  Must have been built for this ``system``'s
        scheduler.
    backend:
        The :class:`~repro.runtime.backends.ExplorationBackend` that
        runs the walk — an instance, or the string ``"serial"`` /
        ``"parallel"`` (resolved via
        :func:`~repro.runtime.backends.resolve_backend`).  Defaults to
        :class:`~repro.runtime.backends.SerialBackend` — the historical
        depth-first semantics, bit-identical counters included.  A
        :class:`~repro.runtime.backends.ParallelBackend` runs the
        batched packed-state core instead: worker processes steal
        chunks of packed states from a shared deque and dedup through
        one shared-memory visited table, and a canonical post-order
        merge keeps complete-run results (retained
        ``StateGraph.to_bytes()`` included) bit-identical to the
        serial walk (see docs/EXPLORATION.md for exactly which
        counters may differ on budget-truncated walks).
    kernel:
        Step-kernel selector: ``"interpreted"`` (the default — the
        ``step_value`` interpreter) or ``"compiled"`` (the
        table-compiled packed-state kernel,
        :class:`~repro.runtime.compiled.CompiledBackend` — bit-identical
        results at ~10× the serial throughput on the shipped automata).
        ``"compiled"`` requires the serial backend (the default); it is
        a drop-in replacement for it, so combining it with
        ``backend="parallel"`` raises
        :class:`~repro.errors.ConfigurationError`.  Instances whose
        local-state space or register value domain cannot be enumerated
        fall back to the interpreter automatically —
        :attr:`ExplorationResult.kernel` records which kernel actually
        ran.
    telemetry:
        A :class:`~repro.obs.telemetry.TelemetrySink` receiving phase
        timers (canonicalizer build, walk), visited/frontier gauges and
        periodic progress events.  Defaults to the shared
        :data:`~repro.obs.telemetry.NULL_TELEMETRY`, which disables all
        recording; results are identical either way (pinned by the
        differential tests in ``tests/obs/test_telemetry.py``).
    footprints / max_group:
        Forwarded to the canonicalizer builder when
        ``reduction="symmetry"``; ignored (and unvalidated) otherwise.
    request:
        A :class:`~repro.request.RunRequest` carrying the execution
        fields (``kernel``, ``backend``, ``workers``, ``max_states``,
        ``telemetry``) as one value — the unified spelling shared with
        ``verify_instance``/``sweep_problem``/``run_farm``/``run_fuzz``.
        Request fields win over the keyword defaults; a keyword
        explicitly contradicting a set request field raises
        :class:`~repro.errors.ConfigurationError`.
    retain_graph:
        Record the full labelled successor relation during the walk and
        attach it to the result as
        :attr:`ExplorationResult.graph` (a
        :class:`~repro.verify.graph.StateGraph`).  Requires the trivial
        canonicalizer: under a symmetry quotient the node set depends on
        which orbit representatives the visit order happens to claim and
        the edge pid labels are only correct up to a group element, so a
        quotient graph is sound for *safety* verdicts but not for the
        per-pid fairness analysis the graph exists to feed (see
        :mod:`repro.verify.graph`).  Passing
        ``reduction="symmetry"`` or a non-trivial canonicalizer together
        with ``retain_graph=True`` raises
        :class:`~repro.errors.ConfigurationError`.
    """
    # Imported here, not at module top: backends imports
    # ExplorationResult from this module.
    from repro.runtime.backends import (
        ExplorationTask,
        SerialBackend,
        resolve_backend,
    )
    from repro.runtime.kernel import StepInstance

    if request is not None:
        kernel = request.merged("kernel", kernel)
        backend = request.merged("backend", backend)
        max_states = request.merged("max_states", max_states, default=500_000)
        telemetry = request.merged("telemetry", telemetry)
        if isinstance(backend, str) and request.workers is not None:
            backend = resolve_backend(backend, workers=request.workers)
    if telemetry is None:
        telemetry = NULL_TELEMETRY
    scheduler = system.scheduler
    if reduction is not None and canonicalizer is not None:
        raise ConfigurationError(
            "pass either reduction= or canonicalizer=, not both "
            f"(got reduction={reduction!r} and an explicit canonicalizer)"
        )
    if canonicalizer is None:
        if reduction in (None, "none"):
            canonicalizer = TrivialCanonicalizer(scheduler)
        elif reduction == "symmetry":
            with telemetry.phase("explore.build_canonicalizer"):
                canonicalizer = build_canonicalizer(
                    system, footprints=footprints, max_group=max_group
                )
        else:
            raise ConfigurationError(
                f"unknown reduction {reduction!r}; expected 'symmetry' or 'none'"
            )
    if retain_graph and not isinstance(canonicalizer, TrivialCanonicalizer):
        raise ConfigurationError(
            "retain_graph=True requires the trivial canonicalizer "
            "(reduction='none'): a symmetry-quotient graph's node set "
            "depends on which orbit representatives the visit order "
            "claims, and its edge pid labels are only correct up to a "
            "group element — unsound for the liveness analyses the "
            "graph feeds (see repro.verify.graph)"
        )
    if backend is None:
        backend = SerialBackend()
    elif isinstance(backend, str):
        backend = resolve_backend(backend)
    if kernel not in (None, "interpreted", "compiled"):
        raise ConfigurationError(
            f"unknown kernel {kernel!r}; expected 'interpreted' or 'compiled'"
        )
    if kernel == "compiled":
        from repro.runtime.compiled import CompiledBackend

        if isinstance(backend, SerialBackend):
            backend = CompiledBackend()
        elif not isinstance(backend, CompiledBackend):
            raise ConfigurationError(
                "kernel='compiled' is a drop-in replacement for the "
                f"serial backend; got backend {backend.name!r}"
            )

    task = ExplorationTask(
        instance=StepInstance.from_system(system),
        initial=scheduler.capture_state(),
        invariant=invariant,
        canonicalizer=canonicalizer,
        max_states=max_states,
        max_depth=max_depth,
        retain_graph=retain_graph,
    )
    if telemetry.enabled:
        telemetry.gauge("explore.group_size", canonicalizer.group_order)
        telemetry.event(
            "explore.start",
            backend=backend.name,
            workers=backend.workers,
            max_states=max_states,
            max_depth=max_depth,
        )
    with telemetry.phase("explore.walk"):
        result = backend.run(task, telemetry=telemetry)
    result.backend = backend.name
    result.workers = backend.workers
    if telemetry.enabled:
        telemetry.gauge("explore.states", result.states_explored)
        telemetry.gauge("explore.peak_visited", result.peak_visited)
        telemetry.gauge("explore.orbit_hits", result.orbits_collapsed)
        if result.graph is not None:
            telemetry.gauge("explore.retained_edges", result.graph.edge_count)
        telemetry.event(
            "explore.done",
            verdict="violation" if not result.ok else (
                "exhaustive-ok" if result.complete else "bounded-ok"
            ),
            states=result.states_explored,
            events=result.events_executed,
            truncated_by=result.truncated_by,
        )
    if raise_on_truncation and result.truncated_by in (
        "max_states", "max_depth", "visited_table_full"
    ):
        raise ExplorationLimitExceeded(
            f"exploration truncated by {result.truncated_by}; "
            f"{result.states_explored} states visited"
        )
    return result


# ---------------------------------------------------------------------------
# Stock invariants
# ---------------------------------------------------------------------------


def mutual_exclusion_invariant(system: System) -> Optional[str]:
    """At most one process inside its critical section.

    Requires the automata to expose ``in_critical_section(state)`` (all
    mutex automata in this library do, via
    :class:`repro.core.mutex.MutexAutomatonMixin`).
    """
    inside = [
        pid
        for pid, rt in system.scheduler.runtimes()
        if not rt.halted and rt.automaton.in_critical_section(rt.state)
    ]
    if len(inside) > 1:
        return f"processes {inside} are in the critical section simultaneously"
    return None


def agreement_invariant(system: System) -> Optional[str]:
    """All halted processes decided the same value."""
    outputs = system.scheduler.outputs()
    decided = {pid: out for pid, out in outputs.items() if out is not None}
    if len(set(decided.values())) > 1:
        return f"conflicting decisions: {decided}"
    return None


def validity_invariant(system: System) -> Optional[str]:
    """Every decision equals some participant's input."""
    legal = set(system.inputs.values())
    outputs = system.scheduler.outputs()
    for pid, out in outputs.items():
        if out is not None and out not in legal:
            return f"process {pid} decided {out!r}, not an input ({legal})"
    return None


def unique_names_invariant(system: System) -> Optional[str]:
    """No two halted processes hold the same new name, and all names are
    within ``{1..n}``."""
    outputs = {
        pid: out for pid, out in system.scheduler.outputs().items() if out is not None
    }
    names = list(outputs.values())
    if len(set(names)) != len(names):
        return f"duplicate names acquired: {outputs}"
    n = len(system.inputs)
    bad = {pid: name for pid, name in outputs.items() if not 1 <= name <= n}
    if bad:
        return f"names outside 1..{n}: {bad}"
    return None


class _ConjoinedInvariant:
    """Conjunction of invariants; reports the first violation among them.

    A class, not a closure, so conjoined invariants are picklable and
    survive the trip to parallel-backend workers under any
    ``multiprocessing`` start method.
    """

    __slots__ = ("invariants",)

    def __init__(self, invariants: Tuple[Invariant, ...]) -> None:
        self.invariants = invariants

    def __call__(self, system: System) -> Optional[str]:
        for inv in self.invariants:
            message = inv(system)
            if message is not None:
                return message
        return None


def conjoin(*invariants: Invariant) -> Invariant:
    """Combine invariants; reports the first violation among them."""
    return _ConjoinedInvariant(invariants)
