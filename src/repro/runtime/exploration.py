"""Bounded exhaustive exploration — a small explicit-state model checker.

Randomised adversaries sample the schedule space; for the safety theorems
(mutual exclusion, agreement, uniqueness) we can do better on small
instances: enumerate **every** reachable global state.  Because automata
keep their local state in immutable dataclasses, a global state is
hashable (§6.1's "values of the registers and the location counters"),
so a depth-first search with state deduplication is sound and, when it
reaches a fixpoint within its budgets, *complete*: the checked invariant
then provably holds on every schedule of that instance.

This is how the reproduction turns Theorem 3.2 ("the algorithm satisfies
mutual exclusion") from a sampled claim into an exhaustively verified one
for concrete (n, m, naming) instances.

Deduplication is delegated to a
:class:`~repro.runtime.canonical.Canonicalizer`: at minimum a compact
interned encoding of the raw global state, and — via
:func:`explore_symmetry_reduced` — a quotient under the instance's
naming-automorphism group, which collapses states that differ only by a
symmetry and typically shrinks the visited set by the group order and
more (see docs/EXPLORATION.md for the soundness argument).  The quotient
walk explores *real* states (one representative per orbit), so reported
violation schedules replay directly on a fresh system.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ExplorationLimitExceeded
from repro.runtime.canonical import (
    Canonicalizer,
    CanonicalKey,
    TrivialCanonicalizer,
    build_canonicalizer,
)
from repro.runtime.system import System
from repro.types import ProcessId

#: An invariant receives the system in the current (restored) global state
#: and returns ``None`` if the state is fine, or a human-readable
#: description of the violation.
Invariant = Callable[[System], Optional[str]]


@dataclass
class ExplorationResult:
    """Outcome of a bounded exhaustive exploration.

    Two orthogonal axes describe the outcome:

    * ``violation`` / :attr:`ok` — whether the invariant failed in some
      reached state;
    * ``complete`` / ``truncated_by`` — whether the walk reached a
      fixpoint.  **Invariant:** ``complete ⟺ truncated_by is None``,
      always.  A search stopped early — by a budget (``"max_states"``,
      ``"max_depth"``) or by a found violation (``"violation"``) — has
      explored a strict under-approximation of the reachable space, so
      its ``complete`` is False even though its verdict may already be
      final.

    ``exhaustive-ok`` therefore means exactly: every reachable state
    (up to the canonicalizer's symmetry quotient) satisfies the
    invariant.
    """

    #: True when the reachable state space was fully explored within the
    #: budgets — the invariant then holds on *all* schedules.  Always
    #: equal to ``truncated_by is None``.
    complete: bool
    #: Number of distinct global states visited (orbit representatives
    #: when symmetry reduction is active).
    states_explored: int
    #: Total scheduler events executed (includes re-exploration work).
    events_executed: int
    #: Deepest schedule prefix reached.
    max_depth_reached: int
    #: Description of the first invariant violation found, if any.
    violation: Optional[str] = None
    #: The schedule (sequence of pids) reproducing the violation.
    violation_schedule: Optional[Tuple[ProcessId, ...]] = None
    #: Terminal states (no process enabled) where not all processes halted.
    stuck_states: int = 0
    #: What stopped the search before it exhausted the reachable states:
    #: ``"max_states"``, ``"max_depth"``, ``"violation"``, or ``None``
    #: (fixpoint reached — the search is complete).
    truncated_by: Optional[str] = None
    #: Successor encounters whose state was new but whose symmetry orbit
    #: was already visited — the work the quotient saved.  Always 0 under
    #: a trivial canonicalizer.
    orbits_collapsed: int = 0
    #: Order of the symmetry group the canonicalizer reduced by (1 when
    #: trivial).
    group_size: int = 1
    #: Wall-clock duration of the walk, in seconds.
    wall_seconds: float = 0.0
    #: Final size of the visited table (canonical keys), the walk's
    #: peak memory driver.
    peak_visited: int = 0

    @property
    def ok(self) -> bool:
        """True when no violation was found."""
        return self.violation is None

    @property
    def states_per_second(self) -> float:
        """Exploration throughput (0.0 when the walk was too fast to time)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.states_explored / self.wall_seconds

    def summary(self) -> str:
        """One-line report for experiment tables."""
        status = "VIOLATION" if self.violation else (
            "exhaustive-ok" if self.complete else "bounded-ok"
        )
        line = (
            f"{status}: {self.states_explored} states, "
            f"{self.events_executed} events, depth<={self.max_depth_reached}"
        )
        if self.truncated_by is not None and self.truncated_by != "violation":
            line += f", truncated by {self.truncated_by}"
        if self.orbits_collapsed:
            line += (
                f", {self.orbits_collapsed} orbit hits (group {self.group_size})"
            )
        if self.stuck_states:
            line += f", {self.stuck_states} stuck states"
        return line


def explore(
    system: System,
    invariant: Invariant,
    max_states: int = 500_000,
    max_depth: int = 10_000,
    raise_on_truncation: bool = False,
    canonicalizer: Optional[Canonicalizer] = None,
) -> ExplorationResult:
    """Exhaustively explore ``system``'s reachable states, checking
    ``invariant`` in each.

    The system must have been built with ``record_trace=False`` (tracing
    millions of replayed events would defeat the purpose); its current
    state is taken as the initial state.  The search is depth-first over
    *real* global states, deduplicated on the keys ``canonicalizer``
    produces — raw-state equality by default, orbit equality under
    :func:`explore_symmetry_reduced`.

    Parameters
    ----------
    system:
        The configured :class:`~repro.runtime.system.System` to explore.
    invariant:
        Checked in every reached representative state; the first
        violation stops the search and is reported with a reproducing
        schedule (replayable from the initial state, e.g. via
        :func:`repro.runtime.replay.replay_schedule`).  With symmetry
        reduction active the invariant must be symmetric — indifferent
        to the renamings the group applies (all stock invariants are).
    max_states / max_depth:
        Search budgets.  Hitting ``max_states`` stops the walk
        immediately (no further invariant checks or captures are spent
        on an already-truncated search); hitting ``max_depth`` prunes
        that branch only.  Either way the result has ``complete=False``
        and ``truncated_by`` set (``raise_on_truncation`` optionally
        turns budget truncation into
        :class:`~repro.errors.ExplorationLimitExceeded`).
    canonicalizer:
        State-keying strategy; defaults to a fresh
        :class:`~repro.runtime.canonical.TrivialCanonicalizer` (compact
        encoding, no symmetry).  Must have been built for this
        ``system``'s scheduler.
    """
    scheduler = system.scheduler
    if scheduler.record_trace:
        # Tolerate it, but stop accumulating events from here on.
        scheduler.record_trace = False
    if canonicalizer is None:
        canonicalizer = TrivialCanonicalizer(scheduler)

    initial = scheduler.capture_state()
    initial_key, initial_raw = canonicalizer.key_of()
    #: canonical key -> raw key of the representative that claimed it.
    visited: Dict[CanonicalKey, CanonicalKey] = {initial_key: initial_raw}
    # Each frame: (captured state, depth, parent link, raw key).  The
    # link is a structure-sharing chain (parent_link, pid) so path
    # reconstruction costs O(depth) only when a violation is actually
    # found — storing a schedule tuple per frame would cost O(depth^2)
    # memory overall.
    stack: List[Tuple[object, int, Optional[tuple], CanonicalKey]] = [
        (initial, 0, None, initial_raw)
    ]
    result = ExplorationResult(
        complete=True,
        states_explored=0,
        events_executed=0,
        max_depth_reached=0,
        group_size=canonicalizer.group_order,
    )
    started = time.perf_counter()

    def unwind(link: Optional[tuple]) -> Tuple[ProcessId, ...]:
        path: List[ProcessId] = []
        while link is not None:
            link, pid = link
            path.append(pid)
        return tuple(reversed(path))

    while stack:
        state, depth, link, state_raw = stack.pop()
        scheduler.restore_state(state)
        result.states_explored += 1
        result.max_depth_reached = max(result.max_depth_reached, depth)

        violation = invariant(system)
        if violation is not None:
            result.violation = violation
            result.violation_schedule = unwind(link)
            result.truncated_by = "violation"
            break

        enabled = scheduler.enabled_pids()
        if not enabled:
            if not all(
                scheduler.runtime(pid).halted or scheduler.runtime(pid).crashed
                for pid in scheduler.pids
            ):
                result.stuck_states += 1
            continue

        if depth >= max_depth:
            result.truncated_by = "max_depth"
            continue

        budget_exhausted = False
        for pid in enabled:
            scheduler.restore_state(state)
            scheduler.step(pid)
            result.events_executed += 1
            key, raw = canonicalizer.key_of()
            step_link = (link, pid)
            if raw == state_raw:
                # Inert self-loop: the step changed nothing the
                # canonicalizer records — no memory effect, identical
                # footprints and flags — so the successor is bisimilar
                # to the popped state, and its steps are invisible to
                # (hence commute with) every other process.  Accelerate:
                # keep stepping this process until something observable
                # changes; only that exit state is a new quotient edge.
                # A repeated local state inside the loop is a genuine
                # livelock within the class — nothing new is reachable.
                seen_locals = {scheduler.runtime(pid).state}
                while raw == state_raw and scheduler.runtime(pid).enabled:
                    scheduler.step(pid)
                    result.events_executed += 1
                    step_link = (step_link, pid)
                    key, raw = canonicalizer.key_of()
                    local = scheduler.runtime(pid).state
                    if raw == state_raw:
                        if local in seen_locals:
                            break
                        seen_locals.add(local)
                if raw == state_raw:
                    continue
            claimed = visited.get(key)
            if claimed is not None:
                if claimed is not raw and claimed != raw:
                    result.orbits_collapsed += 1
                continue
            if len(visited) >= max_states:
                result.truncated_by = "max_states"
                budget_exhausted = True
                break
            visited[key] = raw
            # Capture only states that will actually be explored —
            # visited successors above never pay for a capture.
            stack.append((scheduler.capture_state(), depth + 1, step_link, raw))
        if budget_exhausted:
            break

    result.complete = result.truncated_by is None
    result.wall_seconds = time.perf_counter() - started
    result.peak_visited = len(visited)
    if raise_on_truncation and result.truncated_by in ("max_states", "max_depth"):
        raise ExplorationLimitExceeded(
            f"exploration truncated by {result.truncated_by}; "
            f"{result.states_explored} states visited"
        )
    return result


def explore_symmetry_reduced(
    system: System,
    invariant: Invariant,
    max_states: int = 500_000,
    max_depth: int = 10_000,
    raise_on_truncation: bool = False,
    footprints: bool = True,
    max_group: int = 720,
) -> ExplorationResult:
    """:func:`explore` under the strongest sound canonicalizer.

    Builds a :func:`~repro.runtime.canonical.build_canonicalizer` for
    ``system`` — symmetry quotient plus per-automaton footprints where
    the automata opt in, transparently falling back to plain compact
    encoding where they don't — and runs the same walk.  ``invariant``
    must be symmetric (see :func:`explore`); the stock invariants in
    this module all are.
    """
    canonicalizer = build_canonicalizer(
        system, footprints=footprints, max_group=max_group
    )
    return explore(
        system,
        invariant,
        max_states=max_states,
        max_depth=max_depth,
        raise_on_truncation=raise_on_truncation,
        canonicalizer=canonicalizer,
    )


# ---------------------------------------------------------------------------
# Stock invariants
# ---------------------------------------------------------------------------


def mutual_exclusion_invariant(system: System) -> Optional[str]:
    """At most one process inside its critical section.

    Requires the automata to expose ``in_critical_section(state)`` (all
    mutex automata in this library do, via
    :class:`repro.core.mutex.MutexAutomatonMixin`).
    """
    inside = [
        pid
        for pid, rt in system.scheduler.runtimes()
        if not rt.halted and rt.automaton.in_critical_section(rt.state)
    ]
    if len(inside) > 1:
        return f"processes {inside} are in the critical section simultaneously"
    return None


def agreement_invariant(system: System) -> Optional[str]:
    """All halted processes decided the same value."""
    outputs = system.scheduler.outputs()
    decided = {pid: out for pid, out in outputs.items() if out is not None}
    if len(set(decided.values())) > 1:
        return f"conflicting decisions: {decided}"
    return None


def validity_invariant(system: System) -> Optional[str]:
    """Every decision equals some participant's input."""
    legal = set(system.inputs.values())
    outputs = system.scheduler.outputs()
    for pid, out in outputs.items():
        if out is not None and out not in legal:
            return f"process {pid} decided {out!r}, not an input ({legal})"
    return None


def unique_names_invariant(system: System) -> Optional[str]:
    """No two halted processes hold the same new name, and all names are
    within ``{1..n}``."""
    outputs = {
        pid: out for pid, out in system.scheduler.outputs().items() if out is not None
    }
    names = list(outputs.values())
    if len(set(names)) != len(names):
        return f"duplicate names acquired: {outputs}"
    n = len(system.inputs)
    bad = {pid: name for pid, name in outputs.items() if not 1 <= name <= n}
    if bad:
        return f"names outside 1..{n}: {bad}"
    return None


def conjoin(*invariants: Invariant) -> Invariant:
    """Combine invariants; reports the first violation among them."""

    def combined(system: System) -> Optional[str]:
        for inv in invariants:
            message = inv(system)
            if message is not None:
                return message
        return None

    return combined
