"""Events and traces — the library's representation of the paper's *runs*.

Section 6.1 defines a run as "a sequence of alternating states and events
... it is more convenient to define a run as a sequence of events omitting
all the states except the initial state".  A :class:`Trace` is exactly
that: the initial configuration plus the event sequence, with the derived
information (critical-section intervals, decisions, per-process histories)
exposed as queries for the spec checkers and experiment reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.runtime.ops import (
    EnterCritOp,
    ExitCritOp,
    Operation,
    ReadOp,
    WriteOp,
)
from repro.types import PhysicalIndex, ProcessId, RegisterValue


@dataclass(frozen=True)
class Event:
    """One atomic step of a run.

    Attributes
    ----------
    seq:
        Position in the run (0-based).
    pid:
        The process that took the step.
    op:
        The operation performed, with register indices in the process's
        *private* numbering (as the process itself saw the step).
    physical_index:
        The physical register touched, for reads and writes — the
        outside-the-model view that spec checkers and covering arguments
        need.  ``None`` for non-memory operations.
    result:
        The value read (for reads); ``None`` otherwise.
    phase:
        For protocols that expose section information (mutual exclusion
        automata): which §3.1 section — ``"remainder"``, ``"entry"``,
        ``"critical"`` or ``"exit"`` — the process was in when it took
        this step.  ``None`` for protocols without phases.
    """

    seq: int
    pid: ProcessId
    op: Operation
    physical_index: Optional[PhysicalIndex] = None
    result: Any = None
    phase: Optional[str] = None

    def is_write(self) -> bool:
        """True when this event wrote shared memory."""
        return isinstance(self.op, WriteOp)

    def is_read(self) -> bool:
        """True when this event read shared memory."""
        return isinstance(self.op, ReadOp)

    def __str__(self) -> str:
        loc = "" if self.physical_index is None else f" @R{self.physical_index}"
        res = "" if self.result is None else f" -> {self.result}"
        return f"[{self.seq}] p{self.pid}: {self.op}{loc}{res}"


@dataclass(frozen=True)
class CriticalSectionInterval:
    """A maximal in-critical-section interval of one process.

    ``enter_seq`` is the sequence number of the
    :class:`~repro.runtime.ops.EnterCritOp` event; ``exit_seq`` that of the
    matching :class:`~repro.runtime.ops.ExitCritOp`, or ``None`` when the
    run ends with the process still inside.  The process is considered
    *in* the critical section for every event index in
    ``[enter_seq, exit_seq]`` (boundary steps included — entering and
    exiting are themselves steps taken inside the protected region).
    """

    pid: ProcessId
    enter_seq: int
    exit_seq: Optional[int]

    def overlaps(self, other: "CriticalSectionInterval", horizon: int) -> bool:
        """Whether two intervals intersect within a run of ``horizon`` events."""
        self_end = self.exit_seq if self.exit_seq is not None else horizon
        other_end = other.exit_seq if other.exit_seq is not None else horizon
        return self.enter_seq <= other_end and other.enter_seq <= self_end


@dataclass
class Trace:
    """A recorded run: initial configuration + event sequence + outcomes.

    Instances are built incrementally by the scheduler; the query methods
    below are what the :mod:`repro.spec` checkers consume.
    """

    pids: Tuple[ProcessId, ...]
    register_count: int
    initial_values: Tuple[RegisterValue, ...]
    naming_description: str = "IdentityNaming"
    events: List[Event] = field(default_factory=list)
    #: Output of each process that halted, keyed by pid.
    outputs: Dict[ProcessId, Any] = field(default_factory=dict)
    #: Event index at which each process halted.
    halt_seq: Dict[ProcessId, int] = field(default_factory=dict)
    #: Processes crashed by the adversary, with the crash position.
    crash_seq: Dict[ProcessId, int] = field(default_factory=dict)
    #: Final register values (physical order) when the run stopped.
    final_values: Tuple[RegisterValue, ...] = ()
    #: Why the run stopped: "all-halted", "max-steps", "adversary-stop".
    stop_reason: str = ""

    # -- construction (scheduler-facing) ----------------------------------

    def append(self, event: Event) -> None:
        """Record the next event of the run."""
        self.events.append(event)

    def record_halt(self, pid: ProcessId, output: Any) -> None:
        """Record that ``pid`` halted with ``output`` after the last event."""
        self.halt_seq[pid] = len(self.events) - 1
        self.outputs[pid] = output

    def record_crash(self, pid: ProcessId) -> None:
        """Record that the adversary crashed ``pid`` after the last event."""
        self.crash_seq[pid] = len(self.events) - 1

    # -- queries (checker-facing) ------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def events_by(self, pid: ProcessId) -> List[Event]:
        """The subsequence of events taken by ``pid``.

        This is the process's view of the run — two runs are
        *indistinguishable* to ``pid`` (§6.1) when these subsequences (and
        initial/current register values) coincide.
        """
        return [e for e in self.events if e.pid == pid]

    def writes_by(self, pid: ProcessId) -> List[Event]:
        """All write events by ``pid`` (the proofs' ``write(y, q)`` sets
        are derived from this)."""
        return [e for e in self.events if e.pid == pid and e.is_write()]

    def registers_written_by(self, pid: ProcessId) -> Tuple[PhysicalIndex, ...]:
        """The set of distinct *physical* registers ``pid`` wrote, in first-write
        order — the proofs' ``write(y, q)``."""
        seen: List[PhysicalIndex] = []
        for event in self.writes_by(pid):
            if event.physical_index not in seen:
                seen.append(event.physical_index)
        return tuple(seen)

    def critical_section_intervals(self) -> List[CriticalSectionInterval]:
        """All critical-section intervals, across all processes, in order."""
        intervals: List[CriticalSectionInterval] = []
        open_enter: Dict[ProcessId, int] = {}
        for event in self.events:
            if isinstance(event.op, EnterCritOp):
                open_enter[event.pid] = event.seq
            elif isinstance(event.op, ExitCritOp):
                enter = open_enter.pop(event.pid, None)
                if enter is not None:
                    intervals.append(
                        CriticalSectionInterval(event.pid, enter, event.seq)
                    )
        for pid, enter in open_enter.items():
            intervals.append(CriticalSectionInterval(pid, enter, None))
        intervals.sort(key=lambda iv: iv.enter_seq)
        return intervals

    def critical_section_entries(self, pid: Optional[ProcessId] = None) -> int:
        """Number of critical-section entries (optionally for one process)."""
        return sum(
            1
            for e in self.events
            if isinstance(e.op, EnterCritOp) and (pid is None or e.pid == pid)
        )

    def decided(self) -> Dict[ProcessId, Any]:
        """Outputs of all processes that halted with a non-None output."""
        return {pid: out for pid, out in self.outputs.items() if out is not None}

    def steps_taken(self, pid: ProcessId) -> int:
        """How many events ``pid`` contributed to the run."""
        return sum(1 for e in self.events if e.pid == pid)

    def all_halted(self) -> bool:
        """True when every (non-crashed) process halted."""
        live = set(self.pids) - set(self.crash_seq)
        return live <= set(self.halt_seq)

    def occupancy_profile(self) -> List[Tuple[int, Tuple[ProcessId, ...]]]:
        """For each event index, the set of processes inside the CS.

        Returned sparsely: only the indices where the occupant set changes.
        Useful for rendering mutual-exclusion violations in reports.
        """
        profile: List[Tuple[int, Tuple[ProcessId, ...]]] = []
        inside: List[ProcessId] = []
        for event in self.events:
            changed = False
            if isinstance(event.op, EnterCritOp):
                inside.append(event.pid)
                changed = True
            elif isinstance(event.op, ExitCritOp) and event.pid in inside:
                inside.remove(event.pid)
                changed = True
            if changed:
                profile.append((event.seq, tuple(inside)))
        return profile

    def render(self, limit: Optional[int] = None) -> str:
        """Human-readable rendering of the run (for reports and debugging)."""
        lines = [
            f"run: {len(self.events)} events, processes {list(self.pids)}, "
            f"{self.register_count} registers, naming {self.naming_description}",
        ]
        shown = self.events if limit is None else self.events[:limit]
        lines.extend(str(e) for e in shown)
        if limit is not None and len(self.events) > limit:
            lines.append(f"... ({len(self.events) - limit} more events)")
        if self.outputs:
            lines.append(f"outputs: {self.outputs}")
        if self.stop_reason:
            lines.append(f"stopped: {self.stop_reason}")
        return "\n".join(lines)


def subsequence_equal(trace_a: Trace, trace_b: Trace, pid: ProcessId) -> bool:
    """Whether ``pid`` took the same steps (ops and results) in both runs.

    The per-process half of §6.1's indistinguishability relation; the
    shared-memory half is compared by the caller on final register values.
    """
    ops_a = [(e.op, e.result) for e in trace_a.events_by(pid)]
    ops_b = [(e.op, e.result) for e in trace_b.events_by(pid)]
    return ops_a == ops_b
