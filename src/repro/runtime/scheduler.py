"""The scheduler: executes automata against shared memory, one atomic
operation per event, under adversary control.

The paper's model (§2) assumes "a very powerful adversary, which can
determine (essentially) the order in which processes access the
registers".  The :class:`Scheduler` realises that model exactly: at each
point it asks an :class:`~repro.runtime.adversary.Adversary` which enabled
process takes the next step, performs that process's single pending
operation atomically, and records the event.

The scheduler also supports the two "outside-the-model" capabilities the
reproduction needs:

* **crashes** — the adversary may permanently stop a process
  (:meth:`Scheduler.crash`), modelling the paper's crash faults ("leaving
  the algorithm at some point and thereafter permanently refraining from
  writing the shared registers");
* **state capture/restore** — the bounded model checker and the Section 6
  covering constructions rewind runs; because automata keep all local
  state in immutable dataclasses, a captured global state is just the
  register contents plus per-process local states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional, Sequence, Tuple

from repro.errors import ProtocolError, SchedulingError
from repro.memory.anonymous import AnonymousMemory, MemoryView
from repro.obs.telemetry import NULL_TELEMETRY, TelemetrySink
from repro.runtime.automaton import LocalState, ProcessAutomaton
from repro.runtime.events import Event, Trace
from repro.runtime.kernel import GlobalState, execute_via_view
from repro.runtime.ops import ReadOp, WriteOp
from repro.types import ProcessId

__all__ = ["GlobalState", "ProcessRuntime", "Scheduler"]


@dataclass
class ProcessRuntime:
    """Scheduler-side bookkeeping for one process."""

    automaton: ProcessAutomaton
    view: MemoryView
    state: LocalState
    halted: bool = False
    crashed: bool = False
    steps: int = 0

    @property
    def enabled(self) -> bool:
        """Whether the process can take a step."""
        return not self.halted and not self.crashed


# GlobalState — the captured-global-state value tuple — now lives in
# :mod:`repro.runtime.kernel` next to the pure transition function that
# consumes it; it is re-exported here for backward compatibility.


class Scheduler:
    """Drives a set of process automata over an anonymous memory.

    Parameters
    ----------
    memory:
        The shared :class:`~repro.memory.anonymous.AnonymousMemory`.
    automata:
        Mapping from pid to that process's automaton.  Every pid must have
        a view in ``memory``.
    record_trace:
        When False, events are not accumulated (used by the model checker,
        which replays millions of short runs and only needs final states).
    telemetry:
        Optional :class:`~repro.obs.telemetry.TelemetrySink` receiving
        per-step counters (``scheduler.steps`` / ``.reads`` /
        ``.writes`` / ``.halts``) and the register-contention counter
        ``scheduler.contended_accesses`` — accesses to a physical
        register whose previous access came from a *different* process.
        Defaults to the shared null sink (no recording, no overhead
        beyond one flag test per step).
    """

    def __init__(
        self,
        memory: AnonymousMemory,
        automata: Dict[ProcessId, ProcessAutomaton],
        record_trace: bool = True,
        telemetry: Optional[TelemetrySink] = None,
    ):
        self.memory = memory
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        #: physical register index -> pid of its last accessor; only
        #: maintained while telemetry is enabled (contention counter).
        self._last_accessor: Dict[int, ProcessId] = {}
        self._runtimes: Dict[ProcessId, ProcessRuntime] = {}
        for pid, automaton in automata.items():
            view = memory.view(pid)
            state = automaton.initial_state()
            self._runtimes[pid] = ProcessRuntime(
                automaton=automaton,
                view=view,
                state=state,
                # Degenerate but legal: an automaton may halt without
                # taking a single step (e.g. a 1-process renaming chain).
                halted=automaton.is_halted(state),
            )
        self.record_trace = record_trace
        self.trace = Trace(
            pids=tuple(automata),
            register_count=memory.size,
            initial_values=memory.snapshot(),
            naming_description=memory.naming.describe(),
        )
        self._seq = 0
        if record_trace:
            for pid, rt in self._runtimes.items():
                if rt.halted:
                    self.trace.record_halt(pid, rt.automaton.output(rt.state))

    # -- inspection (adversary/checker-facing) -----------------------------

    @property
    def pids(self) -> Tuple[ProcessId, ...]:
        """All process ids managed by this scheduler."""
        return tuple(self._runtimes)

    @property
    def steps_so_far(self) -> int:
        """Total events executed."""
        return self._seq

    def runtime(self, pid: ProcessId) -> ProcessRuntime:
        """Bookkeeping record for ``pid`` (read-only use expected)."""
        try:
            return self._runtimes[pid]
        except KeyError:
            raise SchedulingError(f"unknown process id {pid!r}") from None

    def runtimes(self) -> Iterator[Tuple[ProcessId, ProcessRuntime]]:
        """All ``(pid, runtime)`` pairs in ascending pid order.

        The supported way for invariants and inspection code to sweep
        every process (read-only use expected) — callers should not
        reach into the private runtime table.
        """
        return iter(sorted(self._runtimes.items()))

    def enabled_pids(self) -> Tuple[ProcessId, ...]:
        """Processes that can take a step (not halted, not crashed)."""
        return tuple(pid for pid, rt in self._runtimes.items() if rt.enabled)

    def all_halted(self) -> bool:
        """True when no process is enabled anymore."""
        return not self.enabled_pids()

    def all_settled(self) -> bool:
        """True when every process has halted or crashed.

        Under the current process model this coincides with
        :meth:`all_halted` (enabled ⟺ neither halted nor crashed), but
        the two express different questions: "is nobody runnable?"
        versus "has every process reached a final status?".  The
        explorers ask the second and count any terminal-but-unsettled
        state as stuck — a defensive guard that fires only if the two
        notions ever diverge (e.g. a process model with blocked/waiting
        states).  The value-state analogue for exploration backends is
        :func:`repro.runtime.kernel.all_settled`.
        """
        return all(
            rt.halted or rt.crashed for rt in self._runtimes.values()
        )

    def output_of(self, pid: ProcessId) -> Any:
        """Output of a halted process."""
        rt = self.runtime(pid)
        if not rt.halted:
            raise SchedulingError(f"process {pid} has not halted")
        return rt.automaton.output(rt.state)

    def outputs(self) -> Dict[ProcessId, Any]:
        """Outputs of all halted processes."""
        return {
            pid: rt.automaton.output(rt.state)
            for pid, rt in self._runtimes.items()
            if rt.halted
        }

    def pending_op(self, pid: ProcessId):
        """The operation ``pid`` would perform next, or None if not enabled."""
        rt = self.runtime(pid)
        if not rt.enabled:
            return None
        return rt.automaton.next_op(rt.state)

    def covered_register(self, pid: ProcessId) -> Optional[int]:
        """Physical register covered by ``pid`` (§6.1), or None."""
        from repro.runtime.automaton import pending_write_target

        rt = self.runtime(pid)
        if not rt.enabled:
            return None
        return pending_write_target(rt.automaton, rt.state, rt.view)

    # -- execution ----------------------------------------------------------

    def step(self, pid: ProcessId) -> Event:
        """Execute ``pid``'s single pending operation atomically.

        The scheduler is a stateful façade over the value-state kernel:
        the transition itself is computed by
        :func:`repro.runtime.kernel.execute_via_view` (the same core the
        exploration backends run purely over value states), and this
        method only adds what a *live* run has that a value walk does
        not — the event sequence, trace recording and per-process step
        counters.
        """
        rt = self.runtime(pid)
        if rt.crashed:
            raise SchedulingError(f"process {pid} has crashed and cannot step")
        if rt.halted:
            raise SchedulingError(f"process {pid} has halted and cannot step")

        op, physical_index, result, new_state, halted = execute_via_view(
            rt.automaton, rt.state, rt.view
        )

        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.count("scheduler.steps")
            if isinstance(op, ReadOp):
                telemetry.count("scheduler.reads")
            elif isinstance(op, WriteOp):
                telemetry.count("scheduler.writes")
            if physical_index is not None:
                previous = self._last_accessor.get(physical_index)
                if previous is not None and previous != pid:
                    telemetry.count("scheduler.contended_accesses")
                self._last_accessor[physical_index] = pid
            if halted:
                telemetry.count("scheduler.halts")

        phase_fn = getattr(rt.automaton, "phase", None)
        event = Event(
            seq=self._seq,
            pid=pid,
            op=op,
            physical_index=physical_index,
            result=result,
            phase=phase_fn(rt.state) if callable(phase_fn) else None,
        )
        self._seq += 1
        if self.record_trace:
            self.trace.append(event)

        rt.state = new_state
        rt.steps += 1
        if halted:
            rt.halted = True
            if self.record_trace:
                self.trace.record_halt(pid, rt.automaton.output(rt.state))
        return event

    def crash(self, pid: ProcessId) -> None:
        """Permanently stop ``pid`` (adversarial crash fault)."""
        rt = self.runtime(pid)
        if rt.halted:
            raise SchedulingError(f"process {pid} already halted; cannot crash")
        rt.crashed = True
        if self.record_trace:
            self.trace.record_crash(pid)

    def run(self, adversary, max_steps: int = 100_000) -> Trace:
        """Run under ``adversary`` until it stops, all halt, or the budget
        is exhausted.  Returns the finished trace."""
        adversary.reset()
        stop_reason = "max-steps"
        while self._seq < max_steps:
            enabled = self.enabled_pids()
            if not enabled:
                stop_reason = "all-halted"
                break
            pid = adversary.choose(self)
            if pid is None:
                stop_reason = "adversary-stop"
                break
            if pid not in enabled:
                raise SchedulingError(
                    f"adversary chose {pid!r}, which is not enabled "
                    f"(enabled: {list(enabled)})"
                )
            event = self.step(pid)
            adversary.observe(event, self)
        self.trace.final_values = self.memory.snapshot()
        self.trace.stop_reason = stop_reason
        return self.trace

    # -- capture / restore (model checker & covering constructions) ---------

    def capture_state(self) -> GlobalState:
        """Snapshot the global state (registers + local states + status)."""
        locals_part = tuple(
            (pid, rt.state, rt.halted, rt.crashed)
            for pid, rt in sorted(self._runtimes.items())
        )
        return (self.memory.snapshot(), locals_part)

    def restore_state(self, global_state: GlobalState) -> None:
        """Rewind to a previously captured global state.

        Traces and step counters are *not* rewound — exploration callers
        run with ``record_trace=False`` and treat counters as cumulative
        work performed, not logical time.
        """
        registers, locals_part = global_state
        self.memory.restore(registers)
        for pid, state, halted, crashed in locals_part:
            rt = self.runtime(pid)
            rt.state = state
            rt.halted = halted
            rt.crashed = crashed

    def run_schedule(self, pids: Sequence[ProcessId]) -> None:
        """Execute a fixed sequence of steps (covering-construction glue)."""
        for pid in pids:
            self.step(pid)

    def run_solo_until_halt(self, pid: ProcessId, max_steps: int = 1_000_000) -> int:
        """Let ``pid`` run alone until it halts; returns steps taken.

        The paper's obstruction-freedom scenario.  Raises
        :class:`ProtocolError` if the process exceeds ``max_steps``.
        """
        taken = 0
        rt = self.runtime(pid)
        while not rt.halted:
            if taken >= max_steps:
                raise ProtocolError(
                    f"process {pid} did not halt within {max_steps} solo steps"
                )
            self.step(pid)
            taken += 1
        return taken
