"""Work-stealing batched exploration engine — the parallel core.

:class:`~repro.runtime.backends.ParallelBackend` delegates here.  The
engine replaces the old level-synchronised frontier-batch design
(pickle the frontier out, pickle results back, merge, repeat) with
three cooperating pieces:

* **Batched packed expansion.**  Workers hold states as flat
  ``array('q')`` chunks and expand whole chunks through
  :meth:`~repro.runtime.compiled.CompiledProgram.expand_batch`, with
  per-batch digest assembly via
  :meth:`~repro.runtime.canonical.PackedDigestTables.batch_raw` /
  :meth:`~repro.runtime.canonical.PackedDigestTables.batch_keys`.

* **A shared-memory visited table.**  Cross-process dedup goes through
  one :class:`~repro.runtime.visited.SharedVisitedTable` — a
  fixed-capacity open-addressing hash set of 64-bit BLAKE2b digests in
  a ``multiprocessing.shared_memory`` segment.  Insert is CAS-free:
  two workers racing on the same slot can both see "new" and expand
  the state twice.  That duplicate work is benign — expansion is
  deterministic per state, and the coordinator's canonical post-order
  merge dedups records by state key.  Overflow is honest:
  ``truncated_by="visited_table_full"``.

* **Work stealing.**  Each worker keeps a small local stack of chunks
  and donates surplus to one shared queue; idle workers steal from it.
  A shared ``pending`` chunk counter provides quiescence detection
  (children are registered before their parent chunk is released, so
  ``pending == 0`` really means the space is drained).

Determinism contract (pinned by the differential tests): on complete
runs the merged ``states_explored`` / ``events_executed`` /
``stuck_states`` / ``peak_visited`` — and, under the trivial
canonicalizer with ``retain_graph=True``, the rebuilt
``StateGraph.to_bytes()`` — are byte-identical to ``SerialBackend``.
Per-state event counts are state-local (inert self-loop = 2 events,
ordinary step = 1), so their sum over the deduped record set is
schedule-independent; the graph is rebuilt by re-expanding the merged
record set in the instance's pid order, and ``StateGraph.to_bytes()``
sorts node keys, so discovery order is immaterial.  On *truncated*
runs the explored subset (and therefore the counters) may differ from
serial, exactly as docs/EXPLORATION.md documents.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue
import signal
import time
from array import array
from collections import deque
from hashlib import blake2b
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.obs.telemetry import NULL_TELEMETRY, TelemetrySink
from repro.runtime.canonical import TrivialCanonicalizer
from repro.runtime.compiled import (
    CompiledProgram,
    compile_checker,
    compile_program,
)
from repro.runtime.exploration import ExplorationResult
from repro.runtime.visited import (
    SEGMENT_PREFIX,
    SharedVisitedTable,
    VisitedTableFull,
    table_capacity,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.backends import ExplorationTask

__all__ = ["DEFAULT_CHUNK_SIZE", "NotCompilable", "run_work_stealing"]

#: Packed states per work chunk; the work-distribution granule.
DEFAULT_CHUNK_SIZE = 512

# Expansion-record flags.
_FLAG_EXPANDED = 0
_FLAG_TERMINAL = 1  # no enabled slot: counted, never expanded
_FLAG_CAPPED = 2  # live but at max_depth: counted, pruned

# Shared abort codes, ordered by priority (upgrades only).
_ABORT_NONE = 0
_ABORT_MAX_STATES = 1
_ABORT_TABLE_FULL = 2
_ABORT_VIOLATION = 3
_ABORT_ERROR = 4

#: Chunks a worker keeps on its local stack before donating to the
#: shared steal queue.
_LOCAL_KEEP = 2

#: Idle poll interval while waiting for stealable work.
_IDLE_SLEEP = 0.0005


class NotCompilable(Exception):
    """The task cannot run on the batched engine (compilation overflow
    or a canonicalizer without packed digest tables); the caller falls
    back to the serial interpreter wholesale."""


def _digest64(key: bytes) -> int:
    """The visited-table digest of a canonical state key."""
    return int.from_bytes(blake2b(key, digest_size=8).digest(), "big")


def _set_abort(abort: Any, code: int) -> None:
    """Raise the shared abort code to ``code`` (upgrades only)."""
    with abort.get_lock():
        if code > abort.value:
            abort.value = code


def _sigterm_handler(signum: int, frame: Any) -> None:
    # Default SIGTERM disposition kills the process without running
    # ``finally`` blocks, leaking the /dev/shm segment; converting the
    # signal into SystemExit lets the coordinator unlink on the way out.
    raise SystemExit(143)


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _worker_main(
    worker_id: int,
    task: "ExplorationTask",
    chunk_size: int,
    shm_name: str,
    capacity: int,
    steal_q: Any,
    result_q: Any,
    pending: Any,
    inserted: Any,
    abort: Any,
) -> None:
    """Worker process entry point: drain chunks until quiescence/abort.

    The result payload is posted to ``result_q`` **last**, after the
    shared segment is closed — the coordinator treats its arrival as
    this worker's clean exit.
    """
    started = time.perf_counter()
    log: Dict[str, Any] = {
        "worker": worker_id,
        "error": None,
        "violations": [],
        "exp_key": [],
        "exp_events": array("q"),
        "exp_depth": array("q"),
        "exp_flags": array("q"),
        "exp_packed": array("q"),
        "disc_key": [],
        "disc_child": array("q"),
        "disc_parent": array("q"),
        "disc_path": [],
        "counters": {
            "chunks": 0,
            "states": 0,
            "steals": 0,
            "donated": 0,
            "inserted": 0,
            "duplicates": 0,
        },
    }
    table: Optional[SharedVisitedTable] = None
    try:
        table = SharedVisitedTable.attach(shm_name, capacity)
        _worker_loop(
            task, chunk_size, table, steal_q, pending, inserted, abort, log
        )
    except Exception as error:
        _set_abort(abort, _ABORT_ERROR)
        log["error"] = error
    finally:
        if table is not None:
            table.close()
        log["counters"]["seconds"] = time.perf_counter() - started
        try:
            payload = pickle.dumps(log, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            # An unpicklable hook exception; degrade to its repr so the
            # coordinator still learns the worker failed.
            log["error"] = RuntimeError(
                f"worker {worker_id} raised an unpicklable exception: "
                f"{log['error']!r}"
            )
            payload = pickle.dumps(log, protocol=pickle.HIGHEST_PROTOCOL)
        result_q.put(payload)


def _worker_loop(
    task: "ExplorationTask",
    chunk_size: int,
    table: SharedVisitedTable,
    steal_q: Any,
    pending: Any,
    inserted: Any,
    abort: Any,
    log: Dict[str, Any],
) -> None:
    # Compile locally: deterministic, and cheaper than pickling the
    # dense tables through the process boundary.  The coordinator
    # already proved the task compilable before spawning.
    program = compile_program(task.instance, task.initial)
    checker = compile_checker(task.invariant, program)
    canonicalizer = task.canonicalizer
    tables = canonicalizer.packed_digest_tables(
        program.values, program.states, program.halted, program.crashed
    )
    trivial = isinstance(canonicalizer, TrivialCanonicalizer)

    m = program.m
    nslots = len(program.slots)
    stride = m + nslots
    max_states = task.max_states
    max_depth = task.max_depth
    live = program.live_tables()
    expand_batch = program.expand_batch
    step_packed = program.step_packed
    batch_raw = tables.batch_raw
    batch_keys = tables.batch_keys
    halted = program.halted
    crashed = program.crashed
    insert = table.insert

    exp_key: List[bytes] = log["exp_key"]
    exp_events = log["exp_events"]
    exp_depth = log["exp_depth"]
    exp_flags = log["exp_flags"]
    exp_packed = log["exp_packed"]
    disc_key: List[bytes] = log["disc_key"]
    disc_child = log["disc_child"]
    disc_parent = log["disc_parent"]
    disc_path: List[Tuple[int, ...]] = log["disc_path"]
    violations: List[Tuple[int, Tuple[int, ...], str]] = log["violations"]
    counters: Dict[str, int] = log["counters"]

    local: List[Tuple[Any, Any]] = []
    pending_inserts = 0

    def flush_inserts() -> None:
        nonlocal pending_inserts
        if not pending_inserts:
            return
        with inserted.get_lock():
            inserted.value += pending_inserts
            total = inserted.value
        pending_inserts = 0
        # visited-equivalent count is inserted children + the initial
        # state; serial truncates when a new child would make it exceed
        # the budget.
        if total >= max_states:
            _set_abort(abort, _ABORT_MAX_STATES)

    def single_key(packed: Tuple[int, ...]) -> Tuple[bytes, bytes]:
        return batch_keys(packed, m)[0]

    def process_chunk(depths: Any, states: Any) -> List[Tuple[Any, Any]]:
        nonlocal pending_inserts
        n = len(depths)
        counters["states"] += n
        parent_keys: List[bytes]
        parent_raws: List[bytes]
        if trivial:
            parent_raws = batch_raw(states, m)
            parent_keys = parent_raws
        else:
            pairs = batch_keys(states, m)
            parent_keys = [k for k, _ in pairs]
            parent_raws = [r for _, r in pairs]
        batch = array("q")
        batch_rec: List[int] = []  # batch row -> exp record index
        batch_i: List[int] = []  # batch row -> chunk state index
        for i in range(n):
            base = i * stride
            st = states[base : base + stride]
            message = checker(st)
            if message is not None:
                violations.append((depths[i], tuple(st), message))
                _set_abort(abort, _ABORT_VIOLATION)
                continue
            alive = False
            for s in range(nslots):
                if live[s][st[m + s]]:
                    alive = True
                    break
            if alive and depths[i] < max_depth:
                batch_rec.append(len(exp_key))
                batch_i.append(i)
                flag = _FLAG_EXPANDED
            else:
                flag = _FLAG_TERMINAL if not alive else _FLAG_CAPPED
            exp_key.append(parent_keys[i])
            exp_events.append(0)
            exp_depth.append(depths[i])
            exp_flags.append(flag)
            exp_packed.extend(st)
            if flag == _FLAG_EXPANDED:
                batch.extend(st)
        if not len(batch):
            return []
        children, edges = expand_batch(batch)
        child_keys: List[bytes] = []
        child_pairs: List[Tuple[bytes, bytes]] = []
        if trivial:
            child_keys = batch_raw(children, m)
        else:
            child_pairs = batch_keys(children, m)
        new_depths = array("q")
        new_states = array("q")
        ci = 0
        for t in range(0, len(edges), 3):
            brow = edges[t]
            slot = edges[t + 1]
            rec = batch_rec[brow]
            if edges[t + 2]:
                # Inert single-step self-loop: serial costs exactly 2
                # events (step + deterministic repeat) and no new state.
                exp_events[rec] += 2
                continue
            cbase = ci * stride
            ci += 1
            exp_events[rec] += 1
            path_len = 1
            child_tuple: Optional[Tuple[int, ...]] = None
            if trivial:
                key = child_keys[ci - 1]
            else:
                key, raw = child_pairs[ci - 1]
                parent_raw = parent_raws[batch_i[brow]]
                if raw == parent_raw:
                    # Inert acceleration, exactly as serial: keep
                    # stepping this pid while it stays inert, watching
                    # its packed local index for a repeat.
                    child = tuple(children[cbase : cbase + stride])
                    off = m + slot
                    seen_locals = {child[off]}
                    while raw == parent_raw and not (
                        halted[slot][child[off]] or crashed[slot]
                    ):
                        child = step_packed(child, slot)
                        path_len += 1
                        exp_events[rec] += 1
                        key, raw = single_key(child)
                        if raw == parent_raw:
                            local_si = child[off]
                            if local_si in seen_locals:
                                break
                            seen_locals.add(local_si)
                    if raw == parent_raw:
                        continue  # never escaped the self-loop
                    child_tuple = child
            if insert(_digest64(key)):
                pending_inserts += 1
                counters["inserted"] += 1
                disc_key.append(key)
                disc_parent.append(rec)
                disc_path.append((slot,) * path_len)
                if child_tuple is None:
                    seg = children[cbase : cbase + stride]
                    disc_child.extend(seg)
                    new_states.extend(seg)
                else:
                    disc_child.extend(child_tuple)
                    new_states.extend(child_tuple)
                new_depths.append(depths[batch_i[brow]] + 1)
            else:
                counters["duplicates"] += 1
        out: List[Tuple[Any, Any]] = []
        for start in range(0, len(new_depths), chunk_size):
            out.append(
                (
                    new_depths[start : start + chunk_size],
                    new_states[
                        start * stride : (start + chunk_size) * stride
                    ],
                )
            )
        return out

    while True:
        if abort.value:
            break
        if local:
            depths, states = local.pop()
        else:
            try:
                dmsg, smsg = steal_q.get_nowait()
            except queue.Empty:
                with pending.get_lock():
                    remaining = pending.value
                if remaining == 0:
                    break
                time.sleep(_IDLE_SLEEP)
                continue
            counters["steals"] += 1
            depths = array("q")
            depths.frombytes(dmsg)
            states = array("q")
            states.frombytes(smsg)
        counters["chunks"] += 1
        try:
            produced = process_chunk(depths, states)
        except VisitedTableFull:
            _set_abort(abort, _ABORT_TABLE_FULL)
            produced = []
        # Register children before releasing the consumed chunk so
        # pending == 0 is a true quiescence witness.
        with pending.get_lock():
            pending.value += len(produced) - 1
        flush_inserts()
        for item in produced:
            if len(local) < _LOCAL_KEEP:
                local.append(item)
            else:
                steal_q.put((item[0].tobytes(), item[1].tobytes()))
                counters["donated"] += 1


# ---------------------------------------------------------------------------
# Coordinator side
# ---------------------------------------------------------------------------


def run_work_stealing(
    task: "ExplorationTask",
    workers: int,
    telemetry: TelemetrySink = NULL_TELEMETRY,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    mp_context: Any = None,
    capacity: Optional[int] = None,
) -> ExplorationResult:
    """Run ``task`` on ``workers`` work-stealing processes.

    Raises :class:`NotCompilable` when the task cannot be compiled (the
    caller falls back to the serial interpreter) and re-raises genuine
    worker exceptions (invariant/hook errors) unchanged.
    """
    started = time.perf_counter()
    ctx = mp_context if mp_context is not None else multiprocessing.get_context()
    canonicalizer = task.canonicalizer
    trivial = isinstance(canonicalizer, TrivialCanonicalizer)
    with telemetry.phase("parallel.compile"):
        try:
            program = compile_program(task.instance, task.initial)
            compile_checker(task.invariant, program)
            tables = canonicalizer.packed_digest_tables(
                program.values,
                program.states,
                program.halted,
                program.crashed,
            )
        except Exception as exc:
            raise NotCompilable(str(exc)) from exc
    m = program.m
    initial = program.initial_packed
    if trivial:
        initial_key = tables.batch_raw(initial, m)[0]
    else:
        initial_key = tables.batch_keys(initial, m)[0][0]
    if capacity is None:
        capacity = table_capacity(task.max_states)
    procs: List[Any] = []
    previous_handler: Any = None
    handler_installed = False
    # The SIGTERM handler goes in BEFORE the segment exists: a kill
    # landing between the two would otherwise die with the default
    # disposition and leak the table.
    try:
        previous_handler = signal.signal(signal.SIGTERM, _sigterm_handler)
        handler_installed = True
    except ValueError:
        pass  # not the main thread: the caller owns signal disposition
    table: Optional[SharedVisitedTable] = None
    steal_q: Any = None
    try:
        table = SharedVisitedTable.create(
            capacity, SEGMENT_PREFIX + os.urandom(8).hex()
        )
        steal_q = ctx.Queue()
        result_q = ctx.Queue()
        pending = ctx.Value("q", 0)
        inserted = ctx.Value("q", 0)
        abort = ctx.Value("b", 0)
        table.insert(_digest64(initial_key))
        pending.value = 1
        steal_q.put(
            (array("q", [0]).tobytes(), array("q", initial).tobytes())
        )
        with telemetry.phase("parallel.explore"):
            for wid in range(workers):
                proc = ctx.Process(
                    target=_worker_main,
                    args=(
                        wid,
                        task,
                        chunk_size,
                        table.name,
                        capacity,
                        steal_q,
                        result_q,
                        pending,
                        inserted,
                        abort,
                    ),
                    daemon=True,
                )
                proc.start()
                procs.append(proc)
            logs = _collect(procs, result_q, steal_q, workers)
            for proc in procs:
                while proc.is_alive():
                    proc.join(timeout=0.05)
                    _drain(steal_q)
        with telemetry.phase("parallel.merge"):
            result = _merge(
                task, program, tables, trivial, logs, abort.value, telemetry
            )
        result.kernel = "compiled"
        result.wall_seconds = time.perf_counter() - started
        return result
    finally:
        if handler_installed:
            signal.signal(signal.SIGTERM, previous_handler)
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        if steal_q is not None:
            _drain(steal_q)
        if table is not None:
            table.close()
            table.unlink()


def _drain(q: Any) -> None:
    """Best-effort non-blocking drain (unblocks worker queue feeders)."""
    while True:
        try:
            q.get_nowait()
        except queue.Empty:
            return
        except (OSError, ValueError):  # queue torn down mid-drain
            return


def _collect(
    procs: List[Any], result_q: Any, steal_q: Any, workers: int
) -> List[Dict[str, Any]]:
    """Gather one result payload per worker, detecting workers that died
    without reporting.

    The steal queue is deliberately **not** touched here: a chunk taken
    by the coordinator mid-run would vanish without its ``pending``
    count ever being released, stalling every worker's quiescence check
    forever.  Leftover chunks (abort paths) are drained only after the
    payloads are in, when no worker will look for work again — that
    late drain is what unblocks worker queue-feeder threads so the
    processes can exit.
    """
    logs: List[Dict[str, Any]] = []
    posted: set = set()
    deadline: Optional[float] = None
    while len(posted) < workers:
        try:
            log = pickle.loads(result_q.get(timeout=0.05))
            posted.add(log["worker"])
            logs.append(log)
            deadline = None
            continue
        except queue.Empty:
            pass
        dead = [
            wid
            for wid, proc in enumerate(procs)
            if wid not in posted and not proc.is_alive()
        ]
        if dead:
            # Give an exited worker's queued payload a grace window to
            # arrive before declaring it lost.
            if deadline is None:
                deadline = time.monotonic() + 5.0
            elif time.monotonic() > deadline:
                codes = {wid: procs[wid].exitcode for wid in dead}
                raise RuntimeError(
                    "parallel worker(s) died without reporting a "
                    f"result: exit codes {codes}"
                )
    logs.sort(key=lambda entry: entry["worker"])
    return logs


# ---------------------------------------------------------------------------
# Canonical post-order merge
# ---------------------------------------------------------------------------


def _merge(
    task: "ExplorationTask",
    program: CompiledProgram,
    tables: Any,
    trivial: bool,
    logs: List[Dict[str, Any]],
    abort_code: int,
    telemetry: TelemetrySink,
) -> ExplorationResult:
    for log in logs:
        if log["error"] is not None:
            raise log["error"]

    max_states = task.max_states
    # Dedup expansion records by canonical state key (raw key under the
    # trivial canonicalizer).  Benign duplicate expansions produce
    # identical counters for the same key, so first-wins is
    # deterministic on complete runs.
    merged: Dict[bytes, Tuple[int, int]] = {}
    any_capped = False
    for li, log in enumerate(logs):
        keys = log["exp_key"]
        flags = log["exp_flags"]
        for ri in range(len(keys)):
            if flags[ri] == _FLAG_CAPPED:
                any_capped = True
            key = keys[ri]
            if key not in merged:
                merged[key] = (li, ri)

    events_total = 0
    max_depth_seen = 0
    for li, ri in merged.values():
        log = logs[li]
        events_total += log["exp_events"][ri]
        depth = log["exp_depth"][ri]
        if depth > max_depth_seen:
            max_depth_seen = depth

    distinct_discovered: set = set()
    for log in logs:
        distinct_discovered.update(log["disc_key"])

    violations: List[Tuple[int, Tuple[int, ...], str]] = []
    for log in logs:
        violations.extend(log["violations"])

    states_explored = len(merged)
    peak_visited = len(distinct_discovered) + 1
    truncated_by: Optional[str] = None
    if violations:
        truncated_by = "violation"
        states_explored += 1
    elif abort_code == _ABORT_TABLE_FULL:
        truncated_by = "visited_table_full"
    elif abort_code == _ABORT_MAX_STATES:
        truncated_by = "max_states"
    elif any_capped:
        truncated_by = "max_depth"
    if truncated_by == "max_states":
        states_explored = min(states_explored, max_states)
        peak_visited = min(peak_visited, max_states)

    result = ExplorationResult(
        complete=truncated_by is None,
        states_explored=states_explored,
        events_executed=events_total,
        max_depth_reached=max_depth_seen,
        group_size=task.canonicalizer.group_order,
    )
    result.truncated_by = truncated_by
    result.peak_visited = peak_visited
    result.stuck_states = 0
    # The merge sees only deduped discoveries, not every orbit
    # re-encounter, so the saved-work counter is reported as 0 — a
    # documented lower bound (exact under the trivial canonicalizer,
    # where no orbits exist to collapse).
    result.orbits_collapsed = 0

    if violations:
        m = program.m
        best = min(
            violations,
            key=lambda v: (v[0], tables.batch_raw(v[1], m)[0], v[2]),
        )
        result.violation = best[2]
        result.violation_schedule = _schedule_to(program, logs, best[1])
        if best[0] > result.max_depth_reached:
            result.max_depth_reached = best[0]

    if task.retain_graph and trivial:
        result.graph = _rebuild_graph(
            task, program, tables, logs, merged, result.complete
        )

    if telemetry.enabled:
        for log in logs:
            counters = log["counters"]
            telemetry.event("parallel.worker", **{"id": log["worker"]}, **counters)
            for name in ("chunks", "steals", "donated", "inserted", "duplicates"):
                telemetry.count(f"parallel.{name}", counters[name])
        telemetry.gauge("explore.visited", result.peak_visited)
        telemetry.count("explore.events", result.events_executed)
        telemetry.count("explore.orbit_hits", result.orbits_collapsed)
    return result


def _schedule_to(
    program: CompiledProgram,
    logs: List[Dict[str, Any]],
    target: Tuple[int, ...],
) -> Tuple[Any, ...]:
    """A replayable schedule from the initial state to ``target``.

    BFS over the merged discovery edges.  Every chunked state carries at
    least one discovery record whose parent chain bottoms out at the
    seeded initial state, so the target is always reachable here even
    when insert races lost some discovery attempts.
    """
    stride = program.m + len(program.slots)
    initial = tuple(program.initial_packed)
    if target == initial:
        return ()
    adj: Dict[Tuple[int, ...], List[Tuple[Tuple[int, ...], Tuple[int, ...]]]] = {}
    for log in logs:
        exp_packed = log["exp_packed"]
        disc_child = log["disc_child"]
        disc_parent = log["disc_parent"]
        disc_path = log["disc_path"]
        for j in range(len(disc_parent)):
            pbase = disc_parent[j] * stride
            parent = tuple(exp_packed[pbase : pbase + stride])
            cbase = j * stride
            child = tuple(disc_child[cbase : cbase + stride])
            adj.setdefault(parent, []).append((child, disc_path[j]))
    for edges in adj.values():
        edges.sort()
    parent_of: Dict[
        Tuple[int, ...], Tuple[Optional[Tuple[int, ...]], Tuple[int, ...]]
    ] = {initial: (None, ())}
    frontier = deque([initial])
    while frontier and target not in parent_of:
        node = frontier.popleft()
        for child, path in adj.get(node, ()):
            if child not in parent_of:
                parent_of[child] = (node, path)
                frontier.append(child)
    if target not in parent_of:
        raise RuntimeError(
            "parallel merge could not reconstruct a discovery path to "
            "the violating state"
        )
    slots_path: List[int] = []
    node: Optional[Tuple[int, ...]] = target
    while node is not None and node != initial:
        parent, path = parent_of[node]
        slots_path[:0] = path
        node = parent
    return tuple(program.slots[s] for s in slots_path)


def _rebuild_graph(
    task: "ExplorationTask",
    program: CompiledProgram,
    tables: Any,
    logs: List[Dict[str, Any]],
    merged: Dict[bytes, Tuple[int, int]],
    complete: bool,
) -> Any:
    """Regenerate the retained StateGraph from the merged record set.

    Each merged expanded record is re-expanded (cheap, table-driven) and
    its edges recorded in the instance's pid order — the same per-node
    edge order as the serial walk.  ``StateGraph.to_bytes()`` sorts node
    keys, so insertion order is irrelevant and the bytes come out
    identical to ``SerialBackend`` on complete runs.
    """
    from repro.verify.graph import GraphRecorder

    m = program.m
    stride = m + len(program.slots)
    slots = program.slots
    batch_raw = tables.batch_raw
    recorder = GraphRecorder(
        batch_raw(program.initial_packed, m)[0], task.initial
    )
    nodes = recorder.nodes
    pending_states = array("q")
    pending_keys: List[bytes] = []

    def flush() -> None:
        children, edges = program.expand_batch(pending_states)
        child_raws = batch_raw(children, m)
        ci = 0
        for t in range(0, len(edges), 3):
            src_key = pending_keys[edges[t]]
            pid = slots[edges[t + 1]]
            if edges[t + 2]:
                recorder.add_edge(src_key, pid, src_key)
                continue
            raw = child_raws[ci]
            cbase = ci * stride
            ci += 1
            recorder.add_edge(src_key, pid, raw)
            if raw not in nodes:
                recorder.add_node(
                    raw, program.unpack(children[cbase : cbase + stride])
                )
        del pending_keys[:]
        del pending_states[:]

    for key, (li, ri) in merged.items():
        log = logs[li]
        flag = log["exp_flags"][ri]
        if flag == _FLAG_CAPPED:
            continue
        recorder.mark_expanded(key)
        if flag == _FLAG_TERMINAL:
            continue
        pending_keys.append(key)
        base = ri * stride
        pending_states.extend(log["exp_packed"][base : base + stride])
        if len(pending_keys) == 256:
            flush()
    if pending_keys:
        flush()
    return recorder.finish(complete)
