"""Execution substrate: automata, scheduler, adversaries, exploration.

The runtime realises the paper's computation model (§2, §6.1):

* :mod:`repro.runtime.ops` — the atomic step vocabulary;
* :mod:`repro.runtime.automaton` — processes as explicit-state I/O
  automata with location counters;
* :mod:`repro.runtime.events` — events and traces (the paper's *runs*);
* :mod:`repro.runtime.scheduler` — one atomic operation per event, chosen
  by an adversary; supports crashes and state capture/restore;
* :mod:`repro.runtime.adversary` — schedule strategies, from fair
  round-robin to the lockstep and fixed-schedule adversaries the
  lower-bound proofs are built from;
* :mod:`repro.runtime.system` — one-call assembly of a runnable instance;
* :mod:`repro.runtime.exploration` — bounded exhaustive model checking;
* :mod:`repro.runtime.replay` — trace serialisation and strict replay;
* :mod:`repro.runtime.threads` — real-thread backend with lock-guarded
  registers.
"""

from repro.runtime.adversary import (
    Adversary,
    AlternatingBurstAdversary,
    CrashAdversary,
    FixedScheduleAdversary,
    LockstepAdversary,
    RandomAdversary,
    RoundRobinAdversary,
    SoloAdversary,
    StagedObstructionAdversary,
    standard_adversaries,
)
from repro.runtime.automaton import (
    Algorithm,
    ProcessAutomaton,
    pending_write_target,
)
from repro.runtime.events import (
    CriticalSectionInterval,
    Event,
    Trace,
    subsequence_equal,
)
from repro.runtime.exploration import (
    ExplorationResult,
    agreement_invariant,
    conjoin,
    explore,
    mutual_exclusion_invariant,
    unique_names_invariant,
    validity_invariant,
)
from repro.runtime.ops import (
    CritOp,
    EnterCritOp,
    ExitCritOp,
    NoOp,
    Operation,
    ReadOp,
    WriteOp,
    is_read,
    is_write,
)
from repro.runtime.replay import (
    load_trace,
    replay,
    save_trace,
    schedule_of,
    trace_from_dict,
    trace_to_dict,
)
from repro.runtime.scheduler import ProcessRuntime, Scheduler
from repro.runtime.system import System, fresh_system
from repro.runtime.threads import (
    ThreadRunResult,
    ThreadRunner,
    run_threaded,
    run_threaded_with_backoff,
)

__all__ = [
    "Adversary",
    "AlternatingBurstAdversary",
    "CrashAdversary",
    "FixedScheduleAdversary",
    "LockstepAdversary",
    "RandomAdversary",
    "RoundRobinAdversary",
    "SoloAdversary",
    "StagedObstructionAdversary",
    "standard_adversaries",
    "Algorithm",
    "ProcessAutomaton",
    "pending_write_target",
    "CriticalSectionInterval",
    "Event",
    "Trace",
    "subsequence_equal",
    "ExplorationResult",
    "explore",
    "conjoin",
    "mutual_exclusion_invariant",
    "agreement_invariant",
    "validity_invariant",
    "unique_names_invariant",
    "ReadOp",
    "WriteOp",
    "CritOp",
    "EnterCritOp",
    "ExitCritOp",
    "NoOp",
    "Operation",
    "is_read",
    "is_write",
    "ProcessRuntime",
    "Scheduler",
    "load_trace",
    "replay",
    "save_trace",
    "schedule_of",
    "trace_from_dict",
    "trace_to_dict",
    "System",
    "fresh_system",
    "ThreadRunner",
    "ThreadRunResult",
    "run_threaded",
    "run_threaded_with_backoff",
]
