"""Atomic operations a process automaton can request.

A run in the paper's formalism (§6.1) is a sequence of *events*, each an
atomic step by one process.  The operation types here are the vocabulary
of those steps:

* :class:`ReadOp` / :class:`WriteOp` — the model's only communication
  primitives, addressed by the process's *private* register number
  (``p.i[j]``, 0-based);
* :class:`EnterCritOp` / :class:`CritOp` / :class:`ExitCritOp` — critical
  section bracketing for mutual exclusion protocols.  These are atomic
  no-ops as far as memory is concerned; they exist so that being "in the
  critical section" spans an interval of the run that the spec checkers
  can observe, and so that two such intervals overlapping is a detectable
  mutual-exclusion violation;
* :class:`NoOp` — an internal step (used by wrappers and tests).

Operations are frozen dataclasses: they are embedded in events, traces and
hashed global states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.types import RegisterValue, ViewIndex


@dataclass(frozen=True)
class ReadOp:
    """Atomically read register ``p.i[index]`` (private numbering)."""

    index: ViewIndex

    def __str__(self) -> str:
        return f"read(p[{self.index}])"


@dataclass(frozen=True)
class WriteOp:
    """Atomically write ``value`` into register ``p.i[index]``."""

    index: ViewIndex
    value: RegisterValue

    def __str__(self) -> str:
        return f"write(p[{self.index}] := {self.value})"


@dataclass(frozen=True)
class EnterCritOp:
    """Cross the boundary from entry code into the critical section."""

    def __str__(self) -> str:
        return "enter-CS"


@dataclass(frozen=True)
class CritOp:
    """Spend one atomic step inside the critical section."""

    def __str__(self) -> str:
        return "in-CS"


@dataclass(frozen=True)
class ExitCritOp:
    """Leave the critical section (the exit *code* runs after this)."""

    def __str__(self) -> str:
        return "exit-CS"


@dataclass(frozen=True)
class NoOp:
    """An internal step that touches no shared state."""

    def __str__(self) -> str:
        return "no-op"


#: Any operation a process automaton may emit.
Operation = Union[ReadOp, WriteOp, EnterCritOp, CritOp, ExitCritOp, NoOp]


def is_write(op: Operation) -> bool:
    """True when ``op`` writes shared memory.

    Used by the covering machinery of §6.1: a process *covers* a register
    exactly when its pending operation is a write to it.
    """
    return isinstance(op, WriteOp)


def is_read(op: Operation) -> bool:
    """True when ``op`` reads shared memory."""
    return isinstance(op, ReadOp)
