"""Pluggable exploration backends over the value-state kernel.

PR 2 made the walk symmetry-reduced; this module makes it *retargetable*.
An :class:`ExplorationBackend` receives an :class:`ExplorationTask` — the
pure ``(instance, initial state, invariant, canonicalizer, budgets)``
value — and returns an
:class:`~repro.runtime.exploration.ExplorationResult`.  Nothing in a task
is live: no scheduler, no memory, no locks.  Two backends ship:

:class:`SerialBackend`
    The seed explorer's depth-first walk, re-expressed over
    :func:`~repro.runtime.kernel.step_value` instead of
    restore → step → capture on a shared scheduler.  Same visit order,
    same dedup rule, same acceleration, same counters — bit-identical
    results (the differential tests in
    ``tests/runtime/test_backends.py`` pin this) — but the system is
    never mutated and successor capture is free value passing.

:class:`ParallelBackend`
    A level-synchronised frontier-batch BFS over ``multiprocessing``
    workers.  Each worker holds the pickled :class:`StepInstance`,
    canonicalizer and invariant (planted once per pool via the
    initializer) and expands a deterministic contiguous chunk of the
    frontier locally — stepping, canonicalizing and invariant-checking
    without coordinator round-trips.  The coordinator merges chunk
    results **in chunk order** into a sharded visited table keyed by
    content-addressed canonical keys (:func:`zlib.crc32` sharding —
    never Python's per-process-randomised ``hash``), so the set of
    states explored, the verdict, and the reported first violation (in
    (level, chunk, offset) order) are all independent of worker timing.
    Violation schedules are reconstructed from per-level parent links
    and re-validated by a pure replay before being reported, so they
    replay on a fresh system via
    :func:`repro.runtime.replay.replay_schedule` exactly like serial
    ones.

    BFS and DFS visit the same quotient of reachable states, so
    *complete* runs agree with serial bit-for-bit on the verdict, state
    count and stuck count; runs truncated by a budget cut different
    under-approximations (depth-first spine vs breadth-first ball) and
    agree on the verdict reached.

The executor pair (:class:`SerialExecutor` / :class:`ProcessExecutor`)
is the same idea one level up — a deterministic ``map`` used by the
sweep harness in :mod:`repro.analysis.experiments` to fan independent
(naming × adversary × seed) cells across cores.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from multiprocessing import get_context
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Set,
    Tuple,
    TypeVar,
    Union,
)
from zlib import crc32

from repro.errors import ConfigurationError
from repro.obs.telemetry import NULL_TELEMETRY, TelemetrySink
from repro.runtime.canonical import Canonicalizer, CanonicalKey
from repro.runtime.exploration import ExplorationResult
from repro.runtime.kernel import (
    GlobalState,
    StateView,
    StepInstance,
    all_settled,
    enabled_pids,
    step_value,
)
from repro.types import ProcessId

#: An invariant over the duck-typed system surface (live ``System`` or
#: value :class:`~repro.runtime.kernel.StateView`).
Invariant = Callable[[Any], Optional[str]]


@dataclass
class ExplorationTask:
    """Everything a backend needs to run one bounded exploration.

    A pure value: picklable, scheduler-free, reusable.  ``initial`` is
    the state the walk starts from (usually the system's initial state);
    the canonicalizer supplies the dedup keys and must have been built
    for the same instance.
    """

    instance: StepInstance
    initial: GlobalState
    invariant: Invariant
    canonicalizer: Canonicalizer
    max_states: int
    max_depth: int
    #: Retain the full labelled successor relation as a
    #: :class:`~repro.verify.graph.StateGraph` on the result.  Only
    #: sound under a trivial canonicalizer (``explore()`` enforces
    #: this); see :mod:`repro.verify.graph` for why.
    retain_graph: bool = False


class ExplorationBackend(Protocol):
    """The strategy interface :func:`repro.runtime.exploration.explore`
    delegates the actual walk to."""

    #: Short name recorded in results and benchmark records.
    name: str
    #: Degree of parallelism (1 for serial backends).
    workers: int

    def run(
        self,
        task: ExplorationTask,
        telemetry: TelemetrySink = NULL_TELEMETRY,
    ) -> ExplorationResult:
        """Explore ``task`` and return the outcome.

        ``telemetry`` is an optional observability hook; backends must
        produce identical results whether it is the null sink or a
        recording one (telemetry observes the walk, never steers it).
        """
        ...


# ---------------------------------------------------------------------------
# Serial backend — the seed DFS over value states
# ---------------------------------------------------------------------------


class SerialBackend:
    """Depth-first search over value states; the reference semantics.

    Visit order, deduplication, inert-self-loop acceleration, budget
    handling and all counters match the historical scheduler-mutating
    explorer exactly — only the mechanics changed (pure
    :func:`~repro.runtime.kernel.step_value` transitions instead of
    restore/step/capture, :class:`~repro.runtime.kernel.StateView`
    invariant evaluation instead of a live system).
    """

    name = "serial"
    workers = 1

    #: Emit one progress event per this many popped states (power of
    #: two: the hot-loop check is a single mask).  Class attribute so
    #: tests can lower it to exercise the progress path on toy walks.
    progress_interval = 8192

    def run(
        self,
        task: ExplorationTask,
        telemetry: TelemetrySink = NULL_TELEMETRY,
    ) -> ExplorationResult:
        instance = task.instance
        canonicalizer = task.canonicalizer
        invariant = task.invariant
        max_states = task.max_states
        max_depth = task.max_depth
        slot_of = instance.slot_of
        # Hoisted once: with the null sink the per-state telemetry cost
        # is a single short-circuited local-bool test.
        emit = telemetry.enabled
        progress_mask = self.progress_interval - 1

        initial = task.initial
        initial_key, initial_raw = canonicalizer.key_of_state(initial)
        recorder = None
        if task.retain_graph:
            # Imported lazily: repro.verify sits above the runtime layer.
            from repro.verify.graph import GraphRecorder

            recorder = GraphRecorder(initial_raw, initial)
        #: canonical key -> raw key of the representative that claimed it.
        visited: Dict[CanonicalKey, CanonicalKey] = {initial_key: initial_raw}
        # Each frame: (state, depth, parent link, raw key).  The link is
        # a structure-sharing chain (parent_link, pid) so path
        # reconstruction costs O(depth) only when a violation is found.
        stack: List[
            Tuple[GlobalState, int, Optional[Tuple[Any, ProcessId]], bytes]
        ] = [(initial, 0, None, initial_raw)]
        result = ExplorationResult(
            complete=True,
            states_explored=0,
            events_executed=0,
            max_depth_reached=0,
            group_size=canonicalizer.group_order,
        )
        started = time.perf_counter()

        def unwind(
            link: Optional[Tuple[Any, ProcessId]]
        ) -> Tuple[ProcessId, ...]:
            path: List[ProcessId] = []
            while link is not None:
                link, pid = link
                path.append(pid)
            return tuple(reversed(path))

        while stack:
            state, depth, link, state_raw = stack.pop()
            result.states_explored += 1
            if depth > result.max_depth_reached:
                result.max_depth_reached = depth
            if emit and not (result.states_explored & progress_mask):
                telemetry.gauge("explore.visited", len(visited))
                telemetry.gauge("explore.frontier", len(stack))
                telemetry.event(
                    "explore.progress",
                    states=result.states_explored,
                    frontier=len(stack),
                    visited=len(visited),
                    orbit_hits=result.orbits_collapsed,
                    depth=depth,
                )

            violation = invariant(StateView(instance, state))
            if violation is not None:
                result.violation = violation
                result.violation_schedule = unwind(link)
                result.truncated_by = "violation"
                break

            enabled = enabled_pids(instance, state)
            if not enabled:
                if not all_settled(state):
                    result.stuck_states += 1
                if recorder is not None:
                    recorder.mark_expanded(state_raw)
                continue

            if depth >= max_depth:
                result.truncated_by = "max_depth"
                continue

            if recorder is not None:
                recorder.mark_expanded(state_raw)
            budget_exhausted = False
            for pid in enabled:
                child = step_value(instance, state, pid)
                result.events_executed += 1
                key, raw = canonicalizer.key_of_state(child)
                step_link: Tuple[Any, ProcessId] = (link, pid)
                if raw == state_raw:
                    # Inert self-loop: the step changed nothing the
                    # canonicalizer records — no memory effect, identical
                    # footprints and flags — so the successor is
                    # bisimilar to the popped state and its steps commute
                    # with every other process.  Accelerate: keep
                    # stepping this process until something observable
                    # changes; only that exit state is a new quotient
                    # edge.  A repeated local state inside the loop is a
                    # genuine livelock within the class — nothing new is
                    # reachable.
                    slot = slot_of[pid]
                    seen_locals = {child[1][slot][1]}
                    while raw == state_raw and not (
                        child[1][slot][2] or child[1][slot][3]
                    ):
                        child = step_value(instance, child, pid)
                        result.events_executed += 1
                        step_link = (step_link, pid)
                        key, raw = canonicalizer.key_of_state(child)
                        local = child[1][slot][1]
                        if raw == state_raw:
                            if local in seen_locals:
                                break
                            seen_locals.add(local)
                    if raw == state_raw:
                        # A genuine single-step self-loop: under the
                        # trivial canonicalizer ``raw == state_raw`` on
                        # the *first* step already means the successor
                        # equals the popped state, so the loop above
                        # exits immediately and the retained edge is the
                        # one-step ``(pid, src)`` the liveness analyses
                        # need (a solo livelock in the making).
                        if recorder is not None:
                            recorder.add_edge(state_raw, pid, state_raw)
                        continue
                if recorder is not None:
                    recorder.add_edge(state_raw, pid, raw)
                    recorder.add_node(raw, child)
                claimed = visited.get(key)
                if claimed is not None:
                    if claimed != raw:
                        result.orbits_collapsed += 1
                    continue
                if len(visited) >= max_states:
                    result.truncated_by = "max_states"
                    budget_exhausted = True
                    break
                visited[key] = raw
                stack.append((child, depth + 1, step_link, raw))
            if budget_exhausted:
                break

        result.complete = result.truncated_by is None
        result.wall_seconds = time.perf_counter() - started
        result.peak_visited = len(visited)
        if recorder is not None:
            result.graph = recorder.finish(result.complete)
        if emit:
            telemetry.gauge("explore.visited", len(visited))
            telemetry.gauge("explore.frontier", len(stack))
            telemetry.count("explore.events", result.events_executed)
            telemetry.count("explore.orbit_hits", result.orbits_collapsed)
        return result


# ---------------------------------------------------------------------------
# Parallel backend — frontier-batch BFS over multiprocessing workers
# ---------------------------------------------------------------------------

#: Worker-process payload planted by the pool initializer: the
#: (instance, canonicalizer, invariant, emitted-keys set, retain-graph
#: flag) quintuple every chunk expansion reuses.  One module-level slot
#: per worker process; the set is private to that process.
_WorkerPayload = Tuple[
    StepInstance, Canonicalizer, Invariant, Set[CanonicalKey], bool
]

_WORKER: Optional[_WorkerPayload] = None


def _init_worker(payload: _WorkerPayload) -> None:
    global _WORKER
    _WORKER = payload


#: One frontier chunk shipped to a worker: (check_only, entries), where
#: each entry is (state, raw key of that state).
_Chunk = Tuple[bool, List[Tuple[GlobalState, bytes]]]

#: What a worker returns per chunk, all offsets chunk-local:
#: (violations [(offset, message)], stuck count, events executed,
#:  expandable-at-max-depth count,
#:  successors [(offset, pid path, canonical key, raw key, state)],
#:  edges [(offset, pid, destination raw key)] — every enabled pid of
#:  every expanded entry, *before* the emitted-keys return filter, so
#:  graph retention sees the full successor relation (empty unless the
#:  payload's retain-graph flag is set),
#:  chunk wall seconds — the worker-side expansion time, measured where
#:  it happens so the coordinator's telemetry can report per-worker load
#:  without a cross-process clock).
_ChunkResult = Tuple[
    List[Tuple[int, str]],
    int,
    int,
    int,
    List[Tuple[int, Tuple[ProcessId, ...], CanonicalKey, bytes, GlobalState]],
    List[Tuple[int, ProcessId, bytes]],
    float,
]


def _expand_chunk(chunk: _Chunk) -> _ChunkResult:
    """Check and expand one frontier chunk inside a worker process."""
    assert _WORKER is not None, "worker pool initializer did not run"
    return _expand_chunk_with(_WORKER, chunk)


def _expand_chunk_with(payload: _WorkerPayload, chunk: _Chunk) -> _ChunkResult:
    """Check and expand one frontier chunk.

    Depends only on the payload and the chunk — never on which process
    (a pool worker, or the coordinator inlining a small frontier) runs
    it or when.  The per-successor logic (acceleration, keying) mirrors
    :class:`SerialBackend` exactly.

    The ``emitted`` set is a process-local *return filter*: once this
    process has shipped a canonical key to the coordinator, that key is
    in the coordinator's visited table (either accepted or already
    claimed), so re-shipping its heavy (state, key) tuple is provably
    useless and the successor is dropped at the source.  Most successors
    in a dense quotient graph are duplicates, so this cuts the dominant
    IPC cost without affecting the set of states explored.  (It is why
    ``orbits_collapsed`` is a per-backend lower bound rather than a
    cross-backend invariant — duplicate *encounters* are counted where
    they are cheapest to detect.)
    """
    instance, canonicalizer, invariant, emitted, retain_graph = payload
    slot_of = instance.slot_of
    check_only, entries = chunk
    chunk_started = time.perf_counter()
    violations: List[Tuple[int, str]] = []
    stuck = 0
    events = 0
    expandable = 0
    successors: List[
        Tuple[int, Tuple[ProcessId, ...], CanonicalKey, bytes, GlobalState]
    ] = []
    edges: List[Tuple[int, ProcessId, bytes]] = []
    for offset, (state, state_raw) in enumerate(entries):
        violation = invariant(StateView(instance, state))
        if violation is not None:
            violations.append((offset, violation))
            continue
        enabled = enabled_pids(instance, state)
        if not enabled:
            if not all_settled(state):
                stuck += 1
            continue
        if check_only:
            expandable += 1
            continue
        for pid in enabled:
            child = step_value(instance, state, pid)
            events += 1
            key, raw = canonicalizer.key_of_state(child)
            path: Tuple[ProcessId, ...] = (pid,)
            if raw == state_raw:
                # Same inert self-loop acceleration as the serial DFS.
                slot = slot_of[pid]
                seen_locals = {child[1][slot][1]}
                while raw == state_raw and not (
                    child[1][slot][2] or child[1][slot][3]
                ):
                    child = step_value(instance, child, pid)
                    events += 1
                    path = path + (pid,)
                    key, raw = canonicalizer.key_of_state(child)
                    local = child[1][slot][1]
                    if raw == state_raw:
                        if local in seen_locals:
                            break
                        seen_locals.add(local)
                if raw == state_raw:
                    # Single-step self-loop (see the serial backend's
                    # twin comment): retained as a ``(pid, src)`` edge.
                    if retain_graph:
                        edges.append((offset, pid, state_raw))
                    continue
            if retain_graph:
                edges.append((offset, pid, raw))
            if key in emitted:
                continue
            emitted.add(key)
            successors.append((offset, path, key, raw, child))
    return (
        violations, stuck, events, expandable, successors, edges,
        time.perf_counter() - chunk_started,
    )


class ParallelBackend:
    """Frontier-batch BFS across ``multiprocessing`` workers.

    Parameters
    ----------
    workers:
        Worker process count (>= 1).
    shards:
        Number of visited-table shards; keys route by
        ``crc32(key) % shards``.  Sharding bounds per-dict size and is
        the seam a future distributed frontier partitions on; any value
        yields identical results.
    chunks_per_worker:
        Frontier chunks per worker per level — more chunks smooth load
        imbalance, fewer cut per-chunk overhead.
    inline_frontier:
        Frontier sizes below this are expanded in the coordinator
        itself (same pure chunk function, zero IPC) — the narrow BFS
        ramp-up/drain levels would otherwise pay a round-trip to ship a
        handful of states.  Results are identical either way.
    mp_context:
        ``multiprocessing`` start-method context; default is the
        platform default (``fork`` on Linux, which also lets
        closure-based invariants ride along un-pickled).
    """

    name = "parallel"

    def __init__(
        self,
        workers: int = 2,
        shards: int = 64,
        chunks_per_worker: int = 4,
        inline_frontier: int = 64,
        mp_context: Optional[Any] = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(
                f"workers must be a positive int, got {workers!r}"
            )
        self.workers = workers
        self.shards = shards
        self.chunks_per_worker = chunks_per_worker
        self.inline_frontier = inline_frontier
        self._mp_context = mp_context

    def run(
        self,
        task: ExplorationTask,
        telemetry: TelemetrySink = NULL_TELEMETRY,
    ) -> ExplorationResult:
        instance = task.instance
        canonicalizer = task.canonicalizer
        emit = telemetry.enabled
        started = time.perf_counter()
        initial_key, initial_raw = canonicalizer.key_of_state(task.initial)
        recorder = None
        if task.retain_graph:
            # Imported lazily: repro.verify sits above the runtime layer.
            from repro.verify.graph import GraphRecorder

            recorder = GraphRecorder(initial_raw, task.initial)
        shard_count = self.shards
        shards: List[Dict[CanonicalKey, bytes]] = [
            {} for _ in range(shard_count)
        ]
        shards[crc32(initial_key) % shard_count][initial_key] = initial_raw
        visited_total = 1
        result = ExplorationResult(
            complete=True,
            states_explored=0,
            events_executed=0,
            max_depth_reached=0,
            group_size=canonicalizer.group_order,
        )
        #: Level-indexed parent links: levels[d][i] = (index of the
        #: parent in level d-1, pid suffix appended by that edge) for the
        #: i-th frontier state of level d.  O(states) memory total,
        #: O(depth) reconstruction on demand.
        levels: List[List[Tuple[int, Tuple[ProcessId, ...]]]] = [[(-1, ())]]
        frontier: List[Tuple[GlobalState, bytes]] = [
            (task.initial, initial_raw)
        ]

        context = self._mp_context or get_context()
        # One payload object: each pool worker copies it (with an empty
        # emitted-keys set) at pool creation; the coordinator keeps its
        # own copy for inlined small frontiers.
        payload: _WorkerPayload = (
            instance,
            canonicalizer,
            task.invariant,
            set(),
            task.retain_graph,
        )
        with context.Pool(
            self.workers, initializer=_init_worker, initargs=(payload,)
        ) as pool:
            depth = 0
            while frontier:
                check_only = depth >= task.max_depth
                result.states_explored += len(frontier)
                result.max_depth_reached = depth
                with telemetry.phase("parallel.expand"):
                    if len(frontier) < self.inline_frontier:
                        chunks: List[_Chunk] = [(check_only, frontier)]
                        outputs = [_expand_chunk_with(payload, chunks[0])]
                    else:
                        chunks = self._partition(frontier, check_only)
                        outputs = pool.map(_expand_chunk, chunks)

                if emit:
                    telemetry.count("parallel.levels")
                    telemetry.gauge("explore.frontier", len(frontier))
                    telemetry.gauge("explore.visited", visited_total)
                    telemetry.event(
                        "parallel.level",
                        depth=depth,
                        frontier=len(frontier),
                        chunks=len(chunks),
                        chunk_seconds=[round(out[6], 6) for out in outputs],
                    )

                # -- merge, strictly in chunk order --------------------
                chunk_starts = self._chunk_starts(chunks)
                if recorder is not None and not check_only:
                    # Every frontier entry of this level is expanded;
                    # its edges (possibly none — terminal states) arrive
                    # with the chunk results below, in chunk order, so
                    # the per-node edge order matches the serial DFS's
                    # scheduler pid order exactly.
                    for _, entry_raw in frontier:
                        recorder.mark_expanded(entry_raw)
                    for start, out in zip(chunk_starts, outputs):
                        for offset, pid, dst in out[5]:
                            recorder.add_edge(
                                frontier[start + offset][1], pid, dst
                            )
                first_violation: Optional[Tuple[int, str]] = None
                expandable_total = 0
                for start, (
                    violations, stuck, events, expandable, _, _, _
                ) in zip(chunk_starts, outputs):
                    result.events_executed += events
                    result.stuck_states += stuck
                    expandable_total += expandable
                    if violations and first_violation is None:
                        offset, message = violations[0]
                        first_violation = (start + offset, message)
                if first_violation is not None:
                    index, message = first_violation
                    schedule = _reconstruct_schedule(levels, depth, index)
                    _validate_schedule(task, schedule, message)
                    result.violation = message
                    result.violation_schedule = schedule
                    result.truncated_by = "violation"
                    break
                if check_only:
                    if expandable_total:
                        result.truncated_by = "max_depth"
                    break

                new_frontier: List[Tuple[GlobalState, bytes]] = []
                new_links: List[Tuple[int, Tuple[ProcessId, ...]]] = []
                budget_exhausted = False
                with telemetry.phase("parallel.merge"):
                    for start, (_, _, _, _, successors, _, _) in zip(
                        chunk_starts, outputs
                    ):
                        for offset, path, key, raw, child in successors:
                            if recorder is not None:
                                recorder.add_node(raw, child)
                            shard = shards[crc32(key) % shard_count]
                            claimed = shard.get(key)
                            if claimed is not None:
                                if claimed != raw:
                                    result.orbits_collapsed += 1
                                continue
                            if visited_total >= task.max_states:
                                result.truncated_by = "max_states"
                                budget_exhausted = True
                                break
                            shard[key] = raw
                            visited_total += 1
                            new_links.append((start + offset, path))
                            new_frontier.append((child, raw))
                        if budget_exhausted:
                            break
                if budget_exhausted:
                    break
                levels.append(new_links)
                frontier = new_frontier
                depth += 1

        result.complete = result.truncated_by is None
        result.wall_seconds = time.perf_counter() - started
        result.peak_visited = visited_total
        if recorder is not None:
            result.graph = recorder.finish(result.complete)
        if emit:
            telemetry.gauge("explore.visited", visited_total)
            telemetry.count("explore.events", result.events_executed)
            telemetry.count("explore.orbit_hits", result.orbits_collapsed)
        return result

    def _partition(
        self, frontier: List[Tuple[GlobalState, bytes]], check_only: bool
    ) -> List[_Chunk]:
        """Deterministic contiguous chunking of the frontier."""
        target = max(1, self.workers * self.chunks_per_worker)
        size = max(1, -(-len(frontier) // target))
        return [
            (check_only, frontier[start : start + size])
            for start in range(0, len(frontier), size)
        ]

    def _chunk_starts(self, chunks: List[_Chunk]) -> List[int]:
        starts: List[int] = []
        total = 0
        for _, entries in chunks:
            starts.append(total)
            total += len(entries)
        return starts


def _reconstruct_schedule(
    levels: List[List[Tuple[int, Tuple[ProcessId, ...]]]],
    level: int,
    index: int,
) -> Tuple[ProcessId, ...]:
    """Walk parent links back to the root and concatenate pid suffixes."""
    suffixes: List[Tuple[ProcessId, ...]] = []
    while level > 0:
        parent, suffix = levels[level][index]
        suffixes.append(suffix)
        index = parent
        level -= 1
    schedule: List[ProcessId] = []
    for suffix in reversed(suffixes):
        schedule.extend(suffix)
    return tuple(schedule)


def _validate_schedule(
    task: ExplorationTask, schedule: Tuple[ProcessId, ...], message: str
) -> None:
    """Pure replay of a reconstructed schedule; guards the merge logic.

    O(schedule length), run once per reported violation.  A mismatch
    means the parent links were assembled wrong — an internal error, not
    a property of the algorithm under test — so it raises instead of
    returning a corrupt counterexample.
    """
    state = task.initial
    for pid in schedule:
        state = step_value(task.instance, state, pid)
    replayed = task.invariant(StateView(task.instance, state))
    if replayed != message:
        raise RuntimeError(
            "parallel backend produced a schedule that does not replay its "
            f"violation: expected {message!r}, replay gave {replayed!r}"
        )


# ---------------------------------------------------------------------------
# Executors — the same serial/parallel choice for independent sweep cells
# ---------------------------------------------------------------------------

_T = TypeVar("_T")
_R = TypeVar("_R")


class SerialExecutor:
    """In-process ordered ``map`` — the default sweep executor.

    ``initializer`` (if given) runs once in this process before the
    map, mirroring the pool-initializer contract of
    :class:`ProcessExecutor` so callers plant per-process payloads the
    same way under either executor.
    """

    name = "serial"
    workers = 1

    def map(
        self,
        fn: Callable[[_T], _R],
        items: Sequence[_T],
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
    ) -> List[_R]:
        if initializer is not None:
            initializer(*initargs)
        return [fn(item) for item in items]


class ProcessExecutor:
    """Ordered ``map`` over a ``multiprocessing`` pool.

    Results come back in submission order regardless of completion
    order, so swapping this in for :class:`SerialExecutor` never changes
    a sweep's output — only its wall time.  ``fn`` must be a module
    -level function and items/results picklable; under the default
    ``fork`` start method the ``initializer`` payload is inherited
    rather than pickled, so it may close over anything.
    """

    name = "process"

    def __init__(
        self, workers: int = 2, mp_context: Optional[Any] = None
    ) -> None:
        if workers < 1:
            raise ConfigurationError(
                f"workers must be a positive int, got {workers!r}"
            )
        self.workers = workers
        self._mp_context = mp_context

    def map(
        self,
        fn: Callable[[_T], _R],
        items: Sequence[_T],
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
    ) -> List[_R]:
        items = list(items)
        if not items:
            return []
        context = self._mp_context or get_context()
        with context.Pool(
            self.workers, initializer=initializer, initargs=initargs
        ) as pool:
            return pool.map(fn, items)


def resolve_backend(
    spec: str, workers: Optional[int] = None
) -> ExplorationBackend:
    """Build a backend from a CLI-style spec
    (``"serial"``/``"parallel"``/``"compiled"``)."""
    if spec == "serial":
        return SerialBackend()
    if spec == "parallel":
        return ParallelBackend(workers=workers or 2)
    if spec == "compiled":
        # Imported here: compiled.py imports this module at the top.
        from repro.runtime.compiled import CompiledBackend

        return CompiledBackend()
    raise ConfigurationError(
        f"unknown exploration backend {spec!r}; "
        "expected 'serial', 'parallel' or 'compiled'"
    )


class SweepExecutor(Protocol):
    """The ordered-``map`` interface :func:`repro.analysis.experiments.sweep`
    fans its cells out over (satisfied by :class:`SerialExecutor` and
    :class:`ProcessExecutor`)."""

    name: str
    workers: int

    def map(
        self,
        fn: Callable[[_T], _R],
        items: Sequence[_T],
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
    ) -> List[_R]:
        """Apply ``fn`` to every item, preserving submission order."""
        ...


def resolve_executor(
    spec: Union[str, SweepExecutor], workers: Optional[int] = None
) -> SweepExecutor:
    """Build a sweep executor from a spec.

    Accepts the backend vocabulary as strings — ``"serial"`` →
    :class:`SerialExecutor`, ``"process"`` → :class:`ProcessExecutor` —
    or passes an executor instance (anything with a ``map``) through
    unchanged, so ``sweep(backend=...)`` takes either spelling.
    """
    if isinstance(spec, str):
        if spec == "serial":
            return SerialExecutor()
        if spec == "process":
            return ProcessExecutor(workers=workers or 2)
        raise ConfigurationError(
            f"unknown sweep backend {spec!r}; expected 'serial' or 'process'"
        )
    if not hasattr(spec, "map"):
        raise ConfigurationError(
            f"sweep backend must be 'serial', 'process' or an executor "
            f"with a map() method, got {spec!r}"
        )
    return spec
