"""Pluggable exploration backends over the value-state kernel.

PR 2 made the walk symmetry-reduced; this module makes it *retargetable*.
An :class:`ExplorationBackend` receives an :class:`ExplorationTask` — the
pure ``(instance, initial state, invariant, canonicalizer, budgets)``
value — and returns an
:class:`~repro.runtime.exploration.ExplorationResult`.  Nothing in a task
is live: no scheduler, no memory, no locks.  Two backends ship:

:class:`SerialBackend`
    The seed explorer's depth-first walk, re-expressed over
    :func:`~repro.runtime.kernel.step_value` instead of
    restore → step → capture on a shared scheduler.  Same visit order,
    same dedup rule, same acceleration, same counters — bit-identical
    results (the differential tests in
    ``tests/runtime/test_backends.py`` pin this) — but the system is
    never mutated and successor capture is free value passing.

:class:`ParallelBackend`
    A work-stealing walk over the batched packed-state engine
    (:mod:`repro.runtime.batched`).  The task is compiled once per
    process into dense transition tables
    (:func:`~repro.runtime.compiled.compile_program`); workers expand
    whole ``array('q')`` chunks of packed states through
    :meth:`~repro.runtime.compiled.CompiledProgram.expand_batch`, dedup
    cross-process through one ``multiprocessing.shared_memory``
    open-addressing visited table of 64-bit BLAKE2b digests
    (:mod:`repro.runtime.visited`), and steal chunks from a shared
    queue when their local stack runs dry.  Insert is CAS-free, so a
    racing pair of workers may expand the same state twice; the
    coordinator's canonical post-order merge dedups the records by
    state key, which restores determinism — complete runs agree with
    serial bit-for-bit on the verdict, state/event/stuck counters,
    peak visited size and (under ``retain_graph=True``) the retained
    ``StateGraph.to_bytes()``.  Runs truncated by a budget cut
    different under-approximations and agree on the verdict reached;
    the fixed-capacity visited table adds one honest truncation cause
    of its own, ``truncated_by="visited_table_full"``.  Violation
    schedules are rebuilt from the merged discovery records and
    re-validated by a pure replay before being reported, so they
    replay on a fresh system via
    :func:`repro.runtime.replay.replay_schedule` exactly like serial
    ones.  Tasks the compiler cannot enumerate fall back to
    :class:`SerialBackend` wholesale (``result.kernel`` stays
    ``"interpreted"`` and records the fallback honestly).

The executor pair (:class:`SerialExecutor` / :class:`ProcessExecutor`)
is the same idea one level up — a deterministic ``map`` used by the
sweep harness in :mod:`repro.analysis.experiments` to fan independent
(naming × adversary × seed) cells across cores.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from multiprocessing import get_context
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

from repro.errors import ConfigurationError
from repro.obs.telemetry import NULL_TELEMETRY, TelemetrySink
from repro.runtime.canonical import Canonicalizer, CanonicalKey
from repro.runtime.exploration import ExplorationResult
from repro.runtime.kernel import (
    GlobalState,
    StateView,
    StepInstance,
    all_settled,
    enabled_pids,
    step_value,
)
from repro.types import ProcessId

#: An invariant over the duck-typed system surface (live ``System`` or
#: value :class:`~repro.runtime.kernel.StateView`).
Invariant = Callable[[Any], Optional[str]]


@dataclass
class ExplorationTask:
    """Everything a backend needs to run one bounded exploration.

    A pure value: picklable, scheduler-free, reusable.  ``initial`` is
    the state the walk starts from (usually the system's initial state);
    the canonicalizer supplies the dedup keys and must have been built
    for the same instance.
    """

    instance: StepInstance
    initial: GlobalState
    invariant: Invariant
    canonicalizer: Canonicalizer
    max_states: int
    max_depth: int
    #: Retain the full labelled successor relation as a
    #: :class:`~repro.verify.graph.StateGraph` on the result.  Only
    #: sound under a trivial canonicalizer (``explore()`` enforces
    #: this); see :mod:`repro.verify.graph` for why.
    retain_graph: bool = False


class ExplorationBackend(Protocol):
    """The strategy interface :func:`repro.runtime.exploration.explore`
    delegates the actual walk to."""

    #: Short name recorded in results and benchmark records.
    name: str
    #: Degree of parallelism (1 for serial backends).
    workers: int

    def run(
        self,
        task: ExplorationTask,
        telemetry: TelemetrySink = NULL_TELEMETRY,
    ) -> ExplorationResult:
        """Explore ``task`` and return the outcome.

        ``telemetry`` is an optional observability hook; backends must
        produce identical results whether it is the null sink or a
        recording one (telemetry observes the walk, never steers it).
        """
        ...


# ---------------------------------------------------------------------------
# Serial backend — the seed DFS over value states
# ---------------------------------------------------------------------------


class SerialBackend:
    """Depth-first search over value states; the reference semantics.

    Visit order, deduplication, inert-self-loop acceleration, budget
    handling and all counters match the historical scheduler-mutating
    explorer exactly — only the mechanics changed (pure
    :func:`~repro.runtime.kernel.step_value` transitions instead of
    restore/step/capture, :class:`~repro.runtime.kernel.StateView`
    invariant evaluation instead of a live system).
    """

    name = "serial"
    workers = 1

    #: Emit one progress event per this many popped states (power of
    #: two: the hot-loop check is a single mask).  Class attribute so
    #: tests can lower it to exercise the progress path on toy walks.
    progress_interval = 8192

    def run(
        self,
        task: ExplorationTask,
        telemetry: TelemetrySink = NULL_TELEMETRY,
    ) -> ExplorationResult:
        instance = task.instance
        canonicalizer = task.canonicalizer
        invariant = task.invariant
        max_states = task.max_states
        max_depth = task.max_depth
        slot_of = instance.slot_of
        # Hoisted once: with the null sink the per-state telemetry cost
        # is a single short-circuited local-bool test.
        emit = telemetry.enabled
        progress_mask = self.progress_interval - 1

        initial = task.initial
        initial_key, initial_raw = canonicalizer.key_of_state(initial)
        recorder = None
        if task.retain_graph:
            # Imported lazily: repro.verify sits above the runtime layer.
            from repro.verify.graph import GraphRecorder

            recorder = GraphRecorder(initial_raw, initial)
        #: canonical key -> raw key of the representative that claimed it.
        visited: Dict[CanonicalKey, CanonicalKey] = {initial_key: initial_raw}
        # Each frame: (state, depth, parent link, raw key).  The link is
        # a structure-sharing chain (parent_link, pid) so path
        # reconstruction costs O(depth) only when a violation is found.
        stack: List[
            Tuple[GlobalState, int, Optional[Tuple[Any, ProcessId]], bytes]
        ] = [(initial, 0, None, initial_raw)]
        result = ExplorationResult(
            complete=True,
            states_explored=0,
            events_executed=0,
            max_depth_reached=0,
            group_size=canonicalizer.group_order,
        )
        started = time.perf_counter()

        def unwind(
            link: Optional[Tuple[Any, ProcessId]]
        ) -> Tuple[ProcessId, ...]:
            path: List[ProcessId] = []
            while link is not None:
                link, pid = link
                path.append(pid)
            return tuple(reversed(path))

        while stack:
            state, depth, link, state_raw = stack.pop()
            result.states_explored += 1
            if depth > result.max_depth_reached:
                result.max_depth_reached = depth
            if emit and not (result.states_explored & progress_mask):
                telemetry.gauge("explore.visited", len(visited))
                telemetry.gauge("explore.frontier", len(stack))
                telemetry.event(
                    "explore.progress",
                    states=result.states_explored,
                    frontier=len(stack),
                    visited=len(visited),
                    orbit_hits=result.orbits_collapsed,
                    depth=depth,
                )

            violation = invariant(StateView(instance, state))
            if violation is not None:
                result.violation = violation
                result.violation_schedule = unwind(link)
                result.truncated_by = "violation"
                break

            enabled = enabled_pids(instance, state)
            if not enabled:
                if not all_settled(state):
                    result.stuck_states += 1
                if recorder is not None:
                    recorder.mark_expanded(state_raw)
                continue

            if depth >= max_depth:
                result.truncated_by = "max_depth"
                continue

            if recorder is not None:
                recorder.mark_expanded(state_raw)
            budget_exhausted = False
            for pid in enabled:
                child = step_value(instance, state, pid)
                result.events_executed += 1
                key, raw = canonicalizer.key_of_state(child)
                step_link: Tuple[Any, ProcessId] = (link, pid)
                if raw == state_raw:
                    # Inert self-loop: the step changed nothing the
                    # canonicalizer records — no memory effect, identical
                    # footprints and flags — so the successor is
                    # bisimilar to the popped state and its steps commute
                    # with every other process.  Accelerate: keep
                    # stepping this process until something observable
                    # changes; only that exit state is a new quotient
                    # edge.  A repeated local state inside the loop is a
                    # genuine livelock within the class — nothing new is
                    # reachable.
                    slot = slot_of[pid]
                    seen_locals = {child[1][slot][1]}
                    while raw == state_raw and not (
                        child[1][slot][2] or child[1][slot][3]
                    ):
                        child = step_value(instance, child, pid)
                        result.events_executed += 1
                        step_link = (step_link, pid)
                        key, raw = canonicalizer.key_of_state(child)
                        local = child[1][slot][1]
                        if raw == state_raw:
                            if local in seen_locals:
                                break
                            seen_locals.add(local)
                    if raw == state_raw:
                        # A genuine single-step self-loop: under the
                        # trivial canonicalizer ``raw == state_raw`` on
                        # the *first* step already means the successor
                        # equals the popped state, so the loop above
                        # exits immediately and the retained edge is the
                        # one-step ``(pid, src)`` the liveness analyses
                        # need (a solo livelock in the making).
                        if recorder is not None:
                            recorder.add_edge(state_raw, pid, state_raw)
                        continue
                if recorder is not None:
                    recorder.add_edge(state_raw, pid, raw)
                    recorder.add_node(raw, child)
                claimed = visited.get(key)
                if claimed is not None:
                    if claimed != raw:
                        result.orbits_collapsed += 1
                    continue
                if len(visited) >= max_states:
                    result.truncated_by = "max_states"
                    budget_exhausted = True
                    break
                visited[key] = raw
                stack.append((child, depth + 1, step_link, raw))
            if budget_exhausted:
                break

        result.complete = result.truncated_by is None
        result.wall_seconds = time.perf_counter() - started
        result.peak_visited = len(visited)
        if recorder is not None:
            result.graph = recorder.finish(result.complete)
        if emit:
            telemetry.gauge("explore.visited", len(visited))
            telemetry.gauge("explore.frontier", len(stack))
            telemetry.count("explore.events", result.events_executed)
            telemetry.count("explore.orbit_hits", result.orbits_collapsed)
        return result


# ---------------------------------------------------------------------------
# Parallel backend — work-stealing over the batched packed-state engine
# ---------------------------------------------------------------------------


class ParallelBackend:
    """Work-stealing exploration across ``multiprocessing`` workers.

    A thin front over :func:`repro.runtime.batched.run_work_stealing`
    (see the module docstring above and docs/EXPLORATION.md for the
    design).  Tasks the table compiler cannot enumerate fall back to
    :class:`SerialBackend` wholesale, exactly like
    :class:`~repro.runtime.compiled.CompiledBackend`; ``result.kernel``
    records which engine actually ran.

    Parameters
    ----------
    workers:
        Worker process count (>= 1).
    chunk_size:
        Packed states per work chunk — the work-distribution granule.
        Smaller chunks spread narrow state spaces across workers
        sooner; larger chunks amortise per-chunk overhead.  Any value
        yields identical merged results.
    table_capacity:
        Slot count of the shared visited table (power of two).  Default
        ``None`` sizes it from ``task.max_states`` via
        :func:`repro.runtime.visited.table_capacity`.  Runs that
        outgrow the table truncate honestly with
        ``truncated_by="visited_table_full"``.
    mp_context:
        ``multiprocessing`` start-method context; default is the
        platform default (``fork`` on Linux).
    """

    name = "parallel"

    def __init__(
        self,
        workers: int = 2,
        chunk_size: int = 512,
        table_capacity: Optional[int] = None,
        mp_context: Optional[Any] = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(
                f"workers must be a positive int, got {workers!r}"
            )
        if chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be a positive int, got {chunk_size!r}"
            )
        self.workers = workers
        self.chunk_size = chunk_size
        self.table_capacity = table_capacity
        self._mp_context = mp_context

    def run(
        self,
        task: ExplorationTask,
        telemetry: TelemetrySink = NULL_TELEMETRY,
    ) -> ExplorationResult:
        # Imported lazily: batched -> compiled -> this module.
        from repro.runtime.batched import NotCompilable, run_work_stealing
        from repro.runtime.canonical import TrivialCanonicalizer

        if task.retain_graph and not isinstance(
            task.canonicalizer, TrivialCanonicalizer
        ):
            # explore() rejects this combination; a hand-built task
            # gets the serial behaviour verbatim.
            return SerialBackend().run(task, telemetry=telemetry)
        try:
            result = run_work_stealing(
                task,
                self.workers,
                telemetry=telemetry,
                chunk_size=self.chunk_size,
                mp_context=self._mp_context,
                capacity=self.table_capacity,
            )
        except NotCompilable:
            return SerialBackend().run(task, telemetry=telemetry)
        if result.violation is not None and result.violation_schedule is not None:
            _validate_schedule(task, result.violation_schedule, result.violation)
        return result


def _validate_schedule(
    task: ExplorationTask, schedule: Tuple[ProcessId, ...], message: str
) -> None:
    """Pure replay of a reconstructed schedule; guards the merge logic.

    O(schedule length), run once per reported violation.  A mismatch
    means the parent links were assembled wrong — an internal error, not
    a property of the algorithm under test — so it raises instead of
    returning a corrupt counterexample.
    """
    state = task.initial
    for pid in schedule:
        state = step_value(task.instance, state, pid)
    replayed = task.invariant(StateView(task.instance, state))
    if replayed != message:
        raise RuntimeError(
            "parallel backend produced a schedule that does not replay its "
            f"violation: expected {message!r}, replay gave {replayed!r}"
        )


# ---------------------------------------------------------------------------
# Executors — the same serial/parallel choice for independent sweep cells
# ---------------------------------------------------------------------------

_T = TypeVar("_T")
_R = TypeVar("_R")


class SerialExecutor:
    """In-process ordered ``map`` — the default sweep executor.

    ``initializer`` (if given) runs once in this process before the
    map, mirroring the pool-initializer contract of
    :class:`ProcessExecutor` so callers plant per-process payloads the
    same way under either executor.
    """

    name = "serial"
    workers = 1

    def map(
        self,
        fn: Callable[[_T], _R],
        items: Sequence[_T],
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
    ) -> List[_R]:
        if initializer is not None:
            initializer(*initargs)
        return [fn(item) for item in items]


class ProcessExecutor:
    """Ordered ``map`` over a ``multiprocessing`` pool.

    Results come back in submission order regardless of completion
    order, so swapping this in for :class:`SerialExecutor` never changes
    a sweep's output — only its wall time.  ``fn`` must be a module
    -level function and items/results picklable; under the default
    ``fork`` start method the ``initializer`` payload is inherited
    rather than pickled, so it may close over anything.
    """

    name = "process"

    def __init__(
        self, workers: int = 2, mp_context: Optional[Any] = None
    ) -> None:
        if workers < 1:
            raise ConfigurationError(
                f"workers must be a positive int, got {workers!r}"
            )
        self.workers = workers
        self._mp_context = mp_context

    def map(
        self,
        fn: Callable[[_T], _R],
        items: Sequence[_T],
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
    ) -> List[_R]:
        items = list(items)
        if not items:
            return []
        context = self._mp_context or get_context()
        with context.Pool(
            self.workers, initializer=initializer, initargs=initargs
        ) as pool:
            return pool.map(fn, items)


def resolve_backend(
    spec: str, workers: Optional[int] = None
) -> ExplorationBackend:
    """Build a backend from a CLI-style spec
    (``"serial"``/``"parallel"``/``"compiled"``)."""
    if spec == "serial":
        return SerialBackend()
    if spec == "parallel":
        return ParallelBackend(workers=workers or 2)
    if spec == "compiled":
        # Imported here: compiled.py imports this module at the top.
        from repro.runtime.compiled import CompiledBackend

        return CompiledBackend()
    raise ConfigurationError(
        f"unknown exploration backend {spec!r}; "
        "expected 'serial', 'parallel' or 'compiled'"
    )


class SweepExecutor(Protocol):
    """The ordered-``map`` interface :func:`repro.analysis.experiments.sweep`
    fans its cells out over (satisfied by :class:`SerialExecutor` and
    :class:`ProcessExecutor`)."""

    name: str
    workers: int

    def map(
        self,
        fn: Callable[[_T], _R],
        items: Sequence[_T],
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
    ) -> List[_R]:
        """Apply ``fn`` to every item, preserving submission order."""
        ...


def resolve_executor(
    spec: Union[str, SweepExecutor], workers: Optional[int] = None
) -> SweepExecutor:
    """Build a sweep executor from a spec.

    Accepts the backend vocabulary as strings — ``"serial"`` →
    :class:`SerialExecutor`, ``"process"`` → :class:`ProcessExecutor` —
    or passes an executor instance (anything with a ``map``) through
    unchanged, so ``sweep(backend=...)`` takes either spelling.
    """
    if isinstance(spec, str):
        if spec == "serial":
            return SerialExecutor()
        if spec == "process":
            return ProcessExecutor(workers=workers or 2)
        raise ConfigurationError(
            f"unknown sweep backend {spec!r}; expected 'serial' or 'process'"
        )
    if not hasattr(spec, "map"):
        raise ConfigurationError(
            f"sweep backend must be 'serial', 'process' or an executor "
            f"with a map() method, got {spec!r}"
        )
    return spec
