"""The process model: explicit-state I/O automata.

The paper formalises a global state as "the values of the (local and
shared) registers and the values of the location counters of all the
processes" (§6.1).  We take that formalisation literally: a process is a
:class:`ProcessAutomaton` whose local state is an immutable dataclass with
an explicit ``pc`` (location counter), and whose behaviour is split into

* :meth:`ProcessAutomaton.next_op` — the *pending operation* determined by
  the current local state, and
* :meth:`ProcessAutomaton.apply` — the transition taken when that
  operation is performed and (for reads) its result observed.

This shape buys three things the reproduction needs:

1. **Covering is checkable.**  §6.1: "process p covers a register in run x
   if x can be extended by an event in which p writes to some register" —
   with pending operations explicit, coverage is simply
   ``is_write(automaton.next_op(state))``.
2. **Global states are hashable**, so the bounded model checker
   (:mod:`repro.runtime.exploration`) can deduplicate soundly.
3. **Line-level fidelity.**  Each algorithm's ``pc`` values are annotated
   with the paper's figure line numbers, making the implementation
   auditable against the published pseudocode.

An automaton *halts* by reaching a state where :meth:`is_halted` is true;
its :meth:`output` is then the process's decision / acquired name / final
report.  Mutual exclusion automata, which loop forever in the paper,
take a ``cs_visits`` bound and halt after that many critical-section
passes (participation is not required in the model, so a process retiring
to its remainder section forever is legal behaviour).

An :class:`Algorithm` bundles the shared-memory requirements (register
count, initial value) with a factory of per-process automata — everything
:class:`repro.runtime.system.System` needs to assemble a run.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, ClassVar, Hashable, Mapping, Optional

from repro.errors import ProtocolError
from repro.runtime.ops import Operation
from repro.types import ProcessId, RegisterValue

#: Local states are frozen dataclasses (hashable, immutable).
LocalState = Hashable


class ProcessAutomaton(ABC):
    """One process's program, as an explicit state machine.

    Subclasses implement the four abstract methods; all are pure functions
    of the passed-in state (no hidden mutability), which is what lets the
    scheduler, model checker and lower-bound constructions rewind and
    replay processes freely.
    """

    #: The process's identifier (positive int, compared only for equality
    #: by symmetric algorithms).
    pid: ProcessId

    #: Whether this program is *symmetric* in the paper's §2 sense:
    #: process identifiers may only be written, read back, and compared
    #: for equality.  Named-model baselines that bake in asymmetric roles
    #: (slots, agreed offsets) declare ``SYMMETRIC = False``; the
    #: :mod:`repro.lint.symmetry` pass skips them and statically checks
    #: everyone else.
    SYMMETRIC: ClassVar[bool] = True

    #: Paper figure-line annotations for each program counter value:
    #: ``{pc: "Figure F, line L — what happens"}``.  The
    #: :mod:`repro.lint.pc_audit` pass requires every automaton to carry
    #: this map, checks each pc literal in the class body against it, and
    #: uses the bounded explorer to report annotated-but-unreachable pcs.
    PC_LINES: ClassVar[Optional[Mapping[str, str]]] = None

    @classmethod
    def pc_key(cls, pc: str) -> str:
        """Canonicalise a dynamic pc value to its :attr:`PC_LINES` key.

        Most automata use literal pcs and inherit the identity mapping;
        automata with parameterised counters (e.g. ``round-3``) override
        this to strip the dynamic suffix.
        """
        return pc

    @abstractmethod
    def initial_state(self) -> LocalState:
        """The local state before the process has taken any step."""

    @abstractmethod
    def next_op(self, state: LocalState) -> Operation:
        """The pending operation in ``state`` (undefined once halted)."""

    @abstractmethod
    def apply(self, state: LocalState, op: Operation, result: Any) -> LocalState:
        """The successor state after performing ``op`` with ``result``.

        ``result`` is the value read for a :class:`~repro.runtime.ops.ReadOp`
        and ``None`` for every other operation.
        """

    @abstractmethod
    def is_halted(self, state: LocalState) -> bool:
        """True when the process has terminated (left the algorithm)."""

    def output(self, state: LocalState) -> Any:
        """The process's output in a halted state (``None`` by default)."""
        return None

    # -- symmetry-reduction hooks (repro.runtime.canonical) ----------------
    #
    # The bounded explorer can collapse global states that differ only by
    # a symmetry of the instance (see docs/EXPLORATION.md).  An automaton
    # class opts in by overriding ALL FOUR hooks below *in the same class*
    # — :func:`repro.runtime.canonical.hook_owner` refuses to trust hooks
    # inherited past any subclass that redefines behaviour, so a mutant
    # overriding ``apply`` without refreshing its hooks degrades safely to
    # the conservative defaults.

    def symmetry_signature(self) -> Optional[Any]:
        """Opt-in to process-permutation symmetry: ``(twin_key, value_input)``.

        ``None`` (the default) opts out: the canonicalizer will never map
        this process onto another one.  An override returns a pair:

        * ``twin_key`` — every behaviour-relevant parameter *except* the
          pid and the input.  Two processes are swap candidates only when
          their classes and twin keys are equal (and the naming
          assignment admits the induced register permutation).
        * ``value_input`` — the process's input as it appears inside
          register values / local state, or ``None`` when the input never
          flows into shared data (e.g. mutex ``cs_visits`` tuning).
          Swapping processes with different value-inputs renames those
          values along with the pids.
        """
        return None

    def state_footprint(self, state: LocalState) -> LocalState:
        """A bisimulation-sound compression of ``state`` for deduplication.

        The default is the identity.  An override may drop components
        that are *dead* (never read again from this pc) or fold them into
        what the remaining behaviour actually depends on, as long as
        footprint-equal states have identical future behaviour — same
        pending ops, footprint-equal successors, same halting/outputs.
        """
        return state

    def rename_state_footprint(
        self, footprint: LocalState, pids_renamed: Any, values_renamed: Any
    ) -> LocalState:
        """``footprint`` with every embedded identifier/input renamed.

        ``pids_renamed`` / ``values_renamed`` are mappings applied with
        ``.get(x, x)`` semantics (identity off their domain).  Must be a
        pure function of its arguments.  The default assumes footprints
        embed no identifiers or inputs — only override bundles are ever
        trusted, so opting in forces an explicit statement either way.
        """
        return footprint

    def rename_register_value(
        self, value: Any, pids_renamed: Any, values_renamed: Any
    ) -> Any:
        """A register value with identifiers/inputs renamed (see above)."""
        return value

    # -- conveniences -----------------------------------------------------

    def require_running(self, state: LocalState) -> None:
        """Guard: raise :class:`ProtocolError` if stepped after halting."""
        if self.is_halted(state):
            raise ProtocolError(
                f"process {self.pid} stepped after halting (state={state!r})"
            )

    def run_solo(self, view, max_steps: int = 1_000_000):
        """Run this automaton alone against ``view`` until it halts.

        A convenience used by tests and by obstruction-freedom experiments
        ("a process that runs alone, for sufficiently long time, must
        eventually decide").  Returns ``(final_state, steps_taken)``.

        Raises :class:`ProtocolError` if the automaton does not halt
        within ``max_steps`` — callers exercising obstruction-free
        algorithms should treat that as a termination failure.
        """
        from repro.runtime.ops import ReadOp, WriteOp

        state = self.initial_state()
        for step in range(max_steps):
            if self.is_halted(state):
                return state, step
            op = self.next_op(state)
            if isinstance(op, ReadOp):
                result = view.read(op.index)
            elif isinstance(op, WriteOp):
                view.write(op.index, op.value)
                result = None
            else:
                result = None
            state = self.apply(state, op, result)
        if self.is_halted(state):
            return state, max_steps
        raise ProtocolError(
            f"process {self.pid} did not halt within {max_steps} solo steps"
        )


class Algorithm(ABC):
    """A distributed algorithm: shared-memory shape + per-process programs.

    Attributes
    ----------
    name:
        Short human-readable name used in experiment reports.
    """

    name: str = "algorithm"

    @abstractmethod
    def register_count(self) -> int:
        """How many shared registers the algorithm uses (the paper's m)."""

    def initial_value(self) -> RegisterValue:
        """The registers' initial known state (0 unless overridden)."""
        return 0

    @abstractmethod
    def automaton_for(self, pid: ProcessId, input: Any = None) -> ProcessAutomaton:
        """Build the automaton process ``pid`` runs, with its input value.

        For input-free problems (mutual exclusion) ``input`` is ignored or
        carries per-process tuning (e.g. number of critical-section
        visits).
        """

    def is_anonymous(self) -> bool:
        """Whether the algorithm tolerates arbitrary register namings.

        Memory-anonymous algorithms (the paper's contribution) return
        True; the named-model baselines return False, and the test
        harness only ever runs them under
        :class:`~repro.memory.naming.IdentityNaming`.
        """
        return True


class HaltedOutput:
    """Sentinel wrapper distinguishing "no output yet" from output None."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HaltedOutput({self.value!r})"


def pending_write_target(automaton: ProcessAutomaton, state: LocalState, view) -> Optional[int]:
    """The *physical* register a process is about to write, if any.

    This is §6.1's "covers" relation made executable: returns the physical
    index of the register covered by the process in ``state``, or ``None``
    when the pending operation is not a write.  ``view`` supplies the
    process's private-to-physical translation.
    """
    from repro.runtime.ops import WriteOp

    if automaton.is_halted(state):
        return None
    op = automaton.next_op(state)
    if isinstance(op, WriteOp):
        return view.physical_index_of(op.index)
    return None
