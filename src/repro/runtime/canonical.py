"""Canonical state encoding and symmetry reduction for the explorer.

The bounded model checker (:mod:`repro.runtime.exploration`) deduplicates
global states.  This module supplies the keys it deduplicates on, at two
levels of aggressiveness:

**Compact encoding** (always on).  A captured global state is a nested
tuple of register values, local-state dataclasses and flags; hashing and
storing millions of them is the explorer's main cost.  A
:class:`Canonicalizer` *interns* every distinct register value and local
state into a small integer and packs one global state into a flat
``bytes`` key — one 4-byte slot per register plus two per process.
Interning is injective, so key equality coincides with the equality the
seed explorer used.

**Symmetry reduction** (opt-in, :func:`build_canonicalizer`).  The
paper's model is symmetric twice over — memory anonymity (§1: register
names are private) and process symmetry (§2: identifiers are only
written and compared) — so many reachable states are images of each
other under a *naming automorphism*.  Formally an admissible symmetry is
a triple ``g = (sigma, pi, nu)`` of a process permutation ``sigma``, a
physical-register permutation ``pi`` and a value renaming ``nu`` such
that

* ``pi`` agrees with the naming assignment: for every process ``p`` and
  view index ``j``, ``pi(perm_p[j]) = perm_sigma(p)[j]`` — i.e. ``pi``
  is *determined* by ``sigma`` (``pi = perm_sigma(p) o perm_p^-1``) and
  must come out the same for every ``p``.  Under
  :class:`~repro.memory.naming.IdentityNaming` this forces ``pi = id``;
  equispaced :class:`~repro.memory.naming.RingNaming` couples register
  rotations with cyclic process shifts (the Theorem 3.4 geometry).
* ``sigma`` only maps a process onto a *twin*: same automaton class,
  same :meth:`~repro.runtime.automaton.ProcessAutomaton.symmetry_signature`
  twin key, trusted hooks (see :func:`hook_owner`).
* ``nu`` is induced by the inputs (``nu(input_p) = input_sigma(p)``) and
  must be a consistent bijection.

The set of admissible triples is closed under composition and inverse
(it is the automorphism group of the labelled instance), so mapping each
state to the lexicographic minimum of its orbit is a well-defined
canonical form, and two states receive the same key iff they lie in the
same orbit.  Since the automata treat identifiers, inputs and register
names exactly as the labels ``g`` permutes, ``g`` is a bisimulation:
the subtree under ``g . s`` is the ``g``-image of the subtree under
``s``, with identical verdicts for any symmetric invariant.  The
soundness argument is spelled out in docs/EXPLORATION.md.

When an instance offers no usable structure the builder degrades to a
:class:`TrivialCanonicalizer` — compact encoding only, bit-for-bit the
seed explorer's semantics.
"""

from __future__ import annotations

from array import array
from itertools import permutations, product
from math import factorial
from typing import Any, Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.runtime.automaton import ProcessAutomaton
from repro.runtime.scheduler import ProcessRuntime, Scheduler
from repro.runtime.system import System
from repro.types import ProcessId

#: A packed global-state key.  Opaque, and only comparable between keys
#: produced by the *same* canonicalizer instance (interning is local).
CanonicalKey = bytes

#: The hook bundle an automaton class must override as a unit to opt in.
SYMMETRY_HOOKS: Tuple[str, ...] = (
    "symmetry_signature",
    "state_footprint",
    "rename_state_footprint",
    "rename_register_value",
)

#: Class-dict entries that carry no behaviour (safe to ignore when
#: checking whether a subclass overrides anything past the hook owner).
_INERT_NAMES = frozenset(
    {
        "__doc__",
        "__module__",
        "__qualname__",
        "__annotations__",
        "__dict__",
        "__weakref__",
        "__slots__",
        "__abstractmethods__",
        "_abc_impl",
        "__parameters__",
        "__orig_bases__",
        "__firstlineno__",
        "__static_attributes__",
    }
)

_RenameFn = Callable[[Any, Any, Any], Any]
_FootprintFn = Callable[[Any], Any]


def _identity_rename(value: Any, pids_renamed: Any, values_renamed: Any) -> Any:
    """The identity renaming — used wherever a hook is not trusted."""
    return value


def _definer(cls: type, name: str) -> Optional[type]:
    """The class in ``cls``'s MRO whose body defines ``name``."""
    for klass in cls.__mro__:
        if name in vars(klass):
            return klass
    return None


def hook_owner(cls: type) -> Optional[type]:
    """The class whose symmetry hooks may be trusted for ``cls``, or None.

    The hooks make semantic claims about the behaviour methods
    (``next_op``/``apply``/...), so they are only trusted when

    * all four :data:`SYMMETRY_HOOKS` are overridden *by one class* (not
      inherited from :class:`ProcessAutomaton`'s defaults), and
    * no class more derived than that owner defines anything at all — a
      subclass that overrides or adds any method/attribute may have
      changed behaviour the hooks do not know about (test mutants do
      exactly this), so it falls back to the conservative defaults.
    """
    owners: Set[type] = set()
    for hook in SYMMETRY_HOOKS:
        definer = _definer(cls, hook)
        if definer is None or definer is ProcessAutomaton:
            return None
        owners.add(definer)
    if len(owners) != 1:
        return None
    owner = owners.pop()
    for klass in cls.__mro__:
        if klass is owner:
            return owner
        if any(name not in _INERT_NAMES for name in vars(klass)):
            return None
    return None


class _GroupElement:
    """One admissible non-identity symmetry ``(sigma, pi, nu)``.

    Stores the *pull-back* forms the encoder needs (which source feeds
    each target slot) plus per-element memo tables mapping raw register
    values / footprints straight to the intern id of their rename.
    """

    __slots__ = (
        "source_phys",
        "source_slot",
        "pids_renamed",
        "values_renamed",
        "value_ids",
        "footprint_ids",
    )

    def __init__(
        self,
        source_phys: Tuple[int, ...],
        source_slot: Tuple[int, ...],
        pids_renamed: Dict[ProcessId, ProcessId],
        values_renamed: Dict[Any, Any],
    ) -> None:
        self.source_phys = source_phys
        self.source_slot = source_slot
        self.pids_renamed = pids_renamed
        self.values_renamed = values_renamed
        self.value_ids: Dict[Any, int] = {}
        self.footprint_ids: Dict[Any, int] = {}


class Canonicalizer:
    """Maps the scheduler's *live* state to a canonical packed key.

    :meth:`key_of` reads the scheduler directly (no ``capture_state``
    tuple needed) and returns ``(canonical_key, raw_key)``: the minimum
    of the orbit under the configured group, and the identity encoding.
    With an empty group the two coincide and the canonicalizer is a pure
    compact-encoding layer.

    Build instances with :func:`build_canonicalizer` (or
    :class:`TrivialCanonicalizer` directly); a canonicalizer is bound to
    the scheduler it was built for.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        footprint_fns: List[Optional[_FootprintFn]],
        rename_footprint_fns: List[_RenameFn],
        rename_value_fn: _RenameFn,
        elements: List[_GroupElement],
        group_capped: bool = False,
    ) -> None:
        order = sorted(scheduler.pids)
        self.pid_order: Tuple[ProcessId, ...] = tuple(order)
        self._memory = scheduler.memory
        self._runtimes: List[ProcessRuntime] = [
            scheduler.runtime(pid) for pid in order
        ]
        self._footprint_fns = footprint_fns
        self._rename_footprint_fns = rename_footprint_fns
        self._rename_value_fn = rename_value_fn
        self._elements = elements
        #: Order of the symmetry group being reduced by (>= 1).
        self.group_order: int = len(elements) + 1
        #: True when candidate enumeration was skipped as too large and
        #: the group conservatively collapsed to the identity.
        self.group_capped: bool = group_capped
        #: Whether any per-automaton footprint compression is active.
        self.uses_footprints: bool = any(
            fn is not None for fn in footprint_fns
        )
        self._intern: Dict[Any, int] = {}

    def describe(self) -> str:
        """One-line configuration summary for benchmark records."""
        capped = ", capped" if self.group_capped else ""
        return (
            f"group={self.group_order}{capped}, "
            f"footprints={'on' if self.uses_footprints else 'off'}"
        )

    @property
    def interned_objects(self) -> int:
        """Distinct register values / footprints interned so far."""
        return len(self._intern)

    def key_of(self) -> Tuple[CanonicalKey, CanonicalKey]:
        """``(canonical_key, raw_key)`` of the scheduler's current state."""
        values = self._memory.snapshot()
        intern = self._intern
        ints: List[int] = []
        for value in values:
            value_id = intern.get(value)
            if value_id is None:
                value_id = len(intern)
                intern[value] = value_id
            ints.append(value_id)
        footprints: List[Any] = []
        flags: List[int] = []
        for slot, runtime in enumerate(self._runtimes):
            footprint_fn = self._footprint_fns[slot]
            footprint = (
                runtime.state
                if footprint_fn is None
                else footprint_fn(runtime.state)
            )
            footprints.append(footprint)
            footprint_id = intern.get(footprint)
            if footprint_id is None:
                footprint_id = len(intern)
                intern[footprint] = footprint_id
            flag = (2 if runtime.halted else 0) | (1 if runtime.crashed else 0)
            flags.append(flag)
            ints.append(footprint_id)
            ints.append(flag)
        raw = array("I", ints).tobytes()
        if not self._elements:
            return raw, raw
        best = raw
        for element in self._elements:
            candidate: List[int] = []
            value_ids = element.value_ids
            for phys in element.source_phys:
                value = values[phys]
                value_id = value_ids.get(value)
                if value_id is None:
                    renamed = self._rename_value_fn(
                        value, element.pids_renamed, element.values_renamed
                    )
                    value_id = intern.get(renamed)
                    if value_id is None:
                        value_id = len(intern)
                        intern[renamed] = value_id
                    value_ids[value] = value_id
                candidate.append(value_id)
            footprint_ids = element.footprint_ids
            for slot in element.source_slot:
                footprint = footprints[slot]
                cache_key = (slot, footprint)
                footprint_id = footprint_ids.get(cache_key)
                if footprint_id is None:
                    renamed_fp = self._rename_footprint_fns[slot](
                        footprint, element.pids_renamed, element.values_renamed
                    )
                    footprint_id = intern.get(renamed_fp)
                    if footprint_id is None:
                        footprint_id = len(intern)
                        intern[renamed_fp] = footprint_id
                    footprint_ids[cache_key] = footprint_id
                candidate.append(footprint_id)
                candidate.append(flags[slot])
            packed = array("I", candidate).tobytes()
            if packed < best:
                best = packed
        return best, raw


class TrivialCanonicalizer(Canonicalizer):
    """Compact encoding only — the conservative fallback.

    No footprints, no group: key equality is exactly raw global-state
    equality, i.e. the seed explorer's deduplication with cheaper keys.
    """

    def __init__(self, scheduler: Scheduler) -> None:
        count = len(scheduler.pids)
        identity = _identity_rename
        super().__init__(
            scheduler,
            footprint_fns=[None] * count,
            rename_footprint_fns=[identity] * count,
            rename_value_fn=identity,
            elements=[],
        )


# ---------------------------------------------------------------------------
# Group construction
# ---------------------------------------------------------------------------


def _block_permutations(
    order: List[ProcessId], blocks: List[List[ProcessId]]
) -> Iterator[Dict[ProcessId, ProcessId]]:
    """Every non-identity pid bijection permuting within twin blocks."""
    for images in product(*(permutations(block) for block in blocks)):
        sigma: Dict[ProcessId, ProcessId] = {}
        for block, image in zip(blocks, images):
            for source, target in zip(block, image):
                sigma[source] = target
        if any(source != target for source, target in sigma.items()):
            yield sigma


def _induced_register_permutation(
    sigma: Dict[ProcessId, ProcessId],
    perms: Dict[ProcessId, Tuple[int, ...]],
    size: int,
) -> Optional[Tuple[int, ...]]:
    """``pi^-1`` as a pull-back table, or None when no consistent ``pi``.

    ``pi`` is computed from one process as ``perm_sigma(p) o perm_p^-1``
    and verified against every other; the returned tuple maps each
    target physical slot to the source slot whose (renamed) value lands
    there.
    """
    first = next(iter(sigma))
    base = perms[first]
    image = perms[sigma[first]]
    pi = [0] * size
    for j in range(size):
        pi[base[j]] = image[j]
    for source, target in sigma.items():
        source_perm = perms[source]
        target_perm = perms[target]
        for j in range(size):
            if pi[source_perm[j]] != target_perm[j]:
                return None
    inverse = [0] * size
    for phys in range(size):
        inverse[pi[phys]] = phys
    return tuple(inverse)


def _induced_value_renaming(
    sigma: Dict[ProcessId, ProcessId], value_inputs: Dict[ProcessId, Any]
) -> Optional[Dict[Any, Any]]:
    """The value renaming ``nu`` forced by the inputs, or None if invalid."""
    renaming: Dict[Any, Any] = {}
    for source, target in sigma.items():
        source_value = value_inputs[source]
        target_value = value_inputs[target]
        if source_value is None and target_value is None:
            continue
        if source_value is None or target_value is None:
            return None
        if source_value in renaming:
            if renaming[source_value] != target_value:
                return None
        else:
            renaming[source_value] = target_value
    if len(set(renaming.values())) != len(renaming):
        return None
    return {
        source: target for source, target in renaming.items() if source != target
    }


def _admissible_elements(
    system: System,
    order: List[ProcessId],
    automata: List[ProcessAutomaton],
    owners: List[Optional[type]],
    max_group: int,
) -> Tuple[List[_GroupElement], bool]:
    """Enumerate the instance's non-identity symmetries (capped)."""
    cls = type(automata[0])
    if any(type(automaton) is not cls for automaton in automata):
        return [], False
    if not cls.SYMMETRIC:
        return [], False
    if any(owner is None for owner in owners):
        return [], False
    signatures = [automaton.symmetry_signature() for automaton in automata]
    if any(signature is None for signature in signatures):
        return [], False
    twin_keys: Dict[ProcessId, Any] = {}
    value_inputs: Dict[ProcessId, Any] = {}
    for pid, signature in zip(order, signatures):
        twin_key, value_input = signature
        twin_keys[pid] = twin_key
        value_inputs[pid] = value_input
    block_map: Dict[Any, List[ProcessId]] = {}
    for pid in order:
        block_map.setdefault(twin_keys[pid], []).append(pid)
    blocks = list(block_map.values())
    candidates = 1
    for block in blocks:
        candidates *= factorial(len(block))
        if candidates > max_group:
            return [], True
    memory = system.memory
    perms = {pid: memory.view(pid).permutation for pid in order}
    slot_of = {pid: slot for slot, pid in enumerate(order)}
    size = memory.size
    elements: List[_GroupElement] = []
    for sigma in _block_permutations(order, blocks):
        source_phys = _induced_register_permutation(sigma, perms, size)
        if source_phys is None:
            continue
        values_renamed = _induced_value_renaming(sigma, value_inputs)
        if values_renamed is None:
            continue
        inverse_sigma = {target: source for source, target in sigma.items()}
        source_slot = tuple(slot_of[inverse_sigma[pid]] for pid in order)
        pids_renamed = {
            source: target for source, target in sigma.items() if source != target
        }
        elements.append(
            _GroupElement(source_phys, source_slot, pids_renamed, values_renamed)
        )
    return elements, False


def build_canonicalizer(
    system: System,
    symmetry: bool = True,
    footprints: bool = True,
    max_group: int = 720,
) -> Canonicalizer:
    """The strongest sound canonicalizer for ``system``.

    Per process, footprint compression engages iff its automaton class
    has a trusted hook bundle (:func:`hook_owner`); the symmetry group is
    enumerated iff *every* automaton shares one trusted class and opts
    in via ``symmetry_signature``.  Anything less — mutants, mixed or
    asymmetric systems, ``None`` signatures — degrades that part to the
    identity, so the result is always sound for symmetric invariants and
    at worst a :class:`TrivialCanonicalizer`.

    ``max_group`` caps the *candidate* enumeration (the product of twin
    -block factorials); past it the group collapses to the identity and
    :attr:`Canonicalizer.group_capped` is set.
    """
    scheduler = system.scheduler
    order = sorted(scheduler.pids)
    automata = [scheduler.runtime(pid).automaton for pid in order]
    owners = [hook_owner(type(automaton)) for automaton in automata]
    identity: _RenameFn = _identity_rename
    footprint_fns: List[Optional[_FootprintFn]] = [
        automaton.state_footprint if (footprints and owner is not None) else None
        for automaton, owner in zip(automata, owners)
    ]
    rename_footprint_fns: List[_RenameFn] = [
        automaton.rename_state_footprint if owner is not None else identity
        for automaton, owner in zip(automata, owners)
    ]
    elements: List[_GroupElement] = []
    capped = False
    if symmetry and order:
        elements, capped = _admissible_elements(
            system, order, automata, owners, max_group
        )
    rename_value_fn: _RenameFn = (
        automata[0].rename_register_value if elements else identity
    )
    if not elements and not any(fn is not None for fn in footprint_fns):
        trivial = TrivialCanonicalizer(scheduler)
        trivial.group_capped = capped
        return trivial
    return Canonicalizer(
        scheduler,
        footprint_fns,
        rename_footprint_fns,
        rename_value_fn,
        elements,
        group_capped=capped,
    )
