"""Canonical state encoding and symmetry reduction for the explorer.

The bounded model checker (:mod:`repro.runtime.exploration`) deduplicates
global states.  This module supplies the keys it deduplicates on, at two
levels of aggressiveness:

**Compact encoding** (always on).  A captured global state is a nested
tuple of register values, local-state dataclasses and flags; hashing and
storing millions of them is the explorer's main cost.  A
:class:`Canonicalizer` maps every distinct register value and local
state to a *content-addressed* 8-byte digest (:func:`stable_encode` +
BLAKE2b, memoised per value) and packs one global state into a flat
``bytes`` key — one digest per register plus a digest and a status byte
per process.  Because the digest depends only on the value's content —
not on interning order, process identity or ``PYTHONHASHSEED`` — two
canonicalizers built from the same instance in *different OS processes*
produce identical keys, which is what lets the parallel exploration
backend (:mod:`repro.runtime.backends`) canonicalize in workers and
deduplicate at the coordinator.  Key equality coincides with the
equality the seed explorer used up to BLAKE2b collisions on 64-bit
digests (probability ≈ ``n²/2⁶⁵`` for ``n`` distinct values — about
``10⁻⁸`` even for a billion-value walk, and a collision could only
cause a false *merge*, never a false violation).

**Symmetry reduction** (opt-in, :func:`build_canonicalizer`).  The
paper's model is symmetric twice over — memory anonymity (§1: register
names are private) and process symmetry (§2: identifiers are only
written and compared) — so many reachable states are images of each
other under a *naming automorphism*.  Formally an admissible symmetry is
a triple ``g = (sigma, pi, nu)`` of a process permutation ``sigma``, a
physical-register permutation ``pi`` and a value renaming ``nu`` such
that

* ``pi`` agrees with the naming assignment: for every process ``p`` and
  view index ``j``, ``pi(perm_p[j]) = perm_sigma(p)[j]`` — i.e. ``pi``
  is *determined* by ``sigma`` (``pi = perm_sigma(p) o perm_p^-1``) and
  must come out the same for every ``p``.  Under
  :class:`~repro.memory.naming.IdentityNaming` this forces ``pi = id``;
  equispaced :class:`~repro.memory.naming.RingNaming` couples register
  rotations with cyclic process shifts (the Theorem 3.4 geometry).
* ``sigma`` only maps a process onto a *twin*: same automaton class,
  same :meth:`~repro.runtime.automaton.ProcessAutomaton.symmetry_signature`
  twin key, trusted hooks (see :func:`hook_owner`).
* ``nu`` is induced by the inputs (``nu(input_p) = input_sigma(p)``) and
  must be a consistent bijection.

The set of admissible triples is closed under composition and inverse
(it is the automorphism group of the labelled instance), so mapping each
state to the lexicographic minimum of its orbit is a well-defined
canonical form, and two states receive the same key iff they lie in the
same orbit.  Since the automata treat identifiers, inputs and register
names exactly as the labels ``g`` permutes, ``g`` is a bisimulation:
the subtree under ``g . s`` is the ``g``-image of the subtree under
``s``, with identical verdicts for any symmetric invariant.  The
soundness argument is spelled out in docs/EXPLORATION.md.

When an instance offers no usable structure the builder degrades to a
:class:`TrivialCanonicalizer` — compact encoding only, bit-for-bit the
seed explorer's semantics.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, fields, is_dataclass
from hashlib import blake2b
from itertools import permutations, product
from math import factorial
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.memory.anonymous import AnonymousMemory
from repro.runtime.automaton import ProcessAutomaton
from repro.runtime.kernel import GlobalState
from repro.runtime.scheduler import ProcessRuntime, Scheduler
from repro.runtime.system import System
from repro.types import ProcessId

#: A packed global-state key.  Content-addressed: comparable between
#: canonicalizers built for the same instance, across OS processes.
CanonicalKey = bytes

#: The hook bundle an automaton class must override as a unit to opt in.
SYMMETRY_HOOKS: Tuple[str, ...] = (
    "symmetry_signature",
    "state_footprint",
    "rename_state_footprint",
    "rename_register_value",
)

#: Class-dict entries that carry no behaviour (safe to ignore when
#: checking whether a subclass overrides anything past the hook owner).
_INERT_NAMES = frozenset(
    {
        "__doc__",
        "__module__",
        "__qualname__",
        "__annotations__",
        "__dict__",
        "__weakref__",
        "__slots__",
        "__abstractmethods__",
        "_abc_impl",
        "__parameters__",
        "__orig_bases__",
        "__firstlineno__",
        "__static_attributes__",
    }
)

_RenameFn = Callable[[Any, Any, Any], Any]
_FootprintFn = Callable[[Any], Any]


# ---------------------------------------------------------------------------
# Content-addressed value digests
# ---------------------------------------------------------------------------

#: Digest width.  8 bytes keeps keys half the size of raw object hashes
#: while making accidental collisions (~n²/2⁶⁵) negligible at any state
#: count this explorer can reach.
DIGEST_SIZE = 8

_FLAG_BYTES: Tuple[bytes, ...] = (b"\x00", b"\x01", b"\x02", b"\x03")


def stable_encode(value: Any) -> bytes:
    """Deterministic, injective byte encoding of a model value.

    The encoding depends only on the value's *content*: it is identical
    across OS processes, interpreter runs and ``PYTHONHASHSEED`` values —
    the property parallel workers need to produce comparable state keys.
    Containers are tagged and length-delimited (so ``(1, 2)``, ``[1, 2]``
    and ``"12"`` never collide); sets and dicts are serialised in sorted
    -encoding order; dataclasses (the repo's local-state idiom) encode as
    their qualified class name plus field values.  Anything else falls
    back to ``repr``, which is deterministic for the value-semantics
    objects the model traffics in (and a new local-state representation
    should prefer a dataclass anyway).
    """
    out: List[bytes] = []
    _encode_into(value, out)
    return b"".join(out)


def _encode_into(value: Any, out: List[bytes]) -> None:
    if value is None:
        out.append(b"N")
    elif value is True:
        out.append(b"T")
    elif value is False:
        out.append(b"F")
    elif type(value) is int:
        out.append(b"I%d;" % value)
    elif type(value) is str:
        encoded = value.encode("utf-8")
        out.append(b"S%d:" % len(encoded))
        out.append(encoded)
    elif type(value) is bytes:
        out.append(b"B%d:" % len(value))
        out.append(value)
    elif type(value) is float:
        out.append(b"D")
        out.append(repr(value).encode("ascii"))
        out.append(b";")
    elif type(value) is tuple:
        out.append(b"(")
        for item in value:
            _encode_into(item, out)
        out.append(b")")
    elif type(value) is list:
        out.append(b"[")
        for item in value:
            _encode_into(item, out)
        out.append(b"]")
    elif type(value) in (frozenset, set):
        out.append(b"{")
        for encoded in sorted(stable_encode(item) for item in value):
            out.append(encoded)
        out.append(b"}")
    elif type(value) is dict:
        out.append(b"<")
        entries = sorted(
            (stable_encode(key), stable_encode(item))
            for key, item in value.items()
        )
        for encoded_key, encoded_item in entries:
            out.append(encoded_key)
            out.append(encoded_item)
        out.append(b">")
    elif is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        out.append(b"C")
        out.append(f"{cls.__module__}.{cls.__qualname__}".encode("utf-8"))
        out.append(b"(")
        for field in fields(value):
            _encode_into(getattr(value, field.name), out)
        out.append(b")")
    else:
        cls = type(value)
        tag = f"R{cls.__module__}.{cls.__qualname__}:{value!r};"
        out.append(tag.encode("utf-8"))


def _digest(value: Any) -> bytes:
    """The 8-byte content digest a state key stores per slot."""
    return blake2b(stable_encode(value), digest_size=DIGEST_SIZE).digest()


def _identity_rename(value: Any, pids_renamed: Any, values_renamed: Any) -> Any:
    """The identity renaming — used wherever a hook is not trusted."""
    return value


def _definer(cls: type, name: str) -> Optional[type]:
    """The class in ``cls``'s MRO whose body defines ``name``."""
    for klass in cls.__mro__:
        if name in vars(klass):
            return klass
    return None


@dataclass(frozen=True)
class HookClaims:
    """What a trusted hook bundle claims about its automaton's writes.

    ``renames_pids``/``renames_values`` report whether the owner's
    ``rename_register_value`` body actually *uses* the corresponding
    renaming table — i.e. whether the hooks claim that register values
    can carry process identifiers / input values.  The footprint lint
    pass cross-checks these claims against the write footprint inferred
    from ``next_op``: an automaton that writes its pid through a hook
    bundle that never renames pids would silently break the symmetry
    reduction's bisimulation argument.
    """

    owner: type
    renames_pids: bool
    renames_values: bool


def hook_claims(cls: type) -> Optional[HookClaims]:
    """The renaming claims of ``cls``'s trusted hook bundle, or ``None``.

    ``None`` means no trusted bundle (no owner — subclass drift, or the
    defaults) or the owner's source is unavailable; callers should then
    skip the cross-check rather than guess.
    """
    owner = hook_owner(cls)
    if owner is None:
        return None
    rename = vars(owner).get("rename_register_value")
    if rename is None:
        return None
    try:
        source, _ = inspect.getsourcelines(rename)
        tree = ast.parse(textwrap.dedent("".join(source)))
    except (OSError, TypeError, SyntaxError):
        return None
    used: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            used.add(node.id)
    return HookClaims(
        owner=owner,
        renames_pids="pids_renamed" in used,
        renames_values="values_renamed" in used,
    )


def hook_owner(cls: type) -> Optional[type]:
    """The class whose symmetry hooks may be trusted for ``cls``, or None.

    The hooks make semantic claims about the behaviour methods
    (``next_op``/``apply``/...), so they are only trusted when

    * all four :data:`SYMMETRY_HOOKS` are overridden *by one class* (not
      inherited from :class:`ProcessAutomaton`'s defaults), and
    * no class more derived than that owner defines anything at all — a
      subclass that overrides or adds any method/attribute may have
      changed behaviour the hooks do not know about (test mutants do
      exactly this), so it falls back to the conservative defaults.
    """
    owners: Set[type] = set()
    for hook in SYMMETRY_HOOKS:
        definer = _definer(cls, hook)
        if definer is None or definer is ProcessAutomaton:
            return None
        owners.add(definer)
    if len(owners) != 1:
        return None
    owner = owners.pop()
    for klass in cls.__mro__:
        if klass is owner:
            return owner
        if any(name not in _INERT_NAMES for name in vars(klass)):
            return None
    return None


class _GroupElement:
    """One admissible non-identity symmetry ``(sigma, pi, nu)``.

    Stores the *pull-back* forms the encoder needs (which source feeds
    each target slot) plus per-element memo tables mapping raw register
    values / footprints straight to the content digest of their rename.
    """

    __slots__ = (
        "source_phys",
        "source_slot",
        "pids_renamed",
        "values_renamed",
        "value_ids",
        "footprint_ids",
    )

    def __init__(
        self,
        source_phys: Tuple[int, ...],
        source_slot: Tuple[int, ...],
        pids_renamed: Dict[ProcessId, ProcessId],
        values_renamed: Dict[Any, Any],
    ) -> None:
        self.source_phys = source_phys
        self.source_slot = source_slot
        self.pids_renamed = pids_renamed
        self.values_renamed = values_renamed
        self.value_ids: Dict[Any, bytes] = {}
        self.footprint_ids: Dict[Any, bytes] = {}


@dataclass(frozen=True)
class PackedCandidate:
    """One group element's digest tables over a packed-state domain.

    ``value_digest[vi]`` is the digest of the *renamed* register value
    ``values[vi]``; ``slot_digest[slot][si]`` is the digest of slot
    ``slot``'s renamed footprint for local state ``si`` with the source
    slot's flag byte appended — exactly the bytes :meth:`Canonicalizer._key`
    contributes for that element, reindexed by packed-state components.
    """

    source_phys: Tuple[int, ...]
    source_slot: Tuple[int, ...]
    value_digest: Tuple[bytes, ...]
    slot_digest: Tuple[Tuple[bytes, ...], ...]


@dataclass(frozen=True)
class PackedDigestTables:
    """Digest tables for computing canonical keys from packed states.

    Produced by :meth:`Canonicalizer.packed_digest_tables` for the
    compiled kernel: ``value_raw[vi]`` and ``slot_raw[slot][si]``
    (footprint digest + flag byte) concatenate to the raw key, and each
    :class:`PackedCandidate` yields one orbit candidate; the canonical
    key is the minimum — byte-identical to :meth:`Canonicalizer._key`
    because every digest passed through the same intern/digest path.

    The ``batch_*`` methods serve the batched exploration core: they
    walk a *flat* integer batch (``m + nslots`` ints per state, the
    packed layout, concatenated — an ``array('q')`` or any integer
    sequence) and digest every state in one pass, so per-batch dedup
    pays the Python dispatch cost once per batch instead of once per
    state.
    """

    value_raw: Tuple[bytes, ...]
    slot_raw: Tuple[Tuple[bytes, ...], ...]
    candidates: Tuple[PackedCandidate, ...]

    def batch_raw(self, flat: Sequence[int], m: int) -> List[bytes]:
        """Raw keys of a flat batch of packed states.

        ``flat`` holds ``len(flat) // (m + nslots)`` packed states
        back to back; ``m`` is the register count (the packed prefix
        width).  Each returned key is byte-identical to the raw half of
        :meth:`Canonicalizer.key_of_state` on the unpacked state.
        """
        value_raw = self.value_raw
        slot_raw = self.slot_raw
        nslots = len(slot_raw)
        stride = m + nslots
        out: List[bytes] = []
        for base in range(0, len(flat), stride):
            parts = [value_raw[flat[base + i]] for i in range(m)]
            for s in range(nslots):
                parts.append(slot_raw[s][flat[base + m + s]])
            out.append(b"".join(parts))
        return out

    def batch_keys(
        self, flat: Sequence[int], m: int
    ) -> List[Tuple[bytes, bytes]]:
        """``(canonical_key, raw_key)`` pairs for a flat packed batch.

        The canonical key is the minimum over this table's orbit
        candidates, exactly as :meth:`Canonicalizer._key` computes it;
        with no candidates the two keys coincide (shared objects, no
        copy).
        """
        value_raw = self.value_raw
        slot_raw = self.slot_raw
        candidates = self.candidates
        nslots = len(slot_raw)
        stride = m + nslots
        out: List[Tuple[bytes, bytes]] = []
        for base in range(0, len(flat), stride):
            parts = [value_raw[flat[base + i]] for i in range(m)]
            for s in range(nslots):
                parts.append(slot_raw[s][flat[base + m + s]])
            raw = b"".join(parts)
            if not candidates:
                out.append((raw, raw))
                continue
            best = raw
            for cand in candidates:
                cparts = [
                    cand.value_digest[flat[base + phys]]
                    for phys in cand.source_phys
                ]
                for s in cand.source_slot:
                    cparts.append(cand.slot_digest[s][flat[base + m + s]])
                joined = b"".join(cparts)
                if joined < best:
                    best = joined
            out.append((best, raw))
        return out


class Canonicalizer:
    """Maps a global state to a canonical content-addressed key.

    Two entry points share one encoder:

    * :meth:`key_of` reads the scheduler the canonicalizer was built for
      directly (no ``capture_state`` tuple needed) — the live, serial
      path.
    * :meth:`key_of_state` encodes a :data:`~repro.runtime.kernel.GlobalState`
      *value* without touching any live object — the path the pure
      kernel and the parallel workers use.

    Both return ``(canonical_key, raw_key)``: the minimum of the orbit
    under the configured group, and the identity encoding.  With an
    empty group the two coincide and the canonicalizer is a pure compact
    -encoding layer.  Keys are content-addressed (see module docstring),
    so they agree between the two entry points and across OS processes.

    Canonicalizers are picklable: the per-value digest memo travels with
    them (warm caches for the worker) while the live scheduler binding is
    dropped — an unpickled copy supports :meth:`key_of_state` only.

    Build instances with :func:`build_canonicalizer` (or
    :class:`TrivialCanonicalizer` directly).
    """

    def __init__(
        self,
        scheduler: Scheduler,
        footprint_fns: List[Optional[_FootprintFn]],
        rename_footprint_fns: List[_RenameFn],
        rename_value_fn: _RenameFn,
        elements: List[_GroupElement],
        group_capped: bool = False,
    ) -> None:
        order = sorted(scheduler.pids)
        self.pid_order: Tuple[ProcessId, ...] = tuple(order)
        self._memory: Optional[AnonymousMemory] = scheduler.memory
        self._runtimes: Optional[List[ProcessRuntime]] = [
            scheduler.runtime(pid) for pid in order
        ]
        self._footprint_fns = footprint_fns
        self._rename_footprint_fns = rename_footprint_fns
        self._rename_value_fn = rename_value_fn
        self._elements = elements
        #: Order of the symmetry group being reduced by (>= 1).
        self.group_order: int = len(elements) + 1
        #: True when candidate enumeration was skipped as too large and
        #: the group conservatively collapsed to the identity.
        self.group_capped: bool = group_capped
        #: Whether any per-automaton footprint compression is active.
        self.uses_footprints: bool = any(
            fn is not None for fn in footprint_fns
        )
        self._intern: Dict[Any, bytes] = {}

    def describe(self) -> str:
        """One-line configuration summary for benchmark records."""
        capped = ", capped" if self.group_capped else ""
        return (
            f"group={self.group_order}{capped}, "
            f"footprints={'on' if self.uses_footprints else 'off'}"
        )

    @property
    def interned_objects(self) -> int:
        """Distinct register values / footprints digested so far."""
        return len(self._intern)

    # -- pickling (parallel workers canonicalize locally) ------------------

    def __getstate__(self) -> Dict[str, Any]:
        state = self.__dict__.copy()
        # The live scheduler bindings stay behind: a worker receives the
        # group structure, hooks and warm digest memo, and runs purely on
        # value states via key_of_state().
        state["_memory"] = None
        state["_runtimes"] = None
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)

    # -- encoding ----------------------------------------------------------

    def key_of(self) -> Tuple[CanonicalKey, CanonicalKey]:
        """``(canonical_key, raw_key)`` of the scheduler's current state."""
        if self._memory is None or self._runtimes is None:
            raise RuntimeError(
                "this canonicalizer was unpickled and has no live scheduler; "
                "use key_of_state(global_state) instead"
            )
        values = self._memory.snapshot()
        slots = [
            (runtime.state, runtime.halted, runtime.crashed)
            for runtime in self._runtimes
        ]
        return self._key(values, slots)

    def key_of_state(
        self, global_state: GlobalState
    ) -> Tuple[CanonicalKey, CanonicalKey]:
        """``(canonical_key, raw_key)`` of a captured global-state value.

        Pure: reads only the tuple (whose per-process part is sorted by
        pid, matching :attr:`pid_order`), never a live object — safe in
        any OS process holding an unpickled canonicalizer.
        """
        registers, locals_part = global_state
        slots = [
            (state, halted, crashed)
            for _pid, state, halted, crashed in locals_part
        ]
        return self._key(registers, slots)

    def _key(
        self,
        values: Sequence[Any],
        slots: Sequence[Tuple[Any, bool, bool]],
    ) -> Tuple[CanonicalKey, CanonicalKey]:
        intern = self._intern
        parts: List[bytes] = []
        for value in values:
            value_digest = intern.get(value)
            if value_digest is None:
                value_digest = _digest(value)
                intern[value] = value_digest
            parts.append(value_digest)
        footprints: List[Any] = []
        flags: List[bytes] = []
        for slot, (state, halted, crashed) in enumerate(slots):
            footprint_fn = self._footprint_fns[slot]
            footprint = state if footprint_fn is None else footprint_fn(state)
            footprints.append(footprint)
            footprint_digest = intern.get(footprint)
            if footprint_digest is None:
                footprint_digest = _digest(footprint)
                intern[footprint] = footprint_digest
            flag = _FLAG_BYTES[(2 if halted else 0) | (1 if crashed else 0)]
            flags.append(flag)
            parts.append(footprint_digest)
            parts.append(flag)
        raw = b"".join(parts)
        if not self._elements:
            return raw, raw
        best = raw
        for element in self._elements:
            candidate: List[bytes] = []
            value_ids = element.value_ids
            for phys in element.source_phys:
                value = values[phys]
                value_digest = value_ids.get(value)
                if value_digest is None:
                    renamed = self._rename_value_fn(
                        value, element.pids_renamed, element.values_renamed
                    )
                    value_digest = intern.get(renamed)
                    if value_digest is None:
                        value_digest = _digest(renamed)
                        intern[renamed] = value_digest
                    value_ids[value] = value_digest
                candidate.append(value_digest)
            footprint_ids = element.footprint_ids
            for slot in element.source_slot:
                footprint = footprints[slot]
                cache_key = (slot, footprint)
                footprint_digest = footprint_ids.get(cache_key)
                if footprint_digest is None:
                    renamed_fp = self._rename_footprint_fns[slot](
                        footprint, element.pids_renamed, element.values_renamed
                    )
                    footprint_digest = intern.get(renamed_fp)
                    if footprint_digest is None:
                        footprint_digest = _digest(renamed_fp)
                        intern[renamed_fp] = footprint_digest
                    footprint_ids[cache_key] = footprint_digest
                candidate.append(footprint_digest)
                candidate.append(flags[slot])
            packed = b"".join(candidate)
            if packed < best:
                best = packed
        return best, raw

    def packed_digest_tables(
        self,
        values: Sequence[Any],
        slot_states: Sequence[Sequence[Any]],
        slot_halted: Sequence[Sequence[bool]],
        slot_crashed: Sequence[bool],
    ) -> PackedDigestTables:
        """Precompute the digests :meth:`_key` would produce, by index.

        The compiled kernel enumerates a closed register value domain
        and per-slot local-state spaces ahead of time; this method runs
        every (value, footprint, rename) through the *same* intern and
        digest path as :meth:`_key`, so keys assembled from the returned
        tables are byte-identical to ``key_of_state`` on the unpacked
        state.  Raises whatever a footprint or rename hook raises —
        callers treat that as a compilation failure.
        """
        intern = self._intern

        def digest_of(value: Any) -> bytes:
            cached = intern.get(value)
            if cached is None:
                cached = _digest(value)
                intern[value] = cached
            return cached

        value_raw = tuple(digest_of(value) for value in values)
        footprints: List[List[Any]] = []
        flags: List[List[bytes]] = []
        slot_raw_rows: List[Tuple[bytes, ...]] = []
        for slot, states in enumerate(slot_states):
            footprint_fn = self._footprint_fns[slot]
            fps = [
                state if footprint_fn is None else footprint_fn(state)
                for state in states
            ]
            footprints.append(fps)
            crashed_bit = 1 if slot_crashed[slot] else 0
            flag_row = [
                _FLAG_BYTES[(2 if halted else 0) | crashed_bit]
                for halted in slot_halted[slot]
            ]
            flags.append(flag_row)
            slot_raw_rows.append(
                tuple(
                    digest_of(fp) + flag
                    for fp, flag in zip(fps, flag_row)
                )
            )
        candidates: List[PackedCandidate] = []
        for element in self._elements:
            value_digest = tuple(
                digest_of(
                    self._rename_value_fn(
                        value, element.pids_renamed, element.values_renamed
                    )
                )
                for value in values
            )
            slot_digest_rows: List[Tuple[bytes, ...]] = []
            for slot, fps in enumerate(footprints):
                rename_fn = self._rename_footprint_fns[slot]
                slot_digest_rows.append(
                    tuple(
                        digest_of(
                            rename_fn(
                                fp,
                                element.pids_renamed,
                                element.values_renamed,
                            )
                        )
                        + flag
                        for fp, flag in zip(fps, flags[slot])
                    )
                )
            candidates.append(
                PackedCandidate(
                    source_phys=element.source_phys,
                    source_slot=element.source_slot,
                    value_digest=value_digest,
                    slot_digest=tuple(slot_digest_rows),
                )
            )
        return PackedDigestTables(
            value_raw=value_raw,
            slot_raw=tuple(slot_raw_rows),
            candidates=tuple(candidates),
        )


class TrivialCanonicalizer(Canonicalizer):
    """Compact encoding only — the conservative fallback.

    No footprints, no group: key equality is exactly raw global-state
    equality, i.e. the seed explorer's deduplication with cheaper keys.
    """

    def __init__(self, scheduler: Scheduler) -> None:
        count = len(scheduler.pids)
        identity = _identity_rename
        super().__init__(
            scheduler,
            footprint_fns=[None] * count,
            rename_footprint_fns=[identity] * count,
            rename_value_fn=identity,
            elements=[],
        )


# ---------------------------------------------------------------------------
# Group construction
# ---------------------------------------------------------------------------


def _block_permutations(
    order: List[ProcessId], blocks: List[List[ProcessId]]
) -> Iterator[Dict[ProcessId, ProcessId]]:
    """Every non-identity pid bijection permuting within twin blocks."""
    for images in product(*(permutations(block) for block in blocks)):
        sigma: Dict[ProcessId, ProcessId] = {}
        for block, image in zip(blocks, images):
            for source, target in zip(block, image):
                sigma[source] = target
        if any(source != target for source, target in sigma.items()):
            yield sigma


def _induced_register_permutation(
    sigma: Dict[ProcessId, ProcessId],
    perms: Dict[ProcessId, Tuple[int, ...]],
    size: int,
) -> Optional[Tuple[int, ...]]:
    """``pi^-1`` as a pull-back table, or None when no consistent ``pi``.

    ``pi`` is computed from one process as ``perm_sigma(p) o perm_p^-1``
    and verified against every other; the returned tuple maps each
    target physical slot to the source slot whose (renamed) value lands
    there.
    """
    first = next(iter(sigma))
    base = perms[first]
    image = perms[sigma[first]]
    pi = [0] * size
    for j in range(size):
        pi[base[j]] = image[j]
    for source, target in sigma.items():
        source_perm = perms[source]
        target_perm = perms[target]
        for j in range(size):
            if pi[source_perm[j]] != target_perm[j]:
                return None
    inverse = [0] * size
    for phys in range(size):
        inverse[pi[phys]] = phys
    return tuple(inverse)


def _induced_value_renaming(
    sigma: Dict[ProcessId, ProcessId], value_inputs: Dict[ProcessId, Any]
) -> Optional[Dict[Any, Any]]:
    """The value renaming ``nu`` forced by the inputs, or None if invalid."""
    renaming: Dict[Any, Any] = {}
    for source, target in sigma.items():
        source_value = value_inputs[source]
        target_value = value_inputs[target]
        if source_value is None and target_value is None:
            continue
        if source_value is None or target_value is None:
            return None
        if source_value in renaming:
            if renaming[source_value] != target_value:
                return None
        else:
            renaming[source_value] = target_value
    if len(set(renaming.values())) != len(renaming):
        return None
    return {
        source: target for source, target in renaming.items() if source != target
    }


def _admissible_elements(
    system: System,
    order: List[ProcessId],
    automata: List[ProcessAutomaton],
    owners: List[Optional[type]],
    max_group: int,
) -> Tuple[List[_GroupElement], bool]:
    """Enumerate the instance's non-identity symmetries (capped)."""
    cls = type(automata[0])
    if any(type(automaton) is not cls for automaton in automata):
        return [], False
    if not cls.SYMMETRIC:
        return [], False
    if any(owner is None for owner in owners):
        return [], False
    signatures = [automaton.symmetry_signature() for automaton in automata]
    if any(signature is None for signature in signatures):
        return [], False
    twin_keys: Dict[ProcessId, Any] = {}
    value_inputs: Dict[ProcessId, Any] = {}
    for pid, signature in zip(order, signatures):
        twin_key, value_input = signature
        twin_keys[pid] = twin_key
        value_inputs[pid] = value_input
    block_map: Dict[Any, List[ProcessId]] = {}
    for pid in order:
        block_map.setdefault(twin_keys[pid], []).append(pid)
    blocks = list(block_map.values())
    candidates = 1
    for block in blocks:
        candidates *= factorial(len(block))
        if candidates > max_group:
            return [], True
    memory = system.memory
    perms = {pid: memory.view(pid).permutation for pid in order}
    slot_of = {pid: slot for slot, pid in enumerate(order)}
    size = memory.size
    elements: List[_GroupElement] = []
    for sigma in _block_permutations(order, blocks):
        source_phys = _induced_register_permutation(sigma, perms, size)
        if source_phys is None:
            continue
        values_renamed = _induced_value_renaming(sigma, value_inputs)
        if values_renamed is None:
            continue
        inverse_sigma = {target: source for source, target in sigma.items()}
        source_slot = tuple(slot_of[inverse_sigma[pid]] for pid in order)
        pids_renamed = {
            source: target for source, target in sigma.items() if source != target
        }
        elements.append(
            _GroupElement(source_phys, source_slot, pids_renamed, values_renamed)
        )
    return elements, False


def build_canonicalizer(
    system: System,
    symmetry: bool = True,
    footprints: bool = True,
    max_group: int = 720,
) -> Canonicalizer:
    """The strongest sound canonicalizer for ``system``.

    Per process, footprint compression engages iff its automaton class
    has a trusted hook bundle (:func:`hook_owner`); the symmetry group is
    enumerated iff *every* automaton shares one trusted class and opts
    in via ``symmetry_signature``.  Anything less — mutants, mixed or
    asymmetric systems, ``None`` signatures — degrades that part to the
    identity, so the result is always sound for symmetric invariants and
    at worst a :class:`TrivialCanonicalizer`.

    ``max_group`` caps the *candidate* enumeration (the product of twin
    -block factorials); past it the group collapses to the identity and
    :attr:`Canonicalizer.group_capped` is set.
    """
    scheduler = system.scheduler
    order = sorted(scheduler.pids)
    automata = [scheduler.runtime(pid).automaton for pid in order]
    owners = [hook_owner(type(automaton)) for automaton in automata]
    identity: _RenameFn = _identity_rename
    footprint_fns: List[Optional[_FootprintFn]] = [
        automaton.state_footprint if (footprints and owner is not None) else None
        for automaton, owner in zip(automata, owners)
    ]
    rename_footprint_fns: List[_RenameFn] = [
        automaton.rename_state_footprint if owner is not None else identity
        for automaton, owner in zip(automata, owners)
    ]
    elements: List[_GroupElement] = []
    capped = False
    if symmetry and order:
        elements, capped = _admissible_elements(
            system, order, automata, owners, max_group
        )
    rename_value_fn: _RenameFn = (
        automata[0].rename_register_value if elements else identity
    )
    if not elements and not any(fn is not None for fn in footprint_fns):
        trivial = TrivialCanonicalizer(scheduler)
        trivial.group_capped = capped
        return trivial
    return Canonicalizer(
        scheduler,
        footprint_fns,
        rename_footprint_fns,
        rename_value_fn,
        elements,
        group_capped=capped,
    )
