"""Shared-memory open-addressing visited table for parallel exploration.

The work-stealing backend dedups states across OS processes through one
fixed-capacity hash set living in a ``multiprocessing.shared_memory``
segment: a power-of-two array of 8-byte slots, each holding the 64-bit
BLAKE2b digest of a canonical state key (the same 8-byte digest family
the canonicalizer already keys states with), probed linearly.

**Insert is CAS-free.**  CPython offers no cross-process compare-and-swap
on shared memory, so two workers racing on the same empty slot can both
observe it empty and both write — one write wins, both report "new", and
the loser's state is expanded twice.  That duplicate expansion is benign:
expansion is deterministic per state, the coordinator's canonical
post-order merge dedups the records by key, and the merged result is
bit-identical to the serial walk on complete runs.  An aligned 8-byte
store through a ``memoryview`` cast to ``'Q'`` is a single untorn store
on every platform CPython supports, so readers never observe a partial
digest.

**Overflow is honest.**  The table never grows.  When a probe run of
:data:`PROBE_LIMIT` consecutive occupied slots finds neither the digest
nor a free slot (long runs form well before the table is literally
full), :meth:`SharedVisitedTable.insert` raises
:class:`VisitedTableFull`; the backend aborts the run and reports
``truncated_by="visited_table_full"`` instead of silently dropping
states.

Digest value 0 is the empty-slot sentinel; a genuine all-zero digest is
remapped to 1.  That folds two of the 2⁶⁴ digest values together — the
same order of collision risk the 8-byte keys already carry.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Optional

__all__ = [
    "PROBE_LIMIT",
    "SEGMENT_PREFIX",
    "SharedVisitedTable",
    "VisitedTableFull",
    "table_capacity",
]

#: Consecutive occupied slots probed before declaring the table full.
PROBE_LIMIT = 512

#: Shared-memory segment name prefix; the SIGTERM-cleanup test greps
#: /dev/shm for it, so keep it stable.
SEGMENT_PREFIX = "repro_vt_"

#: Capacity ceiling: 2**24 slots = 128 MiB of shared memory.
_MAX_CAPACITY = 1 << 24

#: Capacity floor — small runs still want short probe runs.
_MIN_CAPACITY = 1 << 12


class VisitedTableFull(Exception):
    """The fixed-capacity visited table cannot accept another digest."""


def table_capacity(max_states: int) -> int:
    """Slot count for a run bounded by ``max_states`` visited states.

    At least 2x the budget (load factor <= 0.5 keeps linear-probe runs
    short), rounded up to a power of two, clamped to
    [2**12, 2**24].  A budget beyond the ceiling can genuinely fill the
    table; the run then truncates with ``visited_table_full`` rather
    than exceeding the memory envelope.
    """
    want = max(_MIN_CAPACITY, 2 * max(1, max_states))
    capacity = _MIN_CAPACITY
    while capacity < want and capacity < _MAX_CAPACITY:
        capacity <<= 1
    return capacity


class SharedVisitedTable:
    """Fixed-capacity shared-memory hash set of 64-bit digests.

    Create one segment in the coordinator with :meth:`create`, attach
    from each worker with :meth:`attach`, :meth:`close` everywhere, and
    :meth:`unlink` exactly once (the coordinator, in a ``finally``).
    """

    def __init__(
        self, shm: shared_memory.SharedMemory, capacity: int, owner: bool
    ) -> None:
        if capacity & (capacity - 1):
            raise ValueError(f"capacity must be a power of two, got {capacity}")
        self._shm = shm
        self._slots = memoryview(shm.buf)[: capacity * 8].cast("Q")
        self.capacity = capacity
        self._mask = capacity - 1
        self._owner = owner

    @classmethod
    def create(cls, capacity: int, name: str) -> "SharedVisitedTable":
        """Allocate a zero-filled segment called ``name``.

        Capacity is validated *before* the segment exists — a rejected
        capacity must not leak a fresh /dev/shm entry.
        """
        if capacity <= 0 or capacity & (capacity - 1):
            raise ValueError(f"capacity must be a power of two, got {capacity}")
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=capacity * 8
        )
        # Linux zero-fills fresh segments; make the invariant explicit
        # rather than platform-dependent.
        shm.buf[: capacity * 8] = bytes(capacity * 8)
        return cls(shm, capacity, owner=True)

    @classmethod
    def attach(cls, name: str, capacity: int) -> "SharedVisitedTable":
        """Attach to an existing segment (worker side).

        Attaching registers the segment with a resource tracker.  When
        this process has no tracker yet (``spawn``/``forkserver``
        workers), the attach starts one owned by *this* process, whose
        exit-time cleanup would unlink the segment out from under the
        coordinator — so the registration is immediately undone; the
        coordinator owns the segment's lifetime.  Under ``fork`` the
        tracker is shared with the coordinator and its single
        registration must be left alone (the coordinator unregisters
        via ``unlink``).
        """
        from multiprocessing import resource_tracker

        tracker = getattr(resource_tracker, "_resource_tracker", None)
        own_tracker = getattr(tracker, "_fd", None) is None
        shm = shared_memory.SharedMemory(name=name)
        if own_tracker:
            try:
                # register() recorded the raw ``_name`` (with the POSIX
                # leading slash), so unregister with the same spelling.
                resource_tracker.unregister(
                    getattr(shm, "_name", shm.name), "shared_memory"
                )
            except Exception:
                pass
        return cls(shm, capacity, owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    def insert(self, digest: int) -> bool:
        """Insert a 64-bit digest; True if it was (probably) new.

        "Probably": a concurrent racing insert of the same digest can
        make both callers see True — the benign-duplicate case the
        module docstring describes.  Raises :class:`VisitedTableFull`
        after :data:`PROBE_LIMIT` occupied probes.
        """
        if digest == 0:
            digest = 1
        slots = self._slots
        mask = self._mask
        index = digest & mask
        for _ in range(PROBE_LIMIT):
            current = slots[index]
            if current == digest:
                return False
            if current == 0:
                slots[index] = digest
                return True
            index = (index + 1) & mask
        raise VisitedTableFull(
            f"visited table exhausted a {PROBE_LIMIT}-slot probe run "
            f"(capacity {self.capacity})"
        )

    def __contains__(self, digest: int) -> bool:
        if digest == 0:
            digest = 1
        slots = self._slots
        mask = self._mask
        index = digest & mask
        for _ in range(PROBE_LIMIT):
            current = slots[index]
            if current == digest:
                return True
            if current == 0:
                return False
            index = (index + 1) & mask
        return False

    def close(self) -> None:
        """Release this process's mapping (both sides)."""
        self._release_view()
        try:
            self._shm.close()
        except Exception:
            pass

    def unlink(self) -> None:
        """Remove the segment from the OS (coordinator, exactly once)."""
        self._release_view()
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    def _release_view(self) -> None:
        view: Optional[memoryview] = getattr(self, "_slots", None)
        if view is not None:
            try:
                view.release()
            except Exception:
                pass
            self._slots = None  # type: ignore[assignment]
