"""Trace serialisation and replay.

Runs are the library's central evidence objects — violations ship with
the trace that exhibits them, experiments archive the runs behind their
tables.  This module round-trips traces through JSON:

* :func:`trace_to_dict` / :func:`trace_from_dict` — structural
  conversion, including operations and the record values of Figures 2/3;
* :func:`save_trace` / :func:`load_trace` — file convenience;
* :func:`schedule_of` + :func:`replay` — re-execute a trace's schedule
  on a freshly built system and verify the runs match event for event
  (the scheduler is deterministic given the schedule, so any divergence
  means the system was configured differently — replay doubles as a
  configuration check).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.memory.records import ConsensusRecord, RenamingRecord
from repro.runtime.adversary import FixedScheduleAdversary
from repro.runtime.events import Event, Trace
from repro.runtime.ops import (
    CritOp,
    EnterCritOp,
    ExitCritOp,
    NoOp,
    Operation,
    ReadOp,
    WriteOp,
)
from repro.runtime.system import System
from repro.types import ProcessId


def _value_to_json(value: Any) -> Any:
    """Encode a register value (plain, or a Figure 2/3 record)."""
    if isinstance(value, ConsensusRecord):
        return {"__record__": "consensus", "id": value.id, "val": value.val}
    if isinstance(value, RenamingRecord):
        return {
            "__record__": "renaming",
            "id": value.id,
            "val": value.val,
            "round": value.round,
            "history": sorted(value.history),
        }
    return value


def _value_from_json(value: Any) -> Any:
    """Inverse of :func:`_value_to_json`."""
    if isinstance(value, dict) and "__record__" in value:
        if value["__record__"] == "consensus":
            return ConsensusRecord(value["id"], value["val"])
        if value["__record__"] == "renaming":
            return RenamingRecord(
                value["id"],
                value["val"],
                value["round"],
                frozenset(tuple(pair) for pair in value["history"]),
            )
        raise ConfigurationError(f"unknown record kind {value['__record__']!r}")
    return value


_OP_NAMES = {
    ReadOp: "read",
    WriteOp: "write",
    EnterCritOp: "enter-cs",
    CritOp: "crit",
    ExitCritOp: "exit-cs",
    NoOp: "no-op",
}


def _op_to_json(op: Operation) -> Dict[str, Any]:
    data: Dict[str, Any] = {"kind": _OP_NAMES[type(op)]}
    if isinstance(op, ReadOp):
        data["index"] = op.index
    elif isinstance(op, WriteOp):
        data["index"] = op.index
        data["value"] = _value_to_json(op.value)
    return data


def _op_from_json(data: Dict[str, Any]) -> Operation:
    kind = data["kind"]
    if kind == "read":
        return ReadOp(data["index"])
    if kind == "write":
        return WriteOp(data["index"], _value_from_json(data["value"]))
    if kind == "enter-cs":
        return EnterCritOp()
    if kind == "crit":
        return CritOp()
    if kind == "exit-cs":
        return ExitCritOp()
    if kind == "no-op":
        return NoOp()
    raise ConfigurationError(f"unknown operation kind {kind!r}")


def trace_to_dict(trace: Trace) -> Dict[str, Any]:
    """Convert a trace to a JSON-serialisable dictionary."""
    return {
        "pids": list(trace.pids),
        "register_count": trace.register_count,
        "initial_values": [_value_to_json(v) for v in trace.initial_values],
        "naming": trace.naming_description,
        "events": [
            {
                "seq": e.seq,
                "pid": e.pid,
                "op": _op_to_json(e.op),
                "physical_index": e.physical_index,
                "result": _value_to_json(e.result),
                "phase": e.phase,
            }
            for e in trace.events
        ],
        "outputs": {str(pid): _value_to_json(v) for pid, v in trace.outputs.items()},
        "halt_seq": {str(pid): seq for pid, seq in trace.halt_seq.items()},
        "crash_seq": {str(pid): seq for pid, seq in trace.crash_seq.items()},
        "final_values": [_value_to_json(v) for v in trace.final_values],
        "stop_reason": trace.stop_reason,
    }


def trace_from_dict(data: Dict[str, Any]) -> Trace:
    """Inverse of :func:`trace_to_dict`."""
    trace = Trace(
        pids=tuple(data["pids"]),
        register_count=data["register_count"],
        initial_values=tuple(_value_from_json(v) for v in data["initial_values"]),
        naming_description=data["naming"],
    )
    for entry in data["events"]:
        trace.append(
            Event(
                seq=entry["seq"],
                pid=entry["pid"],
                op=_op_from_json(entry["op"]),
                physical_index=entry["physical_index"],
                result=_value_from_json(entry["result"]),
                phase=entry.get("phase"),
            )
        )
    trace.outputs = {
        int(pid): _value_from_json(v) for pid, v in data["outputs"].items()
    }
    trace.halt_seq = {int(pid): seq for pid, seq in data["halt_seq"].items()}
    trace.crash_seq = {int(pid): seq for pid, seq in data["crash_seq"].items()}
    trace.final_values = tuple(
        _value_from_json(v) for v in data["final_values"]
    )
    trace.stop_reason = data["stop_reason"]
    return trace


def save_trace(trace: Trace, path) -> None:
    """Write a trace to ``path`` as JSON."""
    with open(path, "w") as handle:
        json.dump(trace_to_dict(trace), handle, indent=1)


def load_trace(path) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    with open(path) as handle:
        return trace_from_dict(json.load(handle))


def schedule_of(trace: Trace) -> List[ProcessId]:
    """The schedule (pid sequence) that produced ``trace``."""
    return [event.pid for event in trace.events]


def replay_schedule(
    system: System,
    schedule: Sequence[ProcessId],
    max_steps: Optional[int] = None,
) -> Trace:
    """Execute a bare pid ``schedule`` on a freshly built ``system``.

    The counterpart of :func:`replay` for schedules that did not come
    with a recorded trace — in particular
    ``ExplorationResult.violation_schedule``, which the explorer reports
    relative to the system's initial state.  Returns the resulting trace
    (build ``system`` with ``record_trace=True`` to inspect it).
    """
    adversary = FixedScheduleAdversary(list(schedule))
    limit = len(schedule) + 1 if max_steps is None else max_steps
    return system.run(adversary, max_steps=limit)


def replay(trace: Trace, system: System, strict: bool = True) -> Trace:
    """Re-execute ``trace``'s schedule on a freshly built ``system``.

    With ``strict=True`` (default) every replayed event must match the
    original — same operation, same physical register, same result —
    otherwise :class:`ConfigurationError` is raised pointing at the
    first divergence.  A strict replay certifies that ``system`` is
    configured identically (same algorithm parameters, naming, inputs)
    to the one that produced the trace.
    """
    if set(system.pids) != set(trace.pids):
        raise ConfigurationError(
            f"replay system has processes {sorted(system.pids)}, trace has "
            f"{sorted(trace.pids)}"
        )
    adversary = FixedScheduleAdversary(schedule_of(trace))
    new_trace = system.run(adversary, max_steps=len(trace) + 1)
    if strict:
        for original, replayed in zip(trace.events, new_trace.events):
            if (
                original.op != replayed.op
                or original.physical_index != replayed.physical_index
                or original.result != replayed.result
            ):
                raise ConfigurationError(
                    "replay diverged at event "
                    f"{original.seq}:\n  original: {original}\n"
                    f"  replayed: {replayed}"
                )
        if len(new_trace.events) != len(trace.events):
            raise ConfigurationError(
                f"replay produced {len(new_trace.events)} events, original "
                f"had {len(trace.events)}"
            )
    return new_trace
