"""Real-thread backend: run automata under genuine OS preemption.

The deterministic scheduler is the source of truth for correctness (it
realises the model's adversary exactly), but the paper's algorithms are
meant for real concurrent systems.  This backend runs each process
automaton on its own :mod:`threading` thread against lock-guarded
registers, so reads and writes stay atomic while the interleaving comes
from the OS scheduler.

Caveats (documented up front because the repro band calls them out):

* CPython's GIL serialises bytecode execution, so thread interleavings are
  far less adversarial than the deterministic scheduler's — this backend
  is a realism demonstration, not a verification tool;
* mutual-exclusion automata run here with finite ``cs_visits`` so the run
  terminates;
* obstruction-free algorithms may in principle livelock under unlucky
  contention.  :class:`ThreadRunner` therefore takes a per-run timeout,
  and :func:`run_threaded_with_backoff` adds the standard practical
  remedy — randomised exponential backoff — which in practice always
  lets the Figure 2/3 algorithms terminate (and is an interesting system
  point in its own right: obstruction-freedom + backoff is the paper's
  [15] deployment story).
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.errors import ProtocolError
from repro.memory.naming import NamingAssignment
from repro.runtime.automaton import Algorithm
from repro.runtime.ops import ReadOp, WriteOp
from repro.runtime.system import System
from repro.types import ProcessId


@dataclass
class ThreadRunResult:
    """Outcome of one threaded execution."""

    #: Output per process that completed.
    outputs: Dict[ProcessId, Any] = field(default_factory=dict)
    #: Steps (atomic operations) each process performed.
    steps: Dict[ProcessId, int] = field(default_factory=dict)
    #: Processes that were still running when the timeout expired.
    timed_out: tuple = ()
    #: Exceptions raised inside process threads, keyed by pid.
    errors: Dict[ProcessId, BaseException] = field(default_factory=dict)
    #: Wall-clock duration of the run in seconds.
    duration: float = 0.0

    @property
    def ok(self) -> bool:
        """True when every process completed without error or timeout."""
        return not self.timed_out and not self.errors


class ThreadRunner:
    """Execute a :class:`~repro.runtime.system.System` on real threads.

    The system must have been built with ``locked=True`` so register
    accesses are indivisible under preemption.

    Parameters
    ----------
    max_steps:
        Per-process operation budget; exceeding it counts as a timeout
        (protects the test suite from livelock).
    backoff:
        When set, a process sleeps ``random.uniform(0, backoff * 2**k)``
        seconds after its k-th full pass without completing — contention
        management that turns obstruction-freedom into practical
        termination.
    """

    def __init__(
        self,
        system: System,
        max_steps: int = 2_000_000,
        backoff: Optional[float] = None,
        backoff_interval: int = 500,
        seed: int = 0,
    ):
        self.system = system
        self.max_steps = max_steps
        self.backoff = backoff
        self.backoff_interval = backoff_interval
        self.seed = seed

    def _worker(self, pid: ProcessId, result: ThreadRunResult, lock: threading.Lock):
        automaton = self.system.automata[pid]
        view = self.system.memory.view(pid)
        rng = random.Random(f"{self.seed}/{pid}")
        state = automaton.initial_state()
        steps = 0
        try:
            while not automaton.is_halted(state):
                if steps >= self.max_steps:
                    raise ProtocolError(
                        f"process {pid} exceeded {self.max_steps} steps"
                    )
                op = automaton.next_op(state)
                if isinstance(op, ReadOp):
                    op_result = view.read(op.index)
                elif isinstance(op, WriteOp):
                    view.write(op.index, op.value)
                    op_result = None
                else:
                    op_result = None
                state = automaton.apply(state, op, op_result)
                steps += 1
                if (
                    self.backoff is not None
                    and steps % self.backoff_interval == 0
                ):
                    exponent = min(steps // self.backoff_interval, 10)
                    time.sleep(rng.uniform(0, self.backoff * (2**exponent)))
            with lock:
                result.outputs[pid] = automaton.output(state)
                result.steps[pid] = steps
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            with lock:
                result.errors[pid] = exc
                result.steps[pid] = steps

    def run(self, timeout: float = 30.0) -> ThreadRunResult:
        """Start all process threads, join with ``timeout``, report."""
        result = ThreadRunResult()
        lock = threading.Lock()
        threads = {
            pid: threading.Thread(
                target=self._worker,
                args=(pid, result, lock),
                name=f"proc-{pid}",
                daemon=True,
            )
            for pid in self.system.pids
        }
        started = time.monotonic()
        for thread in threads.values():
            thread.start()
        deadline = started + timeout
        stragglers = []
        for pid, thread in threads.items():
            thread.join(max(0.0, deadline - time.monotonic()))
            if thread.is_alive():
                stragglers.append(pid)
        result.timed_out = tuple(stragglers)
        result.duration = time.monotonic() - started
        return result


def run_threaded(
    algorithm: Algorithm,
    inputs,
    naming: Optional[NamingAssignment] = None,
    timeout: float = 30.0,
    max_steps: int = 2_000_000,
    seed: int = 0,
) -> ThreadRunResult:
    """One-call threaded execution of an algorithm (no backoff)."""
    system = System(algorithm, inputs, naming=naming, locked=True, record_trace=False)
    return ThreadRunner(system, max_steps=max_steps, seed=seed).run(timeout=timeout)


def run_threaded_with_backoff(
    algorithm: Algorithm,
    inputs,
    naming: Optional[NamingAssignment] = None,
    timeout: float = 30.0,
    max_steps: int = 2_000_000,
    backoff: float = 0.0005,
    seed: int = 0,
) -> ThreadRunResult:
    """Threaded execution with randomised exponential backoff.

    The practical deployment mode for obstruction-free algorithms: under
    contention every process occasionally pauses, so someone eventually
    enjoys an uncontended stretch and the obstruction-freedom guarantee
    kicks in.
    """
    system = System(algorithm, inputs, naming=naming, locked=True, record_trace=False)
    runner = ThreadRunner(system, max_steps=max_steps, backoff=backoff, seed=seed)
    return runner.run(timeout=timeout)
