"""Table-compiled step kernel: packed states, integer transition tables.

The interpreted hot path costs, per event, a ``next_op`` call, an
``isinstance`` dispatch, an ``apply`` call, an ``is_halted`` call, and a
tuple rebuild over heterogeneous values.  For the shipped automata the
whole of that work is a pure function of *which local state the stepping
process is in* and *which register value it reads* — both drawn from
small finite sets.  This module hoists it to compile time:

1. :func:`compile_program` enumerates each slot's reachable local-state
   space and the closed register value domain ahead of time (an
   interleaved fixpoint: classifying a state can grow the value domain
   via its write, and growing the domain extends every read row), and
   collapses ``next_op`` / ``apply`` / ``is_halted`` into dense integer
   tables — ``kind[s][si]`` (LOCAL / READ / WRITE / HALTED / RAISE),
   ``arg[s][si]`` (physical register index), ``write_value[s][si]``,
   ``next_state[s][si]`` and per-read-state rows
   ``rows[s][si][value_index]``.

2. A :data:`PackedState` is a flat tuple of small integers — ``m``
   register value indices followed by one local-state index per slot —
   so successor expansion is integer indexing plus a tuple copy instead
   of attribute lookups and ``isinstance`` dispatch per step.

3. :class:`CompiledBackend` conforms to the
   :class:`~repro.runtime.backends.ExplorationBackend` protocol and
   mirrors :class:`~repro.runtime.backends.SerialBackend` statement for
   statement over packed states, including ``retain_graph`` recording
   whose :meth:`StateGraph.to_bytes` is byte-identical.

**Overflow to the interpreter.**  Compilation is best-effort, never
load-bearing for correctness:

* If a local-state space or value domain is unbounded (caps exceeded),
  a hook raises, or the instance's shape is unexpected, the backend
  falls back wholesale to ``SerialBackend`` — bit-identical by
  definition.  ``result.kernel`` stays ``"interpreted"`` in that case so
  callers can see which kernel actually ran.
* A transition whose ``next_op``/``apply``/``is_halted`` raised at
  compile time is marked :data:`OP_RAISE`; reaching it at runtime
  unpacks the state and re-executes the interpreted
  :func:`~repro.runtime.kernel.step_value`, reproducing the genuine
  exception (the automata are deterministic).
* Invariants are handled by *suspicion tables*: for the stock invariants
  a per-(slot, local-state) fact table decides suspicion with a few
  integer lookups, and only suspected states are unpacked and handed to
  the real invariant — so violation messages are byte-identical by
  construction.  Unknown invariants are evaluated on every state over an
  unpacked :class:`~repro.runtime.kernel.StateView` (slow but exact).
"""

from __future__ import annotations

import time
from array import array
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.telemetry import NULL_TELEMETRY, TelemetrySink
from repro.runtime.backends import ExplorationTask, Invariant, SerialBackend
from repro.runtime.canonical import TrivialCanonicalizer
from repro.runtime.exploration import ExplorationResult
from repro.runtime.kernel import GlobalState, StateView, StepInstance, step_value
from repro.runtime.ops import ReadOp, WriteOp
from repro.types import ProcessId

#: A packed global state: ``m`` register value indices followed by one
#: local-state index per slot, all small ints.  Injective over the
#: enumerated closure by construction (indices are interned by value
#: equality, exactly like the canonicalizer's digest intern).
PackedState = Tuple[int, ...]

# Transition kinds, one per local state per slot.
OP_LOCAL = 0  #: no memory effect; successor in ``next_state``
OP_READ = 1  #: successor row indexed by the read value's index
OP_WRITE = 2  #: writes ``write_value`` to ``arg``; successor in ``next_state``
OP_HALTED = 3  #: no transition; stepping it is a scheduling error
OP_RAISE = 4  #: compile-time poison — delegate to the interpreter

#: Poisoned read-row entry: this (state, value) transition raised at
#: compile time; delegate to the interpreter to reproduce the exception.
RAISE_ENTRY = -1


class CompileOverflow(Exception):
    """The instance exceeds the compiler's enumerable envelope.

    Raised when a local-state space or register value domain is (or
    appears) unbounded, a value is unhashable, or the instance's shape
    does not match the packed layout.  The backend responds by falling
    back to the interpreted ``SerialBackend``.
    """


class _Poison(Exception):
    """Internal: a hook raised while materialising a successor state."""


class CompiledProgram:
    """Dense transition tables for one :class:`StepInstance`.

    Instances are produced by :func:`compile_program`; all attributes
    are read-mostly plain lists/tuples so the backend's hot loop can
    hoist them into locals.
    """

    def __init__(
        self,
        instance: StepInstance,
        values: List[Any],
        value_index: Dict[Any, int],
        slots: Tuple[ProcessId, ...],
        autos: List[Any],
        states: List[List[Any]],
        state_index: List[Dict[Any, int]],
        halted: List[List[bool]],
        crashed: List[bool],
        kind: List[List[int]],
        arg: List[List[int]],
        write_value: List[List[int]],
        next_state: List[List[int]],
        rows: List[List[Optional[List[int]]]],
        initial_packed: PackedState,
    ) -> None:
        self.instance = instance
        self.values = values
        self.value_index = value_index
        self.slots = slots
        self.autos = autos
        self.states = states
        self.state_index = state_index
        self.halted = halted
        self.crashed = crashed
        self.kind = kind
        self.arg = arg
        self.write_value = write_value
        self.next_state = next_state
        self.rows = rows
        self.initial_packed = initial_packed
        self.m = len(initial_packed) - len(slots)
        #: (pid, slot, packed offset) in the instance's scheduling order.
        self.step_order: Tuple[Tuple[ProcessId, int, int], ...] = tuple(
            (pid, instance.slot_of[pid], self.m + instance.slot_of[pid])
            for pid in instance.pid_order
        )

    # -- conversions ---------------------------------------------------

    def pack(self, state: GlobalState) -> PackedState:
        """Pack a kernel value state; raises if outside the closure."""
        registers, locals_part = state
        return tuple(self.value_index[v] for v in registers) + tuple(
            self.state_index[s][entry[1]]
            for s, entry in enumerate(locals_part)
        )

    def unpack(self, packed: PackedState) -> GlobalState:
        """Rebuild the exact kernel value state a packed state denotes."""
        m = self.m
        registers = tuple(self.values[vi] for vi in packed[:m])
        locals_part = tuple(
            (
                pid,
                self.states[s][packed[m + s]],
                self.halted[s][packed[m + s]],
                self.crashed[s],
            )
            for s, pid in enumerate(self.slots)
        )
        return registers, locals_part

    # -- stepping ------------------------------------------------------

    def step_packed(self, packed: PackedState, slot: int) -> PackedState:
        """One step of ``slot``'s process on a packed state.

        Table-driven for LOCAL/READ/WRITE; overflow entries (poisoned
        reads, OP_RAISE, OP_HALTED) delegate to the interpreter, which
        reproduces the interpreted result or exception exactly.
        """
        off = self.m + slot
        si = packed[off]
        k = self.kind[slot][si]
        if k == OP_READ:
            row = self.rows[slot][si]
            assert row is not None
            nsi = row[packed[self.arg[slot][si]]]
            if nsi < 0:
                return self._interpret(packed, slot)
            return packed[:off] + (nsi,) + packed[off + 1 :]
        if k == OP_WRITE:
            phys = self.arg[slot][si]
            return (
                packed[:phys]
                + (self.write_value[slot][si],)
                + packed[phys + 1 : off]
                + (self.next_state[slot][si],)
                + packed[off + 1 :]
            )
        if k == OP_LOCAL:
            return packed[:off] + (self.next_state[slot][si],) + packed[off + 1 :]
        return self._interpret(packed, slot)

    def _interpret(self, packed: PackedState, slot: int) -> PackedState:
        """Overflow path: unpack, run the interpreted step, repack."""
        state = self.unpack(packed)
        child = step_value(self.instance, state, self.slots[slot])
        return self.pack(child)

    # -- batched expansion ---------------------------------------------

    def live_tables(self) -> List[List[bool]]:
        """``live[slot][si]`` ⟺ the slot can step from local state si
        (not halted, not crashed) — the enabled-pid predicate over
        packed components."""
        return [
            [not (self.crashed[s] or h) for h in self.halted[s]]
            for s in range(len(self.slots))
        ]

    def expand_batch(self, flat: Sequence[int]) -> Tuple["array", "array"]:
        """One-step successors of a flat batch of packed states.

        ``flat`` holds packed states back to back (``m + nslots`` ints
        each; an ``array('q')`` or any int sequence).  Returns
        ``(children, edges)``:

        * ``edges`` is a flat ``array('q')`` of ``(src, slot, inert)``
          triples — one per enabled slot of every batch state, in the
          instance's scheduling order within each state (so per-source
          edge order matches the serial walk's pid order).  ``src`` is
          the state's index within the batch; ``inert`` is 1 when the
          step is a single-step self-loop (child == state, which under
          the serial semantics costs exactly 2 events and retains a
          self-edge).
        * ``children`` is a flat ``array('q')`` holding one packed
          child per **non-inert** edge, in edge order (inert edges
          contribute no child row — the child is the source).

        A source with no edges is terminal (every slot halted or
        crashed).  Poisoned table entries delegate to the interpreter
        exactly like :meth:`step_packed`, so genuine hook exceptions
        propagate to the caller unchanged.
        """
        m = self.m
        nslots = len(self.slots)
        stride = m + nslots
        kind = self.kind
        arg = self.arg
        wval = self.write_value
        nxt = self.next_state
        rows = self.rows
        live = self.live_tables()
        step_order = self.step_order
        children = array("q")
        edges = array("q")
        for base in range(0, len(flat), stride):
            src = base // stride
            for _pid, s, off in step_order:
                si = flat[base + off]
                if not live[s][si]:
                    continue
                k = kind[s][si]
                if k == OP_READ:
                    row = rows[s][si]
                    assert row is not None
                    nsi = row[flat[base + arg[s][si]]]
                    if nsi >= 0:
                        if nsi == si:
                            edges.extend((src, s, 1))
                            continue
                        start = len(children)
                        children.extend(flat[base : base + stride])
                        children[start + off] = nsi
                        edges.extend((src, s, 0))
                        continue
                elif k == OP_WRITE:
                    phys = arg[s][si]
                    nsi = nxt[s][si]
                    if nsi == si and flat[base + phys] == wval[s][si]:
                        edges.extend((src, s, 1))
                        continue
                    start = len(children)
                    children.extend(flat[base : base + stride])
                    children[start + phys] = wval[s][si]
                    children[start + off] = nsi
                    edges.extend((src, s, 0))
                    continue
                elif k == OP_LOCAL:
                    nsi = nxt[s][si]
                    if nsi == si:
                        edges.extend((src, s, 1))
                        continue
                    start = len(children)
                    children.extend(flat[base : base + stride])
                    children[start + off] = nsi
                    edges.extend((src, s, 0))
                    continue
                # Poisoned entry (OP_RAISE, or a poisoned read row):
                # interpret, reproducing the genuine result/exception.
                state = tuple(flat[base : base + stride])
                child = self._interpret(state, s)
                if child == state:
                    edges.extend((src, s, 1))
                else:
                    children.extend(child)
                    edges.extend((src, s, 0))
        return children, edges


def compile_program(
    instance: StepInstance,
    initial: GlobalState,
    domain_hint: Sequence[Any] = (),
    max_local_states: int = 65536,
    max_domain: int = 4096,
) -> CompiledProgram:
    """Enumerate the closure of ``initial`` into a :class:`CompiledProgram`.

    Interleaved fixpoint: classify pending local states (which can grow
    the value domain through writes and spawn successor states through
    applies), then extend every read row to span the current domain
    (which can spawn further states), until both queues are dry.  At the
    fixpoint every read row covers the full closed domain, so no
    reachable runtime read can fall off a row — the :data:`RAISE_ENTRY`
    sentinel remains as a defensive overflow only for transitions whose
    hooks genuinely raised.

    ``domain_hint`` seeds the value domain (a
    :meth:`~repro.problems.spec.ProblemSpec.value_domain` declaration);
    a superset is harmless, a subset is completed by the fixpoint.

    Raises :class:`CompileOverflow` when the closure exceeds the caps or
    the instance's shape defeats packing; callers fall back to the
    interpreter.
    """
    registers, locals_part = initial
    m = len(registers)
    slots = tuple(entry[0] for entry in locals_part)
    for pid, slot in instance.slot_of.items():
        if slot >= len(slots) or slots[slot] != pid:
            raise CompileOverflow("slot layout does not match the instance")
    autos = [instance.automata[pid] for pid in slots]
    perms = [instance.permutations[pid] for pid in slots]
    crashed = [bool(entry[3]) for entry in locals_part]
    nslots = len(slots)

    values: List[Any] = []
    value_index: Dict[Any, int] = {}

    def intern_value(value: Any) -> int:
        try:
            vi = value_index.get(value)
        except TypeError as error:
            raise CompileOverflow(
                f"unhashable register value {value!r}"
            ) from error
        if vi is None:
            if len(values) >= max_domain:
                raise CompileOverflow(
                    f"register value domain exceeds {max_domain} values"
                )
            vi = len(values)
            value_index[value] = vi
            values.append(value)
        return vi

    for value in registers:
        intern_value(value)
    for value in domain_hint:
        intern_value(value)

    states: List[List[Any]] = [[] for _ in range(nslots)]
    state_index: List[Dict[Any, int]] = [{} for _ in range(nslots)]
    halted: List[List[bool]] = [[] for _ in range(nslots)]
    kind: List[List[int]] = [[] for _ in range(nslots)]
    arg: List[List[int]] = [[] for _ in range(nslots)]
    write_value: List[List[int]] = [[] for _ in range(nslots)]
    next_state: List[List[int]] = [[] for _ in range(nslots)]
    rows: List[List[Optional[List[int]]]] = [[] for _ in range(nslots)]
    pending: List[Tuple[int, int]] = []
    # (slot, si, the ReadOp) for every READ state, for row extension.
    read_sites: List[Tuple[int, int, Any]] = []

    def add_state(slot: int, local: Any) -> int:
        try:
            si = state_index[slot].get(local)
        except TypeError as error:
            raise CompileOverflow(
                f"unhashable local state for slot {slot}"
            ) from error
        if si is None:
            if len(states[slot]) >= max_local_states:
                raise CompileOverflow(
                    f"slot {slot} local-state space exceeds"
                    f" {max_local_states} states"
                )
            try:
                is_halted = bool(autos[slot].is_halted(local))
            except CompileOverflow:
                raise
            except Exception as error:
                raise _Poison from error
            si = len(states[slot])
            state_index[slot][local] = si
            states[slot].append(local)
            halted[slot].append(is_halted)
            kind[slot].append(OP_RAISE)
            arg[slot].append(0)
            write_value[slot].append(0)
            next_state[slot].append(0)
            rows[slot].append(None)
            pending.append((slot, si))
        return si

    initial_sis: List[int] = []
    for slot, entry in enumerate(locals_part):
        try:
            si = add_state(slot, entry[1])
        except _Poison as error:
            raise CompileOverflow(
                f"is_halted raised on slot {slot}'s initial state"
            ) from error
        if halted[slot][si] != bool(entry[2]):
            raise CompileOverflow(
                f"slot {slot}: initial halted flag disagrees with is_halted"
            )
        initial_sis.append(si)

    def classify(slot: int, si: int) -> None:
        local = states[slot][si]
        if halted[slot][si]:
            kind[slot][si] = OP_HALTED
            return
        auto = autos[slot]
        try:
            op = auto.next_op(local)
        except Exception:
            kind[slot][si] = OP_RAISE
            return
        if isinstance(op, ReadOp):
            # An out-of-range view index raises ProtocolError at
            # runtime; leave it to the interpreter to say so.
            if not 0 <= op.index < m:
                kind[slot][si] = OP_RAISE
                return
            kind[slot][si] = OP_READ
            arg[slot][si] = perms[slot][op.index]
            rows[slot][si] = []
            read_sites.append((slot, si, op))
            return
        if isinstance(op, WriteOp):
            if not 0 <= op.index < m:
                kind[slot][si] = OP_RAISE
                return
            vi = intern_value(op.value)
            try:
                nsi = add_state(slot, auto.apply(local, op, None))
            except (_Poison, CompileOverflow) as error:
                if isinstance(error, CompileOverflow):
                    raise
                kind[slot][si] = OP_RAISE
                return
            except Exception:
                kind[slot][si] = OP_RAISE
                return
            kind[slot][si] = OP_WRITE
            arg[slot][si] = perms[slot][op.index]
            write_value[slot][si] = vi
            next_state[slot][si] = nsi
            return
        # Any other operation: no memory effect, read result is None.
        try:
            nsi = add_state(slot, auto.apply(local, op, None))
        except (_Poison, CompileOverflow) as error:
            if isinstance(error, CompileOverflow):
                raise
            kind[slot][si] = OP_RAISE
            return
        except Exception:
            kind[slot][si] = OP_RAISE
            return
        kind[slot][si] = OP_LOCAL
        next_state[slot][si] = nsi

    while True:
        while pending:
            slot, si = pending.pop()
            classify(slot, si)
        progress = False
        for slot, si, op in read_sites:
            row = rows[slot][si]
            assert row is not None
            if len(row) == len(values):
                continue
            local = states[slot][si]
            auto = autos[slot]
            while len(row) < len(values):
                value = values[len(row)]
                try:
                    nsi = add_state(slot, auto.apply(local, op, value))
                except (_Poison, CompileOverflow) as error:
                    if isinstance(error, CompileOverflow):
                        raise
                    nsi = RAISE_ENTRY
                except Exception:
                    nsi = RAISE_ENTRY
                row.append(nsi)
            progress = True
        if not pending and not progress:
            break

    initial_packed = tuple(value_index[v] for v in registers) + tuple(
        initial_sis
    )
    return CompiledProgram(
        instance=instance,
        values=values,
        value_index=value_index,
        slots=slots,
        autos=autos,
        states=states,
        state_index=state_index,
        halted=halted,
        crashed=crashed,
        kind=kind,
        arg=arg,
        write_value=write_value,
        next_state=next_state,
        rows=rows,
        initial_packed=initial_packed,
    )


# -- invariant compilation ---------------------------------------------
#
# A *suspect function* maps a packed state to "might the invariant
# return non-None here?".  It must never report False on a state the
# interpreted invariant would flag (false negatives are unsound); a
# False positive merely costs one unpack + real-invariant call that
# returns None.  The fact tables below are exact on every enumerated
# state, so both directions hold; any hook failure during fact
# computation poisons the table and the checker degrades to evaluating
# the real invariant on every state (slow but trivially exact).

_SKIP = object()  # slot not decided (not halted, or output is None)


def _always_suspect(_packed: PackedState) -> bool:
    """Generic fallback: treat every state as suspect (evaluate the
    real invariant on all of them — slow but trivially exact)."""
    return True


def _output_facts(program: CompiledProgram) -> Optional[List[List[Any]]]:
    """Per (slot, si): the decided non-None output, else ``_SKIP``.

    Returns None (poison) if any ``output`` hook raises or any output
    is unhashable (the stock invariants build sets of them, so an
    unhashable output makes the *interpreted* invariant raise — the
    generic path reproduces that).
    """
    facts: List[List[Any]] = []
    for slot, auto in enumerate(program.autos):
        row: List[Any] = []
        for si, local in enumerate(program.states[slot]):
            if not program.halted[slot][si]:
                row.append(_SKIP)
                continue
            try:
                out = auto.output(local)
                hash(out)
            except Exception:
                return None
            row.append(_SKIP if out is None else out)
        facts.append(row)
    return facts


class _PairSuspect:
    """Two-slot boolean-AND suspect (mutex with n=2).

    Callable like any suspect function, but also exposes its per-slot
    fact tables so the unrolled two-process loop can inline the two
    subscripts instead of paying a function call per state: with 0/1
    facts, ``count > 1`` ⟺ both flags set.
    """

    __slots__ = ("tables", "m")

    def __init__(self, tables: List[List[int]], m: int) -> None:
        self.tables = tables
        self.m = m

    def __call__(self, packed: PackedState) -> bool:
        m = self.m
        return bool(self.tables[0][packed[m]] and self.tables[1][packed[m + 1]])


def _mutex_suspect(
    program: CompiledProgram,
) -> Optional[Callable[[PackedState], bool]]:
    """Suspect when ≥ 2 non-halted processes sit in the critical section."""
    tables: List[List[int]] = []
    for slot, auto in enumerate(program.autos):
        in_cs = getattr(auto, "in_critical_section", None)
        if in_cs is None:
            return None
        row: List[int] = []
        for si, local in enumerate(program.states[slot]):
            if program.halted[slot][si]:
                row.append(0)
            else:
                try:
                    row.append(1 if in_cs(local) else 0)
                except Exception:
                    return None
        tables.append(row)
    m = program.m
    if len(tables) == 2:
        return _PairSuspect(tables, m)
    offs = [(m + slot, row) for slot, row in enumerate(tables)]

    def suspect(packed: PackedState) -> bool:
        count = 0
        for off, row in offs:
            count += row[packed[off]]
        return count > 1

    return suspect


def _agreement_suspect(
    program: CompiledProgram,
) -> Optional[Callable[[PackedState], bool]]:
    """Suspect when two decided outputs are distinct (set semantics)."""
    facts = _output_facts(program)
    if facts is None:
        return None
    m = program.m
    offs = [(m + slot, row) for slot, row in enumerate(facts)]

    def suspect(packed: PackedState) -> bool:
        decided = [
            v for off, row in offs if (v := row[packed[off]]) is not _SKIP
        ]
        return len(decided) > 1 and len(set(decided)) > 1

    return suspect


def _validity_suspect(
    program: CompiledProgram,
) -> Optional[Callable[[PackedState], bool]]:
    """Suspect when a decided output is not one of the instance inputs."""
    try:
        legal = set(program.instance.inputs.values())
    except Exception:
        return None
    facts = _output_facts(program)
    if facts is None:
        return None
    tables: List[List[bool]] = []
    for row in facts:
        try:
            tables.append(
                [v is not _SKIP and v not in legal for v in row]
            )
        except Exception:
            return None
    m = program.m
    offs = [(m + slot, row) for slot, row in enumerate(tables)]

    def suspect(packed: PackedState) -> bool:
        return any(row[packed[off]] for off, row in offs)

    return suspect


def _unique_names_suspect(
    program: CompiledProgram,
) -> Optional[Callable[[PackedState], bool]]:
    """Suspect on duplicate names or a name outside ``1..n``."""
    facts = _output_facts(program)
    if facts is None:
        return None
    n = len(program.instance.inputs)
    bad: List[List[bool]] = []
    for row in facts:
        bad_row: List[bool] = []
        for v in row:
            if v is _SKIP:
                bad_row.append(False)
            else:
                try:
                    bad_row.append(not 1 <= v <= n)
                except Exception:
                    # Non-comparable name: the interpreted invariant's
                    # range check raises on such states — only the
                    # generic path reproduces that faithfully.
                    return None
        bad.append(bad_row)
    m = program.m
    offs = [
        (m + slot, facts[slot], bad[slot]) for slot in range(len(facts))
    ]

    def suspect(packed: PackedState) -> bool:
        names: List[Any] = []
        for off, row, bad_row in offs:
            si = packed[off]
            v = row[si]
            if v is _SKIP:
                continue
            if bad_row[si]:
                return True
            names.append(v)
        return len(names) > 1 and len(set(names)) != len(names)

    return suspect


def _compile_suspect(
    invariant: Invariant, program: CompiledProgram
) -> Optional[Callable[[PackedState], bool]]:
    """Suspect function for a known invariant, or None to go generic."""
    from repro.runtime import exploration as _exploration

    try:
        from repro.verify.runner import _no_invariant
    except ImportError:  # pragma: no cover - verify layer always ships
        _no_invariant = None
    if _no_invariant is not None and invariant is _no_invariant:
        return lambda packed: False
    if invariant is _exploration.mutual_exclusion_invariant:
        return _mutex_suspect(program)
    if invariant is _exploration.agreement_invariant:
        return _agreement_suspect(program)
    if invariant is _exploration.validity_invariant:
        return _validity_suspect(program)
    if invariant is _exploration.unique_names_invariant:
        return _unique_names_suspect(program)
    if isinstance(invariant, _exploration._ConjoinedInvariant):
        subs = [
            _compile_suspect(sub, program) for sub in invariant.invariants
        ]
        if any(sub is None for sub in subs):
            return None

        def conjoined(packed: PackedState) -> bool:
            for sub in subs:
                if sub(packed):  # type: ignore[misc]
                    return True
            return False

        return conjoined
    return None


def compile_checker(
    invariant: Invariant, program: CompiledProgram
) -> Callable[[PackedState], Optional[str]]:
    """Packed-state invariant checker, message-identical to ``invariant``.

    Suspected states (and, on the generic path, every state) are
    unpacked and handed to the real invariant over a ``StateView``, so
    the returned violation string — or raised exception — is exactly
    the interpreted one.
    """
    suspect = _compile_suspect(invariant, program)
    instance = program.instance
    unpack = program.unpack
    if suspect is None:

        def generic(packed: PackedState) -> Optional[str]:
            return invariant(StateView(instance, unpack(packed)))

        return generic

    def fast(packed: PackedState) -> Optional[str]:
        if suspect(packed):
            return invariant(StateView(instance, unpack(packed)))
        return None

    return fast


# -- the backend -------------------------------------------------------


def _unwind(link: Any) -> Tuple[ProcessId, ...]:
    path: List[ProcessId] = []
    while link:
        link, pid = link
        path.append(pid)
    return tuple(reversed(path))


class CompiledBackend:
    """Serial DFS over packed states; bit-identical to ``SerialBackend``.

    Compilation failures of any kind fall back to the interpreted
    backend wholesale, so ``run`` is total over every task the serial
    backend accepts.  ``result.kernel`` records which kernel actually
    ran ("compiled" only when the table-driven walk did the work).
    """

    name = "compiled"
    workers = 1
    progress_interval = 8192  # power of two, matches SerialBackend

    def __init__(
        self,
        domain_hint: Sequence[Any] = (),
        max_local_states: int = 65536,
        max_domain: int = 4096,
    ) -> None:
        self.domain_hint = tuple(domain_hint)
        self.max_local_states = max_local_states
        self.max_domain = max_domain

    def run(
        self,
        task: ExplorationTask,
        telemetry: TelemetrySink = NULL_TELEMETRY,
    ) -> ExplorationResult:
        trivial = isinstance(task.canonicalizer, TrivialCanonicalizer)
        if task.retain_graph and not trivial:
            # explore() rejects this combination; a hand-built task gets
            # the serial behaviour verbatim.
            return SerialBackend().run(task, telemetry=telemetry)
        try:
            program = compile_program(
                task.instance,
                task.initial,
                domain_hint=self.domain_hint,
                max_local_states=self.max_local_states,
                max_domain=self.max_domain,
            )
            suspect = _compile_suspect(task.invariant, program)
            if trivial:
                tables = (
                    task.canonicalizer.packed_digest_tables(
                        program.values,
                        program.states,
                        program.halted,
                        program.crashed,
                    )
                    if task.retain_graph
                    else None
                )
            else:
                tables = task.canonicalizer.packed_digest_tables(
                    program.values,
                    program.states,
                    program.halted,
                    program.crashed,
                )
        except Exception:
            return SerialBackend().run(task, telemetry=telemetry)
        invariant = task.invariant
        instance = task.instance
        unpack = program.unpack

        def slow(packed: PackedState) -> Optional[str]:
            return invariant(StateView(instance, unpack(packed)))

        if suspect is None:
            # Unknown invariant: evaluate it on every state.
            suspect = _always_suspect
        if trivial:
            if len(program.slots) == 2 and not task.retain_graph:
                result = self._run_trivial_two(
                    task, program, suspect, slow, telemetry
                )
            else:
                result = self._run_trivial(
                    task, program, suspect, slow, tables, telemetry
                )
        else:
            result = self._run_general(
                task, program, suspect, slow, tables, telemetry
            )
        result.kernel = "compiled"
        return result

    # The two walks below mirror SerialBackend.run statement for
    # statement; every counter update, telemetry emission, budget check
    # and recorder call happens at the same point in the same order.
    # Deviations are all of the form "equivalent predicate over packed
    # states" and are individually justified in comments.

    def _run_trivial_two(
        self,
        task: ExplorationTask,
        program: CompiledProgram,
        suspect: Callable[[PackedState], bool],
        slow: Callable[[PackedState], Optional[str]],
        telemetry: TelemetrySink,
    ) -> ExplorationResult:
        """The two-process trivial walk with the per-pid loop unrolled.

        Semantically the n=2 instantiation of :meth:`_run_trivial`
        without a recorder — every check happens at the same point in
        the same order — but with the expansion list, tuple unpacking
        and double subscripts flattened into straight-line code.  All
        shipped verify/bench instances are two-process, so this is the
        throughput-critical loop.
        """
        max_states = task.max_states
        max_depth = task.max_depth
        emit = telemetry.enabled
        progress_mask = self.progress_interval - 1
        step_packed = program.step_packed

        (pid_a, s_a, off_a), (pid_b, s_b, off_b) = program.step_order
        live_a = [
            not (program.crashed[s_a] or h) for h in program.halted[s_a]
        ]
        live_b = [
            not (program.crashed[s_b] or h) for h in program.halted[s_b]
        ]
        kind_a, kind_b = program.kind[s_a], program.kind[s_b]
        arg_a, arg_b = program.arg[s_a], program.arg[s_b]
        wval_a, wval_b = program.write_value[s_a], program.write_value[s_b]
        nxt_a, nxt_b = program.next_state[s_a], program.next_state[s_b]
        rows_a, rows_b = program.rows[s_a], program.rows[s_b]
        # A _PairSuspect's table lookups inline into the loop; any other
        # suspect is called.
        cs_a = cs_b = None
        if isinstance(suspect, _PairSuspect):
            cs_a = suspect.tables[s_a]
            cs_b = suspect.tables[s_b]

        initial = program.initial_packed
        visited = {initial}
        stack: List[Tuple[PackedState, int, Any]] = [(initial, 0, None)]
        result = ExplorationResult(
            complete=True,
            states_explored=0,
            events_executed=0,
            max_depth_reached=0,
            group_size=task.canonicalizer.group_order,
        )
        states_explored = 0
        events_executed = 0
        max_depth_reached = 0
        started = time.perf_counter()

        while stack:
            state, depth, link = stack.pop()
            states_explored += 1
            if depth > max_depth_reached:
                max_depth_reached = depth
            if emit and not (states_explored & progress_mask):
                telemetry.gauge("explore.visited", len(visited))
                telemetry.gauge("explore.frontier", len(stack))
                telemetry.event(
                    "explore.progress",
                    states=states_explored,
                    frontier=len(stack),
                    visited=len(visited),
                    orbit_hits=result.orbits_collapsed,
                    depth=depth,
                )
            si_a = state[off_a]
            si_b = state[off_b]
            if (
                (cs_a[si_a] and cs_b[si_b])
                if cs_a is not None
                else suspect(state)
            ):
                violation = slow(state)
                if violation is not None:
                    result.violation = violation
                    result.violation_schedule = _unwind(link)
                    result.truncated_by = "violation"
                    break
            enabled_a = live_a[si_a]
            enabled_b = live_b[si_b]
            if not (enabled_a or enabled_b):
                # All settled (see _run_trivial); stuck never ticks.
                continue
            if depth >= max_depth:
                result.truncated_by = "max_depth"
                continue
            # Per pid: child is None ⟺ the step is inert (child ==
            # state) — decidable from table indices alone (packing is
            # injective), so inert steps never build a child tuple.
            if enabled_a:
                child = None
                k = kind_a[si_a]
                if k == OP_READ:
                    nsi = rows_a[si_a][state[arg_a[si_a]]]
                    if nsi >= 0:
                        if nsi != si_a:
                            child = (
                                state[:off_a] + (nsi,) + state[off_a + 1 :]
                            )
                    else:
                        child = step_packed(state, s_a)
                        if child == state:
                            child = None
                elif k == OP_WRITE:
                    phys = arg_a[si_a]
                    nsi = nxt_a[si_a]
                    if nsi != si_a or state[phys] != wval_a[si_a]:
                        child = (
                            state[:phys]
                            + (wval_a[si_a],)
                            + state[phys + 1 : off_a]
                            + (nsi,)
                            + state[off_a + 1 :]
                        )
                elif k == OP_LOCAL:
                    nsi = nxt_a[si_a]
                    if nsi != si_a:
                        child = (
                            state[:off_a] + (nsi,) + state[off_a + 1 :]
                        )
                else:
                    child = step_packed(state, s_a)
                    if child == state:
                        child = None
                if child is None:
                    events_executed += 2
                elif child in visited:
                    events_executed += 1
                else:
                    events_executed += 1
                    if len(visited) >= max_states:
                        result.truncated_by = "max_states"
                        break
                    visited.add(child)
                    stack.append((child, depth + 1, (link, pid_a)))
            if enabled_b:
                child = None
                k = kind_b[si_b]
                if k == OP_READ:
                    nsi = rows_b[si_b][state[arg_b[si_b]]]
                    if nsi >= 0:
                        if nsi != si_b:
                            child = (
                                state[:off_b] + (nsi,) + state[off_b + 1 :]
                            )
                    else:
                        child = step_packed(state, s_b)
                        if child == state:
                            child = None
                elif k == OP_WRITE:
                    phys = arg_b[si_b]
                    nsi = nxt_b[si_b]
                    if nsi != si_b or state[phys] != wval_b[si_b]:
                        child = (
                            state[:phys]
                            + (wval_b[si_b],)
                            + state[phys + 1 : off_b]
                            + (nsi,)
                            + state[off_b + 1 :]
                        )
                elif k == OP_LOCAL:
                    nsi = nxt_b[si_b]
                    if nsi != si_b:
                        child = (
                            state[:off_b] + (nsi,) + state[off_b + 1 :]
                        )
                else:
                    child = step_packed(state, s_b)
                    if child == state:
                        child = None
                if child is None:
                    events_executed += 2
                elif child in visited:
                    events_executed += 1
                else:
                    events_executed += 1
                    if len(visited) >= max_states:
                        result.truncated_by = "max_states"
                        break
                    visited.add(child)
                    stack.append((child, depth + 1, (link, pid_b)))

        result.states_explored = states_explored
        result.events_executed = events_executed
        result.max_depth_reached = max_depth_reached
        result.complete = result.truncated_by is None
        result.wall_seconds = time.perf_counter() - started
        result.peak_visited = len(visited)
        if emit:
            telemetry.gauge("explore.visited", len(visited))
            telemetry.gauge("explore.frontier", len(stack))
            telemetry.count("explore.events", result.events_executed)
            telemetry.count("explore.orbit_hits", result.orbits_collapsed)
        return result

    def _run_trivial(
        self,
        task: ExplorationTask,
        program: CompiledProgram,
        suspect: Callable[[PackedState], bool],
        slow: Callable[[PackedState], Optional[str]],
        tables: Any,
        telemetry: TelemetrySink,
    ) -> ExplorationResult:
        max_states = task.max_states
        max_depth = task.max_depth
        emit = telemetry.enabled
        progress_mask = self.progress_interval - 1

        m = program.m
        halted = program.halted
        crashed = program.crashed
        step_packed = program.step_packed
        nslots = len(program.slots)
        # One bundle per pid in scheduling order: every per-slot table
        # the expansion needs, pre-indexed so the hot loop does single
        # subscripts only.  live[s][si] ⟺ the slot can step.
        live = [
            [not (crashed[s] or h) for h in halted[s]]
            for s in range(nslots)
        ]
        step_tabs = tuple(
            (
                pid,
                s,
                off,
                live[s],
                program.kind[s],
                program.arg[s],
                program.write_value[s],
                program.next_state[s],
                program.rows[s],
            )
            for pid, s, off in program.step_order
        )

        recorder = None
        state_raw = b""
        raw_cache: Dict[PackedState, bytes] = {}

        def raw_of(packed: PackedState) -> bytes:
            raw = raw_cache.get(packed)
            if raw is None:
                parts = [value_raw[packed[i]] for i in range(m)]
                for s in range(nslots):
                    parts.append(slot_raw[s][packed[m + s]])
                raw = b"".join(parts)
                raw_cache[packed] = raw
            return raw

        initial = program.initial_packed
        if task.retain_graph:
            from repro.verify.graph import GraphRecorder

            value_raw = tables.value_raw
            slot_raw = tables.slot_raw
            recorder = GraphRecorder(raw_of(initial), task.initial)

        # Under the trivial canonicalizer a raw key is the content
        # digest of the concrete state, so raw equality is state
        # equality — packed tuples (injective over the closure) are an
        # equivalent, cheaper dedup key.
        visited = {initial}
        stack: List[Tuple[PackedState, int, Any]] = [(initial, 0, None)]
        result = ExplorationResult(
            complete=True,
            states_explored=0,
            events_executed=0,
            max_depth_reached=0,
            group_size=task.canonicalizer.group_order,
        )
        states_explored = 0
        events_executed = 0
        max_depth_reached = 0
        started = time.perf_counter()

        while stack:
            state, depth, link = stack.pop()
            states_explored += 1
            if depth > max_depth_reached:
                max_depth_reached = depth
            if emit and not (states_explored & progress_mask):
                telemetry.gauge("explore.visited", len(visited))
                telemetry.gauge("explore.frontier", len(stack))
                telemetry.event(
                    "explore.progress",
                    states=states_explored,
                    frontier=len(stack),
                    visited=len(visited),
                    orbit_hits=result.orbits_collapsed,
                    depth=depth,
                )
            if suspect(state):
                violation = slow(state)
                if violation is not None:
                    result.violation = violation
                    result.violation_schedule = _unwind(link)
                    result.truncated_by = "violation"
                    break
            expand = [t for t in step_tabs if t[3][state[t[2]]]]
            if not expand:
                # No enabled pid ⟺ every slot halted or crashed ⟺
                # all_settled, so the serial stuck counter can never
                # tick here.
                if recorder is not None:
                    recorder.mark_expanded(raw_of(state))
                continue
            if depth >= max_depth:
                result.truncated_by = "max_depth"
                continue
            if recorder is not None:
                state_raw = raw_of(state)
                recorder.mark_expanded(state_raw)
            budget_exhausted = False
            for (
                pid,
                s,
                off,
                _live_row,
                kind_row,
                arg_row,
                wval_row,
                nxt_row,
                rows_row,
            ) in expand:
                si = state[off]
                k = kind_row[si]
                if k == OP_READ:
                    nsi = rows_row[si][state[arg_row[si]]]
                    child = (
                        state[:off] + (nsi,) + state[off + 1 :]
                        if nsi >= 0
                        else step_packed(state, s)
                    )
                elif k == OP_WRITE:
                    phys = arg_row[si]
                    child = (
                        state[:phys]
                        + (wval_row[si],)
                        + state[phys + 1 : off]
                        + (nxt_row[si],)
                        + state[off + 1 :]
                    )
                elif k == OP_LOCAL:
                    child = state[:off] + (nxt_row[si],) + state[off + 1 :]
                else:
                    child = step_packed(state, s)
                if child == state:
                    # Inert self-loop.  Serial steps once (1 event),
                    # enters the acceleration loop, steps once more (a
                    # deterministic repeat), sees the local repeat and
                    # gives up: exactly 2 events, then a self-edge.
                    events_executed += 2
                    if recorder is not None:
                        recorder.add_edge(state_raw, pid, state_raw)
                    continue
                events_executed += 1
                if recorder is not None:
                    child_raw = raw_of(child)
                    recorder.add_edge(state_raw, pid, child_raw)
                    if child_raw not in recorder.nodes:
                        recorder.add_node(child_raw, program.unpack(child))
                if child in visited:
                    continue
                if len(visited) >= max_states:
                    result.truncated_by = "max_states"
                    budget_exhausted = True
                    break
                visited.add(child)
                stack.append((child, depth + 1, (link, pid)))
            if budget_exhausted:
                break

        result.states_explored = states_explored
        result.events_executed = events_executed
        result.max_depth_reached = max_depth_reached
        result.complete = result.truncated_by is None
        result.wall_seconds = time.perf_counter() - started
        result.peak_visited = len(visited)
        if recorder is not None:
            result.graph = recorder.finish(result.complete)
        if emit:
            telemetry.gauge("explore.visited", len(visited))
            telemetry.gauge("explore.frontier", len(stack))
            telemetry.count("explore.events", result.events_executed)
            telemetry.count("explore.orbit_hits", result.orbits_collapsed)
        return result

    def _run_general(
        self,
        task: ExplorationTask,
        program: CompiledProgram,
        suspect: Callable[[PackedState], bool],
        slow: Callable[[PackedState], Optional[str]],
        tables: Any,
        telemetry: TelemetrySink,
    ) -> ExplorationResult:
        canonicalizer = task.canonicalizer
        max_states = task.max_states
        max_depth = task.max_depth
        emit = telemetry.enabled
        progress_mask = self.progress_interval - 1

        m = program.m
        halted = program.halted
        crashed = program.crashed
        step_packed = program.step_packed
        nslots = len(program.slots)
        live = [
            [not (crashed[s] or h) for h in halted[s]]
            for s in range(nslots)
        ]
        step_tabs = tuple(
            (
                pid,
                s,
                off,
                live[s],
                program.kind[s],
                program.arg[s],
                program.write_value[s],
                program.next_state[s],
                program.rows[s],
            )
            for pid, s, off in program.step_order
        )

        value_raw = tables.value_raw
        slot_raw = tables.slot_raw
        candidates = tables.candidates

        def key_of(packed: PackedState) -> Tuple[bytes, bytes]:
            """``canonicalizer.key_of_state`` over a packed state.

            Byte-identical by construction: every digest in the tables
            went through the canonicalizer's own intern/digest path.
            """
            parts = [value_raw[packed[i]] for i in range(m)]
            for s in range(nslots):
                parts.append(slot_raw[s][packed[m + s]])
            raw = b"".join(parts)
            if not candidates:
                return raw, raw
            best = raw
            for cand in candidates:
                cparts = [
                    cand.value_digest[packed[phys]]
                    for phys in cand.source_phys
                ]
                for s in cand.source_slot:
                    cparts.append(cand.slot_digest[s][packed[m + s]])
                joined = b"".join(cparts)
                if joined < best:
                    best = joined
            return best, raw

        initial = program.initial_packed
        initial_key, initial_raw = key_of(initial)
        visited: Dict[bytes, bytes] = {initial_key: initial_raw}
        stack: List[Tuple[PackedState, int, Any, bytes]] = [
            (initial, 0, None, initial_raw)
        ]
        result = ExplorationResult(
            complete=True,
            states_explored=0,
            events_executed=0,
            max_depth_reached=0,
            group_size=canonicalizer.group_order,
        )
        states_explored = 0
        events_executed = 0
        max_depth_reached = 0
        orbits_collapsed = 0
        started = time.perf_counter()

        while stack:
            state, depth, link, state_raw = stack.pop()
            states_explored += 1
            if depth > max_depth_reached:
                max_depth_reached = depth
            if emit and not (states_explored & progress_mask):
                telemetry.gauge("explore.visited", len(visited))
                telemetry.gauge("explore.frontier", len(stack))
                telemetry.event(
                    "explore.progress",
                    states=states_explored,
                    frontier=len(stack),
                    visited=len(visited),
                    orbit_hits=orbits_collapsed,
                    depth=depth,
                )
            if suspect(state):
                violation = slow(state)
                if violation is not None:
                    result.violation = violation
                    result.violation_schedule = _unwind(link)
                    result.truncated_by = "violation"
                    break
            expand = [t for t in step_tabs if t[3][state[t[2]]]]
            if not expand:
                # No enabled pid ⟺ all_settled: stuck never ticks.
                continue
            if depth >= max_depth:
                result.truncated_by = "max_depth"
                continue
            budget_exhausted = False
            for (
                pid,
                s,
                off,
                _live_row,
                kind_row,
                arg_row,
                wval_row,
                nxt_row,
                rows_row,
            ) in expand:
                si = state[off]
                k = kind_row[si]
                if k == OP_READ:
                    nsi = rows_row[si][state[arg_row[si]]]
                    child = (
                        state[:off] + (nsi,) + state[off + 1 :]
                        if nsi >= 0
                        else step_packed(state, s)
                    )
                elif k == OP_WRITE:
                    phys = arg_row[si]
                    child = (
                        state[:phys]
                        + (wval_row[si],)
                        + state[phys + 1 : off]
                        + (nxt_row[si],)
                        + state[off + 1 :]
                    )
                elif k == OP_LOCAL:
                    child = state[:off] + (nxt_row[si],) + state[off + 1 :]
                else:
                    child = step_packed(state, s)
                events_executed += 1
                key, raw = key_of(child)
                step_link = (link, pid)
                if raw == state_raw:
                    # Inert acceleration, exactly as serial: keep
                    # stepping this pid while it stays inert, watching
                    # its local state (⟺ its packed index — interning
                    # is by value equality) for a repeat.
                    seen_locals = {child[off]}
                    while raw == state_raw and not (
                        halted[s][child[off]] or crashed[s]
                    ):
                        child = step_packed(child, s)
                        events_executed += 1
                        step_link = (step_link, pid)
                        key, raw = key_of(child)
                        local = child[off]
                        if raw == state_raw:
                            if local in seen_locals:
                                break
                            seen_locals.add(local)
                    if raw == state_raw:
                        continue
                claimed = visited.get(key)
                if claimed is not None:
                    if claimed != raw:
                        orbits_collapsed += 1
                    continue
                if len(visited) >= max_states:
                    result.truncated_by = "max_states"
                    budget_exhausted = True
                    break
                visited[key] = raw
                stack.append((child, depth + 1, step_link, raw))
            if budget_exhausted:
                break

        result.states_explored = states_explored
        result.events_executed = events_executed
        result.max_depth_reached = max_depth_reached
        result.orbits_collapsed = orbits_collapsed
        result.complete = result.truncated_by is None
        result.wall_seconds = time.perf_counter() - started
        result.peak_visited = len(visited)
        if emit:
            telemetry.gauge("explore.visited", len(visited))
            telemetry.gauge("explore.frontier", len(stack))
            telemetry.count("explore.events", result.events_executed)
            telemetry.count("explore.orbit_hits", result.orbits_collapsed)
        return result
