"""Command-line entry point: ``python -m repro``.

Subcommands:

* ``demo``        — run the three algorithms once and print what happened
                    (default when no subcommand is given);
* ``verify``      — exhaustively model-check the small instances
                    (Figure 1 m=3, Figure 2 n=2, Figure 3 n=2);
* ``attack``      — run the Theorem 3.4 symmetry attack on Figure 1 with
                    an even register count and show the provable livelock;
* ``lint``        — static analysis + runtime audits of the model rules
                    (symmetry, anonymity, atomicity, pc annotations);
* ``experiments`` — regenerate the paper-claim experiment tables (E1-E14
                    of the E1-E17 index in DESIGN.md; the E15-E17
                    extension tables run via ``pytest benchmarks/
                    --benchmark-only``; slower);
* ``report``      — validate and summarise run manifests written by the
                    telemetry subsystem (``repro.obs``).
"""

from __future__ import annotations

import argparse
import sys


def cmd_demo() -> int:
    from repro import (
        AnonymousConsensus,
        AnonymousMutex,
        AnonymousRenaming,
        RandomNaming,
        System,
    )
    from repro.runtime import RandomAdversary, StagedObstructionAdversary

    print("Figure 1 — two-process mutual exclusion, 3 anonymous registers")
    system = System(AnonymousMutex(m=3, cs_visits=2), [11, 13], naming=RandomNaming(1))
    trace = system.run(RandomAdversary(1), max_steps=100_000)
    print(f"  {trace.critical_section_entries()} serialized CS entries "
          f"in {len(trace)} steps\n")

    print("Figure 2 — three-process consensus, 5 anonymous registers")
    system = System(
        AnonymousConsensus(n=3), {11: "a", 13: "b", 17: "c"}, naming=RandomNaming(2)
    )
    trace = system.run(StagedObstructionAdversary(prefix_steps=50, seed=2), max_steps=200_000)
    print(f"  decisions: {trace.outputs}\n")

    print("Figure 3 — four-process perfect renaming, 7 anonymous registers")
    system = System(AnonymousRenaming(n=4), [11, 13, 17, 19], naming=RandomNaming(3))
    trace = system.run(StagedObstructionAdversary(prefix_steps=80, seed=3), max_steps=500_000)
    print(f"  new names: {trace.outputs}")
    return 0


def cmd_verify() -> int:
    from repro import AnonymousConsensus, AnonymousMutex, AnonymousRenaming, System, explore
    from repro.runtime.exploration import (
        agreement_invariant,
        conjoin,
        mutual_exclusion_invariant,
        unique_names_invariant,
        validity_invariant,
    )

    checks = [
        (
            "Figure 1 (m=3, 2 processes): mutual exclusion",
            System(AnonymousMutex(m=3), [11, 13], record_trace=False),
            mutual_exclusion_invariant,
        ),
        (
            "Figure 2 (n=2): agreement + validity",
            System(AnonymousConsensus(n=2), {11: "a", 13: "b"}, record_trace=False),
            conjoin(agreement_invariant, validity_invariant),
        ),
        (
            "Figure 3 (n=2): unique names",
            System(AnonymousRenaming(n=2), [11, 13], record_trace=False),
            unique_names_invariant,
        ),
    ]
    failed = 0
    for label, system, invariant in checks:
        result = explore(system, invariant, max_states=1_000_000)
        status = "OK " if (result.complete and result.ok) else "FAIL"
        if status == "FAIL":
            failed += 1
        print(f"[{status}] {label}: {result.summary()}")
    return 1 if failed else 0


def cmd_attack() -> int:
    from repro.core.mutex import AnonymousMutex
    from repro.lowerbounds.symmetry import run_symmetry_attack

    for m in (2, 4, 6):
        result = run_symmetry_attack(
            AnonymousMutex(m=m, unsafe_allow_any_m=True), [11, 13]
        )
        print(f"m={m}: {result.summary()}")
        if not result.violated:
            return 1
    print("even register counts are impossible, exactly as Theorem 3.1 says")
    return 0


def cmd_lint(rest=()) -> int:
    from repro.lint.cli import main as lint_main

    return lint_main(list(rest))


def cmd_report(rest=()) -> int:
    from repro.obs.report import report_main

    return report_main(list(rest))


def cmd_experiments() -> int:
    import importlib.util
    from pathlib import Path

    script = Path(__file__).resolve().parents[2] / "benchmarks" / "run_experiments.py"
    if not script.exists():
        print(
            "benchmarks/run_experiments.py not found (installed without the "
            "repository checkout); clone the repo to run the full tables",
            file=sys.stderr,
        )
        return 2
    spec = importlib.util.spec_from_file_location("run_experiments", script)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Coordination Without Prior Agreement — reproduction CLI",
    )
    parser.add_argument(
        "command",
        nargs="?",
        default="demo",
        choices=["demo", "verify", "attack", "lint", "experiments", "report"],
        help="demo (default) | verify | attack | lint | "
             "experiments (tables E1-E14 of the E1-E17 index; E15-E17 "
             "run via pytest benchmarks/) | "
             "report <manifest-or-dir> (summarise repro.obs run manifests)",
    )
    args, rest = parser.parse_known_args(argv)
    if args.command == "lint":
        # Forward the remaining flags (e.g. --skip-races) to the lint CLI.
        return cmd_lint(rest)
    if args.command == "report":
        # Forward the manifest path / flags to the report CLI.
        return cmd_report(rest)
    if rest:
        parser.error(f"unrecognized arguments: {' '.join(rest)}")
    return {
        "demo": cmd_demo,
        "verify": cmd_verify,
        "attack": cmd_attack,
        "experiments": cmd_experiments,
    }[args.command]()


if __name__ == "__main__":
    raise SystemExit(main())
