"""Command-line entry point: ``python -m repro``.

Subcommands (every key of ``COMMANDS`` below appears here; pinned by
``tests/test_docs.py``):

* ``demo``        — run the three algorithms once and print what happened
                    (default when no subcommand is given);
* ``verify``      — exhaustively verify the problem registry's declared
                    safety invariants *and* liveness theorems
                    (deadlock-freedom, obstruction-freedom) over retained
                    state graphs, mutant counterexamples included
                    (``--list``, ``--problem``, ``--instance``,
                    ``--backend``, ``--kernel``, ``--telemetry``);
* ``attack``      — run the Theorem 3.4 symmetry attack on Figure 1 with
                    an even register count and show the provable livelock;
* ``lint``        — dataflow-IR static analysis + runtime audits of the
                    model rules (pid-taint symmetry, register footprints,
                    bounded domains, anonymity, atomicity, pc
                    annotations), with ``--format sarif``/``--strict``
                    for CI gating;
* ``sweep``       — run a naming × adversary grid as a resumable,
                    disk-backed farm (``--out DIR`` persists a sqlite
                    run table that ``--resume DIR`` picks up exactly
                    where a killed sweep stopped; ``--workers N`` drains
                    it with N claiming processes; ``--max-attempts N``
                    retries transiently failed cells; ``--retain-graph``
                    adds an exhaustive verify cell whose StateGraph
                    lands in the farm's mmap disk store);
* ``fuzz``        — seeded adversary-strategy fuzzing of registry
                    instances (``repro.fuzz``): strategy families
                    (lockstep, random, greedy, covering) hunt safety
                    violations and livelock lassos; hits are shrunk to
                    minimal schedules and certified by replay
                    (``--problem``, ``--instance``, ``--seed``,
                    ``--episodes``, ``--kernel``; ``--out/--resume/
                    --workers`` shard episodes over a farm);
* ``experiments`` — regenerate the paper-claim experiment tables (E1-E14
                    of the E1-E17 index in DESIGN.md; the E15-E17
                    extension tables run via ``pytest benchmarks/
                    --benchmark-only``; slower);
* ``report``      — validate and summarise run manifests written by the
                    telemetry subsystem (``repro.obs``), including farm
                    directories (cell status counts + manifest table).
"""

from __future__ import annotations

import argparse
import sys


def cmd_demo() -> int:
    from repro import (
        AnonymousConsensus,
        AnonymousMutex,
        AnonymousRenaming,
        RandomNaming,
        System,
    )
    from repro.runtime import RandomAdversary, StagedObstructionAdversary

    print("Figure 1 — two-process mutual exclusion, 3 anonymous registers")
    system = System(AnonymousMutex(m=3, cs_visits=2), [11, 13], naming=RandomNaming(1))
    trace = system.run(RandomAdversary(1), max_steps=100_000)
    print(f"  {trace.critical_section_entries()} serialized CS entries "
          f"in {len(trace)} steps\n")

    print("Figure 2 — three-process consensus, 5 anonymous registers")
    system = System(
        AnonymousConsensus(n=3), {11: "a", 13: "b", 17: "c"}, naming=RandomNaming(2)
    )
    trace = system.run(StagedObstructionAdversary(prefix_steps=50, seed=2), max_steps=200_000)
    print(f"  decisions: {trace.outputs}\n")

    print("Figure 3 — four-process perfect renaming, 7 anonymous registers")
    system = System(AnonymousRenaming(n=4), [11, 13, 17, 19], naming=RandomNaming(3))
    trace = system.run(StagedObstructionAdversary(prefix_steps=80, seed=3), max_steps=500_000)
    print(f"  new names: {trace.outputs}")
    return 0


def cmd_verify(rest=()) -> int:
    """Exhaustive safety + liveness verification of registry instances."""
    from repro.cliflags import add_workers_flag, reject_flag
    from repro.errors import VerificationError
    from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
    from repro.problems import get_problem, instances_with_role
    from repro.request import RunRequest
    from repro.verify import verify_instance, write_verify_manifest

    parser = argparse.ArgumentParser(
        prog="python -m repro verify",
        description="Exhaustively verify the registry's declared safety "
        "invariants and liveness theorems (deadlock-freedom via SCC "
        "non-progress-cycle analysis, obstruction-freedom via solo-run "
        "termination) over retained state graphs — no adversary sampling. "
        "Seeded mutants are expected to FAIL their property and count as "
        "OK when they do, with a replayable lasso counterexample.",
    )
    parser.add_argument(
        "--problem",
        action="append",
        default=None,
        metavar="KEY",
        help="only verify this problem's instances (repeatable)",
    )
    parser.add_argument(
        "--instance",
        action="append",
        default=None,
        metavar="LABEL",
        help="only verify this instance label (repeatable)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list the verify-role instances and exit",
    )
    parser.add_argument(
        "--backend",
        choices=["serial", "parallel"],
        default="serial",
        help="exploration backend for the graph-retaining walk",
    )
    add_workers_flag(
        parser, help_text="worker processes for --backend parallel"
    )
    parser.add_argument(
        "--max-states",
        type=int,
        default=None,
        metavar="N",
        help="override each instance's verification state budget",
    )
    parser.add_argument(
        "--kernel",
        choices=["interpreted", "compiled"],
        default="interpreted",
        help="step kernel for the walk: 'compiled' runs the "
        "table-compiled kernel (serial backend only; bit-identical "
        "graph, ~10x the throughput)",
    )
    parser.add_argument(
        "--telemetry",
        metavar="DIR",
        default=None,
        help="write one run manifest per instance into DIR "
        "(readable by `python -m repro report DIR`)",
    )
    reject_flag(
        parser, "--seed", "verify",
        "exhaustive verification quantifies over every schedule; "
        "there is nothing to seed (randomised search is `repro fuzz`)",
    )
    args = parser.parse_args(list(rest))
    if args.kernel == "compiled" and args.backend != "serial":
        parser.error(
            "--kernel compiled is a drop-in replacement for the serial "
            "backend; it cannot combine with --backend parallel"
        )

    selected = []
    if args.problem:
        for key in args.problem:
            spec = get_problem(key)  # raises with known keys on typo
            selected.extend(
                (spec, inst) for inst in spec.instances_with_role("verify")
            )
    else:
        selected = list(instances_with_role("verify", include_mutants=True))
    if args.instance:
        wanted = set(args.instance)
        selected = [
            (spec, inst) for spec, inst in selected if inst.label in wanted
        ]
        missing = wanted - {inst.label for _, inst in selected}
        if missing:
            known = [
                inst.label
                for _, inst in instances_with_role(
                    "verify", include_mutants=True
                )
            ]
            parser.error(
                f"unknown instance label(s) {sorted(missing)}; known: {known}"
            )
    if args.list:
        for spec, inst in selected:
            liveness = ", ".join(
                f"{prop.kind} ({prop.theorem})"
                + (" [expect violation]" if prop.expect_violation else "")
                for prop in spec.liveness
            ) or "safety only"
            print(f"{inst.label}: {liveness}")
        return 0

    failed = 0
    for spec, inst in selected:
        telemetry = Telemetry() if args.telemetry else NULL_TELEMETRY
        request = RunRequest(
            # verify_instance builds the compiled backend itself so it
            # can seed it with the spec's declared value domain.
            kernel=args.kernel if args.kernel == "compiled" else None,
            backend=None if args.kernel == "compiled" else args.backend,
            workers=args.workers,
            max_states=args.max_states,
            telemetry=telemetry,
        )
        try:
            report = verify_instance(spec, inst, request=request)
        except VerificationError as exc:
            failed += 1
            print(f"[FAIL] {inst.label}: {exc}")
            continue
        status = "OK " if report.ok else "FAIL"
        if not report.ok:
            failed += 1
        print(f"[{status}] {inst.label}: {report.summary()}")
        for outcome in report.outcomes:
            lasso = outcome.verdict.lasso
            if lasso is not None:
                print(
                    f"       lasso: {len(lasso.prefix)}-step prefix, then "
                    f"repeat {list(lasso.cycle)} forever "
                    "(replayable via repro.runtime.replay.replay_schedule)"
                )
        if args.telemetry:
            write_verify_manifest(
                args.telemetry, spec, inst, report, telemetry.snapshot()
            )
    return 1 if failed else 0


def cmd_attack() -> int:
    from repro.core.mutex import AnonymousMutex
    from repro.lowerbounds.symmetry import run_symmetry_attack

    for m in (2, 4, 6):
        result = run_symmetry_attack(
            AnonymousMutex(m=m, unsafe_allow_any_m=True), [11, 13]
        )
        print(f"m={m}: {result.summary()}")
        if not result.violated:
            return 1
    print("even register counts are impossible, exactly as Theorem 3.1 says")
    return 0


def cmd_lint(rest=()) -> int:
    from repro.lint.cli import main as lint_main

    return lint_main(list(rest))


def cmd_report(rest=()) -> int:
    from repro.obs.report import report_main

    return report_main(list(rest))


def cmd_fuzz(rest=()) -> int:
    """Seeded adversary-strategy fuzzing (see repro.fuzz)."""
    from repro.fuzz.cli import fuzz_main

    return fuzz_main(list(rest))


def cmd_sweep(rest=()) -> int:
    """Resumable disk-backed sweep farm (see repro.farm)."""
    from repro.cliflags import add_workers_flag, reject_flag
    from repro.errors import ReproError
    from repro.farm import (
        create_farm,
        farm_result,
        is_farm_dir,
        parse_adversary_spec,
        parse_naming_spec,
        resume_farm,
        run_farm,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro sweep",
        description="Run a naming × adversary grid over a problem from "
        "the registry.  With --out DIR the grid persists as a sqlite "
        "run table workers claim cells from; a killed run restarts with "
        "--resume DIR exactly where it stopped (done cells are never "
        "re-executed).  Without --out the grid runs in-memory, like "
        "repro.analysis.experiments.sweep().",
    )
    parser.add_argument("--problem", metavar="KEY",
                        help="problem registry key (e.g. figure-1-mutex)")
    parser.add_argument("--instance", metavar="LABEL", default=None,
                        help="registry instance supplying the parameters")
    parser.add_argument("--param", action="append", default=None,
                        metavar="K=V",
                        help="explicit builder parameter (repeatable; "
                        "mutually exclusive with --instance)")
    parser.add_argument("--namings", default="identity,random:1",
                        metavar="SPECS",
                        help="comma-separated naming specs: identity | "
                        "random:SEED (default: %(default)s)")
    parser.add_argument("--adversaries", default="random:1,random:2,round-robin",
                        metavar="SPECS",
                        help="comma-separated adversary specs: round-robin | "
                        "random:SEED | burst:SEED | staged:PREFIX:SEED "
                        "(default: %(default)s)")
    parser.add_argument("--max-steps", type=int, default=200_000, metavar="N",
                        help="step budget per run cell (default: %(default)s)")
    parser.add_argument("--retain-graph", action="store_true",
                        help="append one exhaustive verify cell whose "
                        "retained StateGraph is persisted in the farm's "
                        "disk store (graphs/cell-*/)")
    parser.add_argument("--verify-max-states", type=int, default=None,
                        metavar="N", help="state budget for the verify cell")
    parser.add_argument("--out", metavar="DIR", default=None,
                        help="create a farm directory and drain it")
    parser.add_argument("--resume", metavar="DIR", default=None,
                        help="reclaim a killed farm's cells and drain the rest")
    add_workers_flag(
        parser, default=1,
        help_text="claiming worker processes (needs --out/--resume)",
    )
    parser.add_argument("--max-attempts", type=int, default=None, metavar="N",
                        help="per-cell retry budget: transiently failed "
                        "cells re-enter pending until they have been "
                        "attempted N times (default: 1 — errors stay "
                        "terminal)")
    reject_flag(
        parser, "--kernel", "sweep",
        "grid cells replay live System runs through the interpreted "
        "scheduler; the compiled kernel serves the exhaustive walk "
        "(`repro verify --kernel compiled`)",
    )
    reject_flag(
        parser, "--backend", "sweep",
        "the farm schedules cells across claiming processes; pick "
        "parallelism with --workers",
    )
    reject_flag(
        parser, "--seed", "sweep",
        "adversary seeds ride in the --adversaries specs "
        "(e.g. random:SEED)",
    )
    reject_flag(
        parser, "--max-states", "sweep",
        "run cells are step-bounded (--max-steps); the verify cell's "
        "state budget is --verify-max-states",
    )
    args = parser.parse_args(list(rest))

    if args.resume is not None:
        if args.out is not None or args.problem is not None:
            parser.error("--resume takes its grid from the farm directory; "
                         "drop --out/--problem")
        if not is_farm_dir(args.resume):
            parser.error(f"{args.resume}: no run table found "
                         "(not a farm directory?)")
        reclaimed = resume_farm(args.resume, max_attempts=args.max_attempts)
        before = farm_result(args.resume)
        remaining = before.counts["pending"]
        print(f"resume: reclaimed {reclaimed} cell(s), "
              f"{remaining} cell(s) to run")
        if remaining == 0:
            print(before.summary())
            return 1 if before.errors else 0
        result = run_farm(args.resume, workers=args.workers,
                          max_attempts=args.max_attempts)
    else:
        if args.problem is None:
            parser.error("--problem is required (unless resuming)")
        if args.param is not None and args.instance is not None:
            parser.error("pass either --param or --instance, not both")
        params = None
        if args.param is not None:
            params = {}
            for item in args.param:
                key, sep, value = item.partition("=")
                if not sep:
                    parser.error(f"--param needs K=V, got {item!r}")
                try:
                    params[key] = int(value)
                except ValueError:
                    params[key] = value
        try:
            config = {
                "problem": args.problem,
                "instance": args.instance,
                "params": params,
                "namings": [
                    parse_naming_spec(spec)
                    for spec in args.namings.split(",") if spec.strip()
                ],
                "adversaries": [
                    parse_adversary_spec(spec)
                    for spec in args.adversaries.split(",") if spec.strip()
                ],
                "max_steps": args.max_steps,
                "retain_graph": args.retain_graph,
                "verify_max_states": args.verify_max_states,
                "max_attempts": args.max_attempts or 1,
            }
        except ReproError as exc:
            parser.error(str(exc))
        if args.out is not None:
            if is_farm_dir(args.out):
                parser.error(f"{args.out}: run table already exists; "
                             "use --resume to continue it")
            try:
                count = create_farm(args.out, config)
            except ReproError as exc:
                parser.error(str(exc))
            print(f"farm: {count} cell(s) at {args.out}")
            result = run_farm(args.out, workers=args.workers,
                              max_attempts=args.max_attempts)
        else:
            if args.workers > 1:
                parser.error("--workers needs a shared run table; "
                             "add --out DIR")
            result = _sweep_in_memory(config)

    print(result.summary())
    violations = sum(
        1 for row in result.done
        if (row.result or {}).get("verdict") not in ("ok", "verified", None)
    )
    if violations:
        print(f"{violations} cell(s) recorded property violations")
    for row in result.errors:
        print(f"[error] cell {row.index}: {row.error}", file=sys.stderr)
    return 1 if result.errors else 0


def _sweep_in_memory(config) -> "object":
    """One-shot sweep over a MemoryRunTable (no farm directory)."""
    from repro.farm import FarmResult, MemoryRunTable, execute_cell, grid_cells

    table = MemoryRunTable(grid_cells(config))
    while True:
        cell = table.claim("cli")
        if cell is None:
            break
        table.finish(cell.index, execute_cell(config, cell, graphs_dir=None))
    return FarmResult(problem=config["problem"], rows=table.rows())


def cmd_experiments() -> int:
    import importlib.util
    from pathlib import Path

    script = Path(__file__).resolve().parents[2] / "benchmarks" / "run_experiments.py"
    if not script.exists():
        print(
            "benchmarks/run_experiments.py not found (installed without the "
            "repository checkout); clone the repo to run the full tables",
            file=sys.stderr,
        )
        return 2
    spec = importlib.util.spec_from_file_location("run_experiments", script)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    return 0


#: The subcommand registry: name → handler.  Every key must appear in
#: the module docstring above (asserted by tests/test_docs.py).
COMMANDS = {
    "demo": cmd_demo,
    "verify": cmd_verify,
    "attack": cmd_attack,
    "lint": cmd_lint,
    "sweep": cmd_sweep,
    "fuzz": cmd_fuzz,
    "experiments": cmd_experiments,
    "report": cmd_report,
}

#: Subcommands with their own ArgumentParser: the remaining argv is
#: forwarded to them instead of being rejected here.
_FORWARDS_REST = frozenset({"verify", "lint", "sweep", "fuzz", "report"})


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Coordination Without Prior Agreement — reproduction CLI",
    )
    parser.add_argument(
        "command",
        nargs="?",
        default="demo",
        choices=list(COMMANDS),
        help="demo (default) | verify [--list --problem --instance "
             "--backend --kernel --telemetry] (exhaustive safety + "
             "liveness over "
             "the problem registry) | attack | lint | "
             "sweep [--out DIR --resume DIR --workers N] (resumable "
             "disk-backed naming × adversary grid) | "
             "fuzz [--problem KEY --seed N --episodes N] (seeded "
             "adversary-strategy fuzzing with certified, shrunk "
             "violation schedules) | "
             "experiments (tables E1-E14 of the E1-E17 index; E15-E17 "
             "run via pytest benchmarks/) | "
             "report <manifest-or-dir> (summarise repro.obs run "
             "manifests or a sweep-farm directory)",
    )
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in _FORWARDS_REST:
        # Hand the whole tail to the subcommand's own parser before the
        # top-level one can intercept --help (or any shared spelling).
        return COMMANDS[argv[0]](argv[1:])
    args, rest = parser.parse_known_args(argv)
    if args.command in _FORWARDS_REST:
        return COMMANDS[args.command](rest)
    if rest:
        parser.error(f"unrecognized arguments: {' '.join(rest)}")
    return COMMANDS[args.command]()


if __name__ == "__main__":
    raise SystemExit(main())
