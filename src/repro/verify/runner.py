"""Run registry instances through exhaustive safety + liveness checking.

One :func:`verify_instance` call is the whole pipeline for a single
:class:`~repro.problems.spec.ProblemInstance`:

1. build the system through its :class:`~repro.problems.spec.ProblemSpec`
   (the spec's pinned naming included — mutants pin the adversarial
   naming their counterexample needs);
2. exhaustively explore with the safety invariant and
   ``retain_graph=True`` (trivial canonicalizer, serial or parallel
   backend — the retained graph is byte-identical either way);
3. run every declared liveness property's checker
   (:data:`~repro.verify.liveness.LIVENESS_CHECKERS`) over the graph.

The resulting :class:`VerificationReport` is the CLI's unit of output
(``python -m repro verify``) and can be serialised as a
``repro.run_manifest/v1`` document for ``python -m repro report``.

No adversary sampling anywhere: where the seed CLI's verify command
checked safety exhaustively but left liveness to the adversary-driven
experiment harness, this pipeline decides the declared liveness
theorems over *every* reachable state.
"""

from __future__ import annotations

import re
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.errors import ConfigurationError, VerificationError
from repro.obs.manifest import RunManifest
from repro.obs.telemetry import NULL_TELEMETRY, TelemetrySink
from repro.problems.spec import LivenessProperty, ProblemInstance, ProblemSpec
from repro.request import RunRequest, resolve_target
from repro.runtime.exploration import ExplorationResult, explore
from repro.runtime.kernel import StepInstance
from repro.verify.liveness import LIVENESS_CHECKERS, LivenessVerdict

#: Sentinel distinguishing "keyword not passed" from an explicit None,
#: so the deprecated execution keywords warn only when actually used.
_UNSET: Any = object()


def _no_invariant(system: Any) -> Optional[str]:
    """Stand-in safety invariant for specs that declare none.

    A module-level function (not a lambda) so the parallel backend can
    pickle it to worker processes.
    """
    return None


@dataclass(frozen=True)
class PropertyOutcome:
    """One liveness property's declared expectation vs. checked verdict."""

    declared: LivenessProperty
    verdict: LivenessVerdict

    @property
    def ok(self) -> bool:
        """Whether the verdict matches the declaration: properties hold,
        and seeded mutants (``expect_violation``) are *found out*."""
        return self.verdict.holds is not self.declared.expect_violation

    def describe(self) -> str:
        kind = self.verdict.kind
        if self.verdict.holds:
            word = "holds"
        elif self.declared.expect_violation:
            word = "violated (as seeded)"
        else:
            word = "VIOLATED"
        return f"{kind} ({self.declared.theorem}) {word}"


@dataclass
class VerificationReport:
    """Everything one instance's verification run established."""

    problem: str
    instance: str
    exploration: ExplorationResult
    outcomes: Tuple[PropertyOutcome, ...] = ()
    #: Wall seconds of the graph-retaining exploration walk.
    explore_seconds: float = 0.0
    #: Wall seconds of the liveness analyses over the retained graph.
    verify_seconds: float = 0.0

    @property
    def retained_edges(self) -> int:
        graph = self.exploration.graph
        return graph.edge_count if graph is not None else 0

    @property
    def safety_ok(self) -> bool:
        return self.exploration.ok

    @property
    def ok(self) -> bool:
        """Safety exhaustively confirmed and every declared liveness
        property matched its expectation."""
        return (
            self.exploration.ok
            and self.exploration.complete
            and all(outcome.ok for outcome in self.outcomes)
        )

    def summary(self) -> str:
        """One line for the CLI table."""
        if not self.exploration.ok:
            return f"safety VIOLATED: {self.exploration.violation}"
        parts = [
            f"safety exhaustive over {self.exploration.states_explored} "
            f"states ({self.retained_edges} edges)"
        ]
        parts.extend(outcome.describe() for outcome in self.outcomes)
        return "; ".join(parts)


def verify_instance(
    spec: Optional[ProblemSpec] = None,
    instance: Optional[ProblemInstance] = None,
    backend: Any = _UNSET,
    telemetry: Any = _UNSET,
    max_states: Any = _UNSET,
    kernel: Any = _UNSET,
    *,
    request: Optional[RunRequest] = None,
) -> VerificationReport:
    """Exhaustively verify one registry instance (see module docstring).

    Execution choices ride on a :class:`~repro.request.RunRequest`:
    ``verify_instance(spec, inst, request=RunRequest(kernel="compiled"))``
    — or omit ``spec``/``instance`` entirely and let the request's
    ``problem``/``instance``/``params`` resolve through the registry.
    The pre-request ``backend=``/``telemetry=``/``max_states=``/
    ``kernel=`` keywords still work but emit ``DeprecationWarning``
    (removed in PR 11).

    ``kernel="compiled"`` runs the graph-retaining walk on the
    table-compiled step kernel (:mod:`repro.runtime.compiled`), seeded
    with the spec's declared value domain when it has one; the retained
    graph is byte-identical to the interpreted walk's, so every liveness
    verdict is too.

    Raises :class:`~repro.errors.VerificationError` when the instance
    declares liveness properties but the exploration could not retain a
    complete graph (state budget truncation) — an incomplete graph
    supports no liveness verdict.
    """
    from repro.request import deprecated_keywords_message

    legacy = {
        name: value
        for name, value in (
            ("backend", backend),
            ("kernel", kernel),
            ("max_states", max_states),
            ("telemetry", telemetry),
        )
        if value is not _UNSET
    }
    if legacy:
        warnings.warn(
            deprecated_keywords_message("verify_instance", sorted(legacy)),
            DeprecationWarning,
            stacklevel=2,
        )
    backend = legacy.get("backend")
    kernel = legacy.get("kernel")
    max_states = legacy.get("max_states")
    telemetry = legacy.get("telemetry")
    workers: Optional[int] = None
    if request is not None:
        backend = request.merged("backend", backend)
        kernel = request.merged("kernel", kernel)
        max_states = request.merged("max_states", max_states)
        telemetry = request.merged("telemetry", telemetry)
        workers = request.workers
        if spec is None:
            spec, instance = request.resolve()
        elif instance is None and (
            request.instance is not None or request.params is not None
        ):
            _, instance = resolve_target(
                spec.key, request.instance, request.params_dict()
            )
    if spec is None or instance is None:
        raise ConfigurationError(
            "verify_instance needs a (spec, instance) pair or a request= "
            "naming a problem/instance to resolve through the registry"
        )
    if telemetry is None:
        telemetry = NULL_TELEMETRY
    system = spec.system(instance)
    invariant = spec.invariant if spec.invariant is not None else _no_invariant
    budget = max_states if max_states is not None else instance.verify_max_states
    if kernel == "compiled" and backend in (None, "serial"):
        from repro.runtime.compiled import CompiledBackend

        domain = (
            spec.value_domain(instance.params_dict())
            if spec.value_domain is not None
            else ()
        )
        backend = CompiledBackend(domain_hint=domain)
        kernel = None  # already resolved into the backend
    if isinstance(backend, str):
        from repro.runtime.backends import resolve_backend

        backend = resolve_backend(backend, workers=workers)
    result = explore(
        system,
        invariant,
        max_states=budget,
        # A DFS branch can run as deep as the budget allows; make sure
        # the walk is only ever truncated by max_states, never by depth.
        max_depth=budget,
        backend=backend,
        kernel=kernel,
        telemetry=telemetry,
        retain_graph=True,
    )
    report = VerificationReport(
        problem=spec.key,
        instance=instance.label,
        exploration=result,
        explore_seconds=result.wall_seconds,
    )
    if not result.ok:
        # A safety violation is a final (negative) verdict; the walk
        # stopped early, so no liveness analysis is possible or needed.
        return report
    if spec.liveness and not result.complete:
        raise VerificationError(
            f"{instance.label}: exploration truncated by "
            f"{result.truncated_by} after {result.states_explored} states "
            f"(budget {budget}); liveness verification needs the complete "
            "graph — raise the instance's verify_max_states"
        )
    step_instance = StepInstance.from_system(system)
    outcomes = []
    started = time.perf_counter()
    with telemetry.phase("verify.liveness"):
        for declared in spec.liveness:
            checker = LIVENESS_CHECKERS[declared.kind]
            verdict = checker(step_instance, result.graph)
            outcomes.append(PropertyOutcome(declared=declared, verdict=verdict))
            if telemetry.enabled:
                telemetry.event(
                    "verify.property",
                    problem=spec.key,
                    instance=instance.label,
                    kind=declared.kind,
                    theorem=declared.theorem,
                    holds=verdict.holds,
                    expected_violation=declared.expect_violation,
                )
    report.outcomes = tuple(outcomes)
    report.verify_seconds = time.perf_counter() - started
    if telemetry.enabled:
        telemetry.gauge("verify.states", result.states_explored)
        telemetry.gauge("verify.retained_edges", report.retained_edges)
        telemetry.gauge("verify.seconds", report.verify_seconds)
    return report


def _slug(label: str) -> str:
    return re.sub(r"[^a-z0-9]+", "-", label.lower()).strip("-")


def verify_manifest(
    spec: ProblemSpec,
    instance: ProblemInstance,
    report: VerificationReport,
    telemetry: Optional[Dict[str, Any]] = None,
) -> RunManifest:
    """The ``repro.run_manifest/v1`` record of one verification run."""
    params = instance.params_dict()
    naming_obj = spec.naming(params) if spec.naming is not None else None
    exploration = report.exploration
    properties = [
        {
            "kind": outcome.declared.kind,
            "theorem": outcome.declared.theorem,
            "holds": outcome.verdict.holds,
            "expected_violation": outcome.declared.expect_violation,
            "ok": outcome.ok,
            "detail": outcome.verdict.detail,
        }
        for outcome in report.outcomes
    ]
    return RunManifest.create(
        kind="verify",
        algorithm=spec.key,
        parameters=params,
        naming=(
            type(naming_obj).__name__ if naming_obj is not None else "identity"
        ),
        backend=exploration.backend,
        workers=exploration.workers,
        outcome={
            "verdict": "verified" if report.ok else "failed",
            "instance": instance.label,
            "kernel": exploration.kernel,
            "states": exploration.states_explored,
            "retained_edges": report.retained_edges,
            "explore_seconds": report.explore_seconds,
            "verify_seconds": report.verify_seconds,
            "safety": exploration.summary(),
            "properties": properties,
        },
        telemetry=telemetry,
    )


def write_verify_manifest(
    directory: Union[str, Path],
    spec: ProblemSpec,
    instance: ProblemInstance,
    report: VerificationReport,
    telemetry: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write the manifest as ``verify-<instance-slug>.json`` under
    ``directory`` (created if needed); returns the path."""
    manifest = verify_manifest(spec, instance, report, telemetry)
    return manifest.write(
        Path(directory) / f"verify-{_slug(instance.label)}.json"
    )
