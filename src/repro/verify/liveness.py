"""Exhaustive liveness checking over retained state graphs.

The paper's liveness theorems quantify over *infinite* executions: no
fair schedule starves the Figure 1 mutex forever (Theorem 3.3), every
solo run of the Figure 2/3 algorithms terminates (Theorems 4.1, 5.1).
On the finite, complete transition system a backend retains (see
:mod:`repro.verify.graph`) both reduce to cycle analysis:

* **Deadlock-freedom.**  A violation is a *fair non-progress cycle*: a
  reachable cycle in which every live process takes a step (so a fair
  scheduler could loop it forever), no step enters the critical section,
  and some live process is in its entry section.  The checker deletes
  the progress edges (stepping pid's ``in_critical_section`` goes false
  to true), computes strongly connected components of what remains, and
  looks for an SCC whose internal edges cover the whole live set with a
  trying state inside.  No such SCC means every fair infinite execution
  enters the critical section infinitely often — the exhaustive form of
  Theorem 3.3 (and, on the even-``m`` mutant, the Theorem 3.4 livelock
  is *found* rather than assumed).
* **Obstruction-freedom.**  A violation is a solo livelock: some state
  from which one process, running alone, never halts.  Because each
  node has at most one ``p``-labelled edge, ``p``'s solo runs form a
  functional subgraph; the checker chain-walks it with memoisation and
  reports any cycle (an inert self-loop included).  No cycle for any
  process means every solo run from every reachable state terminates —
  Theorems 4.1/4.2/5.1 as exhaustive verification instead of adversary
  sampling.

Counterexamples come back as a :class:`Lasso` — a finite prefix
schedule from the initial state plus a repeatable cycle schedule — and
are *validated before being returned*: the checker replays both parts
through the pure kernel (:func:`~repro.runtime.kernel.step_value`,
:func:`~repro.runtime.kernel.solo_run_value`) and re-checks the
fairness/non-progress/trying conditions on the replayed states.  A
lasso that fails its own replay is an internal error, never a verdict.

All checkers require a ``complete`` graph: a truncated walk is a strict
under-approximation and any liveness verdict over it would be unsound
(:class:`~repro.errors.VerificationError`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import VerificationError
from repro.runtime.kernel import (
    GlobalState,
    StepInstance,
    solo_run_value,
    step_value,
)
from repro.types import ProcessId
from repro.verify.graph import Edge, NodeKey, StateGraph


@dataclass(frozen=True)
class Lasso:
    """A replayable infinite-execution witness: finite prefix + cycle.

    ``prefix`` drives the system from the initial state to the cycle
    entry; repeating ``cycle`` from there loops forever.  Both replay
    through :func:`~repro.runtime.replay.replay_schedule` on a fresh
    system (or :func:`~repro.runtime.kernel.step_value` on values).
    """

    prefix: Tuple[ProcessId, ...]
    cycle: Tuple[ProcessId, ...]
    #: Node key of the cycle entry state in the retained graph.
    entry: NodeKey


@dataclass(frozen=True)
class LivenessVerdict:
    """Outcome of one exhaustive liveness check."""

    kind: str
    holds: bool
    states: int
    detail: str
    lasso: Optional[Lasso] = None


def _require_complete(graph: StateGraph, kind: str) -> None:
    if not graph.complete:
        raise VerificationError(
            f"cannot check {kind} on a truncated state graph "
            f"({len(graph)} states retained): an incomplete graph is a "
            "strict under-approximation, so any liveness verdict over "
            "it would be unsound — raise the verification state budget"
        )


def _live_pids(
    instance: StepInstance, state: GlobalState
) -> Tuple[ProcessId, ...]:
    """Processes neither halted nor crashed, in scheduler order."""
    locals_part = state[1]
    slot_of = instance.slot_of
    return tuple(
        pid
        for pid in instance.pid_order
        if not (locals_part[slot_of[pid]][2] or locals_part[slot_of[pid]][3])
    )


def _replay(
    instance: StepInstance,
    state: GlobalState,
    schedule: Tuple[ProcessId, ...],
) -> GlobalState:
    for pid in schedule:
        state = step_value(instance, state, pid)
    return state


# ---------------------------------------------------------------------------
# Deadlock-freedom: fair non-progress cycles via SCC analysis
# ---------------------------------------------------------------------------


class _CsPredicate:
    """Memoised ``in_critical_section`` / ``phase`` over local states."""

    def __init__(self, instance: StepInstance) -> None:
        for pid, automaton in instance.automata.items():
            if not (
                hasattr(automaton, "in_critical_section")
                and hasattr(automaton, "phase")
            ):
                raise VerificationError(
                    "deadlock-freedom requires mutex-style automata with "
                    "in_critical_section()/phase() predicates; process "
                    f"{pid}'s {type(automaton).__name__} has neither"
                )
        self._instance = instance
        self._in_cs: Dict[Tuple[ProcessId, object], bool] = {}
        self._phase: Dict[Tuple[ProcessId, object], str] = {}

    def in_cs(self, state: GlobalState, pid: ProcessId) -> bool:
        local = self._instance.slot_entry(state, pid)[1]
        key = (pid, local)
        cached = self._in_cs.get(key)
        if cached is None:
            cached = self._instance.automata[pid].in_critical_section(local)
            self._in_cs[key] = cached
        return cached

    def phase(self, state: GlobalState, pid: ProcessId) -> str:
        local = self._instance.slot_entry(state, pid)[1]
        key = (pid, local)
        cached = self._phase.get(key)
        if cached is None:
            cached = self._instance.automata[pid].phase(local)
            self._phase[key] = cached
        return cached


def _tarjan_sccs(
    order: List[NodeKey], edges: Dict[NodeKey, List[Edge]]
) -> List[List[NodeKey]]:
    """Iterative Tarjan over the (non-progress) edge relation."""
    index: Dict[NodeKey, int] = {}
    low: Dict[NodeKey, int] = {}
    on_stack: Set[NodeKey] = set()
    stack: List[NodeKey] = []
    sccs: List[List[NodeKey]] = []
    counter = 0
    for root in order:
        if root in index:
            continue
        work: List[Tuple[NodeKey, int]] = [(root, 0)]
        while work:
            node, edge_i = work[-1]
            if edge_i == 0:
                index[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            out = edges.get(node, [])
            while edge_i < len(out):
                _, dst = out[edge_i]
                edge_i += 1
                if dst not in index:
                    work[-1] = (node, edge_i)
                    work.append((dst, 0))
                    advanced = True
                    break
                if dst in on_stack:
                    low[node] = min(low[node], index[dst])
            if advanced:
                continue
            work.pop()
            if low[node] == index[node]:
                members: List[NodeKey] = []
                while True:
                    top = stack.pop()
                    on_stack.discard(top)
                    members.append(top)
                    if top == node:
                        break
                sccs.append(members)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return sccs


def _route(
    adj: Dict[NodeKey, List[Edge]],
    src: NodeKey,
    accept: Callable[[NodeKey, ProcessId, NodeKey], bool],
) -> Tuple[List[ProcessId], NodeKey]:
    """Shortest schedule from ``src`` whose final edge satisfies
    ``accept``, breadth-first over the restricted adjacency."""
    parent: Dict[NodeKey, Tuple[NodeKey, ProcessId]] = {}
    queue: deque = deque([src])
    seen = {src}
    while queue:
        node = queue.popleft()
        for pid, dst in adj.get(node, []):
            if accept(node, pid, dst):
                path: List[ProcessId] = [pid]
                cur = node
                while cur != src:
                    cur, step = parent[cur]
                    path.append(step)
                path.reverse()
                return path, dst
            if dst not in seen:
                seen.add(dst)
                parent[dst] = (node, pid)
                queue.append(dst)
    raise RuntimeError(
        "internal error: SCC routing failed — the component is not "
        "strongly connected under its internal edges"
    )


def _fair_cycle(
    adj: Dict[NodeKey, List[Edge]],
    start: NodeKey,
    required: Tuple[ProcessId, ...],
) -> Tuple[ProcessId, ...]:
    """A cycle through ``start`` (within the restricted adjacency) in
    which every required pid steps at least once."""
    schedule: List[ProcessId] = []
    remaining = set(required)
    cur = start
    while remaining:
        hop, cur = _route(adj, cur, lambda u, p, v: p in remaining)
        remaining.difference_update(hop)
        schedule.extend(hop)
    if cur != start:
        hop, cur = _route(adj, cur, lambda u, p, v: v == start)
        schedule.extend(hop)
    return tuple(schedule)


def check_deadlock_freedom(
    instance: StepInstance, graph: StateGraph
) -> LivenessVerdict:
    """Exhaustive Theorem 3.3-style deadlock-freedom over ``graph``.

    Holds iff the non-progress subgraph has no SCC whose internal edges
    are fair for the component's live set while some member state has a
    live process in its entry section.  On violation the returned
    verdict carries a replay-validated :class:`Lasso`.
    """
    _require_complete(graph, "deadlock-freedom")
    predicates = _CsPredicate(instance)
    nodes = graph.nodes
    order = sorted(nodes)

    nonprogress: Dict[NodeKey, List[Edge]] = {}
    for key in order:
        src = nodes[key]
        kept = [
            (pid, dst)
            for pid, dst in graph.successors(key)
            if predicates.in_cs(src, pid)
            or not predicates.in_cs(nodes[dst], pid)
        ]
        if kept:
            nonprogress[key] = kept

    sccs = _tarjan_sccs(order, nonprogress)
    for members in sccs:
        member_set = set(members)
        internal: Dict[NodeKey, List[Edge]] = {}
        stepped: Set[ProcessId] = set()
        for key in members:
            kept = [
                (pid, dst)
                for pid, dst in nonprogress.get(key, [])
                if dst in member_set
            ]
            if kept:
                internal[key] = kept
                stepped.update(pid for pid, _ in kept)
        if not internal:
            continue  # trivial SCC: no cycle through it
        live = _live_pids(instance, nodes[members[0]])
        for key in members[1:]:
            if _live_pids(instance, nodes[key]) != live:
                raise RuntimeError(
                    "internal error: live set varies within an SCC — "
                    "halted/crashed flags are supposed to be monotone"
                )
        if not live or not set(live) <= stepped:
            continue  # no fair scheduler can loop here forever
        start = next(
            (
                key
                for key in members
                if any(
                    predicates.phase(nodes[key], pid) == "entry"
                    for pid in live
                )
            ),
            None,
        )
        if start is None:
            continue  # nobody trying: starving no one
        cycle = _fair_cycle(internal, start, live)
        prefix = graph.path_to(start)
        _validate_df_lasso(
            instance, nodes[graph.initial], prefix, cycle,
            nodes[start], live, predicates,
        )
        return LivenessVerdict(
            kind="deadlock-freedom",
            holds=False,
            states=len(graph),
            detail=(
                f"fair non-progress cycle of length {len(cycle)} through "
                f"an SCC of {len(members)} states (live pids {list(live)} "
                f"all step, no critical-section entry, a live process "
                f"stays in its entry section); prefix length {len(prefix)}"
            ),
            lasso=Lasso(prefix=prefix, cycle=cycle, entry=start),
        )
    return LivenessVerdict(
        kind="deadlock-freedom",
        holds=True,
        states=len(graph),
        detail=(
            f"no fair non-progress cycle in {len(graph)} states / "
            f"{len(sccs)} SCCs: every fair infinite execution enters "
            "the critical section infinitely often"
        ),
    )


def _validate_df_lasso(
    instance: StepInstance,
    initial_state: GlobalState,
    prefix: Tuple[ProcessId, ...],
    cycle: Tuple[ProcessId, ...],
    entry_state: GlobalState,
    live: Tuple[ProcessId, ...],
    predicates: _CsPredicate,
) -> None:
    """Replay the lasso through the pure kernel and re-check every
    condition the verdict claims.  Failures are internal errors."""
    state = _replay(instance, initial_state, prefix)
    if state != entry_state:
        raise RuntimeError(
            "internal error: lasso prefix does not replay to the cycle "
            "entry state"
        )
    if not any(predicates.phase(state, pid) == "entry" for pid in live):
        raise RuntimeError(
            "internal error: no live process is trying at the cycle entry"
        )
    stepped: Set[ProcessId] = set()
    for pid in cycle:
        successor = step_value(instance, state, pid)
        if not predicates.in_cs(state, pid) and predicates.in_cs(
            successor, pid
        ):
            raise RuntimeError(
                "internal error: lasso cycle contains a progress edge"
            )
        stepped.add(pid)
        state = successor
    if state != entry_state:
        raise RuntimeError(
            "internal error: lasso cycle does not return to its entry state"
        )
    if not set(live) <= stepped:
        raise RuntimeError(
            "internal error: lasso cycle is not fair for the live set"
        )


# ---------------------------------------------------------------------------
# Obstruction-freedom: solo livelocks via functional-subgraph chain walks
# ---------------------------------------------------------------------------


def check_obstruction_freedom(
    instance: StepInstance, graph: StateGraph
) -> LivenessVerdict:
    """Exhaustive Theorem 4.1/5.1-style obstruction-freedom over ``graph``.

    For every process ``p`` and every reachable state, running ``p``
    solo must terminate.  Each node has at most one ``p``-edge, so solo
    runs form a functional subgraph: memoised chain walks classify each
    node as terminating or cycling, and any cycle (self-loops included)
    is a solo livelock, returned with a replay-validated lasso whose
    cycle is just ``p`` repeated.
    """
    _require_complete(graph, "obstruction-freedom")
    nodes = graph.nodes
    order = sorted(nodes)
    for pid in instance.pid_order:
        terminates: Set[NodeKey] = set()
        for origin in order:
            if origin in terminates:
                continue
            path: List[NodeKey] = []
            position: Dict[NodeKey, int] = {}
            cur = origin
            while True:
                if cur in terminates:
                    terminates.update(path)
                    break
                if cur in position:
                    cycle_len = len(path) - position[cur]
                    return _of_violation(instance, graph, pid, cur, cycle_len)
                position[cur] = len(path)
                path.append(cur)
                nxt = graph.successor_via(cur, pid)
                if nxt is None:
                    # No p-edge: p is halted or crashed here — the solo
                    # run has settled.
                    terminates.update(path)
                    break
                cur = nxt
    live_counts = sorted(
        {len(_live_pids(instance, state)) for state in nodes.values()}
    )
    return LivenessVerdict(
        kind="obstruction-freedom",
        holds=True,
        states=len(graph),
        detail=(
            f"every solo run from every of {len(graph)} states "
            f"terminates, for each of {len(instance.pid_order)} "
            f"processes (live-set sizes seen: {live_counts})"
        ),
    )


def _of_violation(
    instance: StepInstance,
    graph: StateGraph,
    pid: ProcessId,
    entry: NodeKey,
    cycle_len: int,
) -> LivenessVerdict:
    prefix = graph.path_to(entry)
    cycle = (pid,) * cycle_len
    entry_state = graph.nodes[entry]
    state = _replay(instance, graph.nodes[graph.initial], prefix)
    if state != entry_state:
        raise RuntimeError(
            "internal error: solo-livelock prefix does not replay to the "
            "cycle entry state"
        )
    final, steps, settled = solo_run_value(
        instance, entry_state, pid, cycle_len
    )
    if settled or final != entry_state:
        raise RuntimeError(
            "internal error: claimed solo livelock does not cycle under "
            "the kernel's solo run"
        )
    return LivenessVerdict(
        kind="obstruction-freedom",
        holds=False,
        states=len(graph),
        detail=(
            f"solo livelock: process {pid} running alone repeats a "
            f"{cycle_len}-step cycle forever (prefix length "
            f"{len(prefix)})"
        ),
        lasso=Lasso(prefix=prefix, cycle=cycle, entry=entry),
    )


#: Liveness property kind -> exhaustive checker.
LIVENESS_CHECKERS: Dict[
    str, Callable[[StepInstance, StateGraph], LivenessVerdict]
] = {
    "deadlock-freedom": check_deadlock_freedom,
    "obstruction-freedom": check_obstruction_freedom,
}
