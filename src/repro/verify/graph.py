"""The retained state graph: exploration's successor relation as a value.

When :func:`repro.runtime.exploration.explore` is called with
``retain_graph=True`` the backend records, for every expanded state, the
full labelled successor relation — one ``(pid, destination key)`` edge
per enabled process — alongside the state values themselves.  The result
is a :class:`StateGraph`: the exact transition system the walk explored,
over which :mod:`repro.verify.liveness` runs its SCC and solo-run
analyses.

Soundness constraints (enforced at the ``explore()`` entrance):

* **Trivial canonicalizer only.**  Under a symmetry quotient the graph's
  nodes are orbit *representatives*, and which representative claims an
  orbit depends on visit order — DFS and BFS legitimately pick different
  ones, so quotient graphs are not byte-comparable across backends.
  Worse, quotient edges carry pid labels that are only correct up to the
  group element mapping the concrete successor onto its representative,
  which breaks the per-pid fairness bookkeeping the liveness analyses
  rely on.  With the trivial canonicalizer a node key is the content
  digest of the concrete state and an edge ``(p, dst)`` means exactly
  ``step_value(instance, nodes[src], p) == nodes[dst]`` — including
  self-loops, which the liveness checkers need (an inert self-loop *is*
  a solo livelock).
* **Complete walks only** for liveness verdicts: a truncated graph is a
  strict under-approximation, so :class:`StateGraph` records
  ``complete`` and the checkers refuse incomplete graphs.

Determinism: on complete runs the serial DFS and the parallel
work-stealing walk visit the same states and expand each exactly once,
recording the same edges in the same per-node order (the instance's
scheduler pid order), so :meth:`StateGraph.to_bytes` — which sorts
nodes by key — produces byte-identical serialisations from both
backends.  The differential tests in ``tests/verify/test_graph.py``
pin this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.runtime.kernel import GlobalState
from repro.types import ProcessId

#: A node key: the canonicalizer's raw content digest of the state.
NodeKey = bytes

#: One labelled edge: (stepping pid, destination node key).
Edge = Tuple[ProcessId, NodeKey]

#: Leading magic of the canonical :meth:`StateGraph.to_bytes` framing.
#: Public so the disk store (:mod:`repro.farm.store`) can emit the same
#: serialisation without re-stating the format.
STATEGRAPH_MAGIC = b"repro.stategraph/v1"
_MAGIC = STATEGRAPH_MAGIC


@dataclass
class StateGraph:
    """The explored transition system, as plain dictionaries.

    ``nodes`` maps each visited key to its concrete
    :data:`~repro.runtime.kernel.GlobalState`; ``edges`` maps each
    *expanded* key to its outgoing edges in scheduler pid order.
    Terminal states (no enabled process) have an empty edge tuple; on a
    ``complete`` graph every node appears in ``edges``.
    """

    initial: NodeKey
    nodes: Dict[NodeKey, GlobalState]
    edges: Dict[NodeKey, Tuple[Edge, ...]]
    complete: bool
    #: Scheduler events the retention observed (one per recorded edge;
    #: informational — the walk's own counter includes acceleration).
    edge_count: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self.edge_count = sum(len(out) for out in self.edges.values())

    def __len__(self) -> int:
        return len(self.nodes)

    def successors(self, key: NodeKey) -> Tuple[Edge, ...]:
        """Outgoing edges of a node (empty for terminal states)."""
        return self.edges.get(key, ())

    def successor_via(self, key: NodeKey, pid: ProcessId) -> Optional[NodeKey]:
        """The destination of ``key``'s ``pid``-labelled edge, if any."""
        for edge_pid, dst in self.edges.get(key, ()):
            if edge_pid == pid:
                return dst
        return None

    def iter_nodes(self) -> Iterator[NodeKey]:
        """Node keys in sorted (deterministic) order."""
        return iter(sorted(self.nodes))

    def path_to(self, target: NodeKey) -> Tuple[ProcessId, ...]:
        """A schedule from the initial state to ``target``.

        Deterministic breadth-first search over the recorded edges
        (neighbours in recorded order), so both backends' graphs yield
        the same schedule for the same target.  The returned pids replay
        through :func:`~repro.runtime.kernel.step_value` (or
        :func:`~repro.runtime.replay.replay_schedule` on a fresh
        system) from the initial state to ``target``'s state.
        """
        if target == self.initial:
            return ()
        parent: Dict[NodeKey, Tuple[NodeKey, ProcessId]] = {}
        frontier: List[NodeKey] = [self.initial]
        seen = {self.initial}
        while frontier:
            next_frontier: List[NodeKey] = []
            for key in frontier:
                for pid, dst in self.edges.get(key, ()):
                    if dst in seen:
                        continue
                    seen.add(dst)
                    parent[dst] = (key, pid)
                    if dst == target:
                        path: List[ProcessId] = []
                        cur = dst
                        while cur != self.initial:
                            cur, step = parent[cur]
                            path.append(step)
                        return tuple(reversed(path))
                    next_frontier.append(dst)
            frontier = next_frontier
        raise KeyError(f"node {target.hex()} is not reachable in this graph")

    def to_bytes(self) -> bytes:
        """Canonical serialisation: identical bytes for identical graphs.

        Nodes are emitted sorted by key, each with its edges in recorded
        (scheduler pid) order.  Node *states* are not re-serialised —
        the key already is the content digest of the state, so two
        graphs with equal serialisations describe the same transition
        system.
        """
        out: List[bytes] = [
            _MAGIC,
            b"\x01" if self.complete else b"\x00",
            self.initial,
            len(self.nodes).to_bytes(8, "big"),
        ]
        for key in sorted(self.nodes):
            edges = self.edges.get(key, ())
            out.append(key)
            out.append(len(edges).to_bytes(4, "big"))
            for pid, dst in edges:
                out.append(f"p{pid};".encode("ascii"))
                out.append(dst)
        return b"".join(out)


class GraphRecorder:
    """Incremental edge/node accumulator the backends feed during a walk.

    Kept deliberately dumb: ``add_node`` on first claim of a key,
    ``add_edge`` for every enabled pid of every expanded state (inert
    self-loops included).  ``finish`` packages the accumulated relation
    into a :class:`StateGraph` with the walk's completeness verdict.
    """

    __slots__ = ("initial", "nodes", "edges")

    def __init__(self, initial: NodeKey, initial_state: GlobalState) -> None:
        self.initial = initial
        self.nodes: Dict[NodeKey, GlobalState] = {initial: initial_state}
        self.edges: Dict[NodeKey, List[Edge]] = {}

    def add_node(self, key: NodeKey, state: GlobalState) -> None:
        self.nodes.setdefault(key, state)

    def add_edge(self, src: NodeKey, pid: ProcessId, dst: NodeKey) -> None:
        self.edges.setdefault(src, []).append((pid, dst))

    def mark_expanded(self, src: NodeKey) -> None:
        """Record that ``src`` was expanded, even if it has no edges
        (terminal states must be distinguishable from never-expanded
        ones on truncated walks)."""
        self.edges.setdefault(src, [])

    def finish(self, complete: bool) -> StateGraph:
        return StateGraph(
            initial=self.initial,
            nodes=self.nodes,
            edges={src: tuple(out) for src, out in self.edges.items()},
            complete=complete,
        )
