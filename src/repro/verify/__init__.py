"""``repro.verify`` — exhaustive verification over retained state graphs.

The graph layer (:mod:`repro.verify.graph`) is what the exploration
backends retain under ``explore(..., retain_graph=True)``; the liveness
layer (:mod:`repro.verify.liveness`) decides the paper's
deadlock-freedom and obstruction-freedom theorems over it by SCC and
solo-run analysis, returning replayable lasso counterexamples; the
runner (:mod:`repro.verify.runner`) drives registry instances
(:mod:`repro.problems`) through the whole pipeline for
``python -m repro verify``.
"""

from repro.verify.graph import Edge, GraphRecorder, NodeKey, StateGraph
from repro.verify.liveness import (
    LIVENESS_CHECKERS,
    Lasso,
    LivenessVerdict,
    check_deadlock_freedom,
    check_obstruction_freedom,
)
from repro.verify.runner import (
    PropertyOutcome,
    VerificationReport,
    verify_instance,
    verify_manifest,
    write_verify_manifest,
)

__all__ = [
    "Edge",
    "GraphRecorder",
    "LIVENESS_CHECKERS",
    "Lasso",
    "LivenessVerdict",
    "NodeKey",
    "PropertyOutcome",
    "StateGraph",
    "VerificationReport",
    "check_deadlock_freedom",
    "check_obstruction_freedom",
    "verify_instance",
    "verify_manifest",
    "write_verify_manifest",
]
