"""Named-register consensus baseline, plus the §3.2 padding wrapper.

* :class:`NamedConsensus` — the majority-adopt consensus scheme of the
  paper's reference [5] (Bowman), which Figure 2 ports to anonymous
  memory, here run in its native *named* model.  Correctness is the
  Figure 2 proof verbatim (identity naming is one legal adversary
  choice); what the named model adds is **coordinated write placement**:
  process slot ``k`` steers its "arbitrary index" choices to start at
  offset ``k * (m // n)``, so under contention the processes spread
  their writes across agreed disjoint regions instead of colliding.
  That placement is precisely the kind of prior agreement the anonymous
  model forbids, and the performance experiments quantify what it buys
  (fewer iterations to convergence under contention).

* :class:`PaddedAlgorithm` — §3.2 property 1 made executable: "if a
  problem has a solution using l registers then it also has a solution
  using m registers, for every m >= l.  (Simply ignore m - l of the
  registers.  This requires a prior agreement on which m - l registers
  should be ignored.)"  The wrapper adds never-touched registers to any
  base algorithm.  Because ignoring *specific* registers is itself
  agreement, the wrapped algorithm reports ``is_anonymous() == False``
  even when the base algorithm is anonymous — Theorem 3.1 (odd m only)
  shows the property genuinely fails without that agreement: Figure 1
  with m=3 cannot be "padded" to m=4 anonymously.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.consensus import (
    AnonymousConsensus,
    AnonymousConsensusProcess,
    ConsensusState,
)
from repro.errors import ConfigurationError
from repro.runtime.automaton import Algorithm, ProcessAutomaton
from repro.types import ProcessId, RegisterValue, require


class NamedConsensusProcess(AnonymousConsensusProcess):
    """Figure-2-core process with slot-staggered write placement.

    Overrides only the "arbitrary index" selection (lines 6/7 of the
    figure leave it free): among the registers whose entry differs from
    ``(i, mypref)``, pick the first at or after the process's agreed
    slot offset.  Any deterministic choice preserves correctness; this
    one needs named registers to be meaningful.
    """

    #: Slot-staggered write placement is agreed positional asymmetry —
    #: the prior agreement §3.2 discusses; exempt from the symmetry lint.
    SYMMETRIC = False

    def __init__(self, pid: ProcessId, input: Any, m: int, adopt_threshold: int, offset: int):
        super().__init__(pid, input, m, adopt_threshold, choice="first")
        self.offset = offset % max(1, m)

    def _after_collect(self, state: ConsensusState, myview) -> ConsensusState:
        # Reuse the parent's adopt/decide logic, then re-aim the write
        # (scan for a differing register starting at our agreed offset).
        from dataclasses import replace

        from repro.memory.records import ConsensusRecord

        result = super()._after_collect(state, myview)
        if result.pc != "write":
            return result
        target = ConsensusRecord(self.pid, result.mypref)
        for shift in range(self.m):
            k = (self.offset + shift) % self.m
            if myview[k] != target:
                return replace(result, write_index=k)
        return result  # pragma: no cover - parent would have decided


class NamedConsensus(AnonymousConsensus):
    """Majority-adopt consensus in the named model (n processes,
    ``2n - 1`` named registers, slot-staggered writes)."""

    name = "named-consensus([5]-style)"

    def __init__(self, n: int, registers: Optional[int] = None):
        super().__init__(n, registers=registers)
        self._next_slot = 0

    def is_anonymous(self) -> bool:
        return False

    def automaton_for(self, pid: ProcessId, input: Any = None) -> NamedConsensusProcess:
        slot = self._next_slot
        self._next_slot += 1
        stride = max(1, self.m // max(1, self.n))
        return NamedConsensusProcess(
            pid, input, m=self.m, adopt_threshold=self.n, offset=slot * stride
        )


class PaddedAlgorithm(Algorithm):
    """Run ``base`` inside a larger register array, ignoring the extras.

    See the module docstring; the padding registers keep the base
    algorithm's initial value and are never read or written.
    """

    def __init__(self, base: Algorithm, total_registers: int):
        require(
            total_registers >= base.register_count(),
            f"padding cannot shrink the register array: base needs "
            f"{base.register_count()}, got total {total_registers}",
            ConfigurationError,
        )
        self.base = base
        self.total_registers = total_registers
        self.name = f"padded({base.name}, m={total_registers})"

    def register_count(self) -> int:
        return self.total_registers

    def initial_value(self) -> RegisterValue:
        return self.base.initial_value()

    def is_anonymous(self) -> bool:
        # Agreeing on which registers to ignore is prior agreement.
        return False

    def automaton_for(self, pid: ProcessId, input: Any = None) -> ProcessAutomaton:
        return self.base.automaton_for(pid, input)
