"""Wait-free (non-perfect) renaming from a splitter grid — Moir-Anderson.

The renaming literature the paper builds on (§7, citing Moir & Anderson
[18]) contains a classic named-model algorithm that makes a different
trade than Figure 3: **wait-free** progress (no solo-run proviso at
all), bought by settling for the larger name space ``{1 .. n(n+1)/2}``
instead of perfect ``{1..n}``.  Reproducing it gives the experiments a
three-way contrast:

===============================  ==========  ==============  ===========
algorithm                        registers   names           progress
===============================  ==========  ==============  ===========
Figure 3 (anonymous)             2n-1        {1..n} perfect  obstruction-free
election chain (named, §5)       (n-1)(2n-1) {1..n} perfect  leader-serial
splitter grid (named, [18])      n(n+1)      {1..n(n+1)/2}   wait-free
===============================  ==========  ==============  ===========

The building block is Lamport's *splitter*: two registers ``X`` (a
value) and ``Y`` (a flag), and a four-step protocol

    X := i
    if Y: return RIGHT
    Y := true
    if X = i: return STOP else return DOWN

with the guarantee that of the ``k`` processes entering a splitter, at
most one STOPs, at most ``k - 1`` go RIGHT and at most ``k - 1`` go
DOWN.  Arranged in a triangular grid (DOWN moves a row down, RIGHT a
column right), every process STOPs within ``n - 1`` moves, and the
splitter where it stopped — no two processes stop at the same one — is
its new name.

Splitters need *named* registers twice over: the X/Y roles within a
splitter, and the grid layout across splitters.  The algorithm is
otherwise anonymous-friendly in spirit (no slots, fully symmetric), so
it also illustrates that symmetry alone is not the obstacle the paper
studies — naming is.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional

from repro.errors import ConfigurationError, ProtocolError
from repro.runtime.automaton import Algorithm, ProcessAutomaton
from repro.runtime.ops import Operation, ReadOp, WriteOp
from repro.types import ProcessId, require, validate_process_id


def triangular_index(row: int, col: int) -> int:
    """Diagonal enumeration of grid cells with ``row + col = d``.

    Cells are numbered 0, 1, 2, ... along anti-diagonals: (0,0)=0,
    (1,0)=1, (0,1)=2, (2,0)=3, ...  The stopping cell's index + 1 is the
    acquired name.
    """
    diagonal = row + col
    return diagonal * (diagonal + 1) // 2 + row


@dataclass(frozen=True)
class SplitterState:
    """Local state: grid position plus the in-splitter step."""

    pc: str = "w_x"  # w_x -> r_y -> (w_y -> r_x) | RIGHT
    row: int = 0
    col: int = 0
    name: Optional[int] = None


class SplitterRenamingProcess(ProcessAutomaton):
    """One process descending the splitter grid."""

    # Note: fully symmetric (the module docstring's point) — identifiers
    # are only written and equality-compared; what it needs is *naming*.

    PC_LINES = {
        "w_x": "Moir-Anderson splitter, step 1 — X := i",
        "r_y": "Moir-Anderson splitter, step 2 — read Y; RIGHT if set",
        "w_y": "Moir-Anderson splitter, step 3 — Y := true",
        "r_x": "Moir-Anderson splitter, step 4 — read X; STOP iff still i",
        "done": "Moir-Anderson grid — stopped; cell index + 1 is the name",
    }

    def __init__(self, pid: ProcessId, n: int):
        self.pid = validate_process_id(pid)
        self.n = n

    # -- register addressing: splitter (r, c) owns X at 2*t, Y at 2*t+1 --

    def _x_reg(self, state: SplitterState) -> int:
        return 2 * triangular_index(state.row, state.col)

    def _y_reg(self, state: SplitterState) -> int:
        return 2 * triangular_index(state.row, state.col) + 1

    # -- automaton interface ------------------------------------------------

    def initial_state(self) -> SplitterState:
        return SplitterState()

    def is_halted(self, state: SplitterState) -> bool:
        return state.pc == "done"

    def output(self, state: SplitterState) -> Optional[int]:
        return state.name if state.pc == "done" else None

    def next_op(self, state: SplitterState) -> Operation:
        self.require_running(state)
        pc = state.pc
        if pc == "w_x":
            return WriteOp(self._x_reg(state), self.pid)
        if pc == "r_y":
            return ReadOp(self._y_reg(state))
        if pc == "w_y":
            return WriteOp(self._y_reg(state), 1)
        if pc == "r_x":
            return ReadOp(self._x_reg(state))
        raise ProtocolError(f"splitter process {self.pid}: unknown pc {pc!r}")

    def apply(self, state: SplitterState, op: Operation, result: Any) -> SplitterState:
        pc = state.pc
        if pc == "w_x":
            return replace(state, pc="r_y")
        if pc == "r_y":
            if result != 0:
                return self._move(state, d_row=0, d_col=1)  # RIGHT
            return replace(state, pc="w_y")
        if pc == "w_y":
            return replace(state, pc="r_x")
        if pc == "r_x":
            if result == self.pid:
                # STOP: this splitter's cell is the new name.
                return replace(
                    state,
                    pc="done",
                    name=triangular_index(state.row, state.col) + 1,
                )
            return self._move(state, d_row=1, d_col=0)  # DOWN
        raise ProtocolError(f"splitter process {self.pid}: cannot apply {pc!r}")

    def _move(self, state: SplitterState, d_row: int, d_col: int) -> SplitterState:
        row, col = state.row + d_row, state.col + d_col
        if row + col >= self.n:
            # Unreachable when at most n processes participate: every
            # move is "paid for" by another process staying behind.
            raise ProtocolError(
                f"process {self.pid} fell off the splitter grid at "
                f"({row}, {col}); more than n={self.n} processes entered"
            )
        return SplitterState(pc="w_x", row=row, col=col)


class SplitterRenaming(Algorithm):
    """Moir-Anderson grid renaming: wait-free, names in {1..n(n+1)/2}.

    Named-model baseline (the grid layout and X/Y roles are agreed);
    contrast object for Figure 3 in the E12 experiments.
    """

    name = "splitter-renaming(named, [18])"

    def __init__(self, n: int):
        require(
            isinstance(n, int) and n >= 1,
            f"splitter renaming needs a positive process count, got {n!r}",
            ConfigurationError,
        )
        self.n = n

    def register_count(self) -> int:
        # One splitter per grid cell with row + col < n: n(n+1)/2 cells,
        # two registers each.
        return self.n * (self.n + 1)

    def name_space(self) -> int:
        """Size of the target name space, ``n(n+1)/2``."""
        return self.n * (self.n + 1) // 2

    def is_anonymous(self) -> bool:
        return False

    def automaton_for(self, pid: ProcessId, input: Any = None) -> SplitterRenamingProcess:
        return SplitterRenamingProcess(pid, n=self.n)
