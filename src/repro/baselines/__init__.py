"""Named-register baselines — the "standard model" the paper contrasts.

All algorithms here rely on a priori agreement about register names
(``is_anonymous() == False``) and are rejected by
:class:`~repro.runtime.system.System` under any naming other than
identity.  They ground the model-separation experiments:

* :mod:`repro.baselines.named_mutex` — Peterson's two-process algorithm
  and an n-process tournament (no oddness condition, arbitrary n — the
  §3.2 properties that fail anonymously);
* :mod:`repro.baselines.named_consensus` — the [5]-style majority-adopt
  consensus with slot-staggered write placement, plus the §3.2 register
  padding wrapper;
* :mod:`repro.baselines.named_renaming` — the §5 "trivial solution":
  renaming via an agreed chain of election objects;
* :mod:`repro.baselines.splitter_renaming` — Moir-Anderson splitter-grid
  renaming ([18]): wait-free, names in {1..n(n+1)/2} — the third corner
  of the renaming trade-off triangle.
"""

from repro.baselines.named_consensus import (
    NamedConsensus,
    NamedConsensusProcess,
    PaddedAlgorithm,
)
from repro.baselines.named_mutex import (
    PetersonMutex,
    TournamentMutex,
    TournamentMutexProcess,
)
from repro.baselines.named_renaming import (
    ElectionChainProcess,
    ElectionChainRenaming,
)
from repro.baselines.splitter_renaming import (
    SplitterRenaming,
    SplitterRenamingProcess,
    triangular_index,
)

__all__ = [
    "NamedConsensus",
    "NamedConsensusProcess",
    "PaddedAlgorithm",
    "PetersonMutex",
    "TournamentMutex",
    "TournamentMutexProcess",
    "ElectionChainRenaming",
    "ElectionChainProcess",
    "SplitterRenaming",
    "SplitterRenamingProcess",
    "triangular_index",
]
