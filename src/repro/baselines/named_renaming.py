"""The §5 "trivial solution": renaming from a chain of election objects.

    "It is straightforward to solve perfect renaming in a model where
    there is an a priori agreement on the names of the registers, given
    that there is a solution for the election problem [...] n-1
    (obstruction-free) election objects are used.  The election objects
    are indexed 1, 2, ..., n-1.  Each process scans the objects, in
    order, starting with object number 1. [...] This trivial solution
    requires a priori agreement on an ordering for the election objects,
    and hence would not work in a model where there is no a priori
    agreement on the registers names."

:class:`ElectionChainRenaming` implements exactly that construction.
Each election object is one majority-adopt consensus instance (inputs =
identifiers) living in its own agreed block of ``2n - 1`` registers —
``(n - 1) * (2n - 1)`` named registers in total, versus Figure 3's
``2n - 1`` anonymous ones.  The block layout *is* the prior agreement:
under a non-identity naming two processes would disagree on where
election object 1 lives, which is why the algorithm reports
``is_anonymous() == False`` and why the paper needed Figure 3's
everything-in-one-space design.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional

from repro.core.consensus import AnonymousConsensusProcess, ConsensusState
from repro.errors import ConfigurationError, ProtocolError
from repro.memory.records import ConsensusRecord
from repro.runtime.automaton import Algorithm, ProcessAutomaton
from repro.runtime.ops import Operation, ReadOp, WriteOp
from repro.types import ProcessId, RegisterValue, require, validate_process_id


@dataclass(frozen=True)
class ChainState:
    """Local state: which election we are playing, and its inner state."""

    #: Election object index, 0-based (the paper's object ``stage + 1``).
    stage: int
    #: The embedded consensus process's local state for this election.
    inner: ConsensusState
    #: The acquired new name, once decided.
    name: Optional[int] = None

    @property
    def pc(self) -> str:  # for uniform debugging/tracing/lint audits
        return "done" if self.name is not None else f"stage-{self.stage}"


class ElectionChainProcess(ProcessAutomaton):
    """One process walking the chain of election objects."""

    #: The agreed ordering of election objects (block layout) is exactly
    #: the prior agreement the §5 quote calls out; exempt from the
    #: symmetry lint, which cannot see through block offsets.
    SYMMETRIC = False

    PC_LINES = {
        "stage": "§5 trivial solution — playing election object stage+1",
        "done": "§5 trivial solution — elected (name = stage+1) or last (name = n)",
    }

    @classmethod
    def pc_key(cls, pc: str) -> str:
        # Dynamic counters "stage-0", "stage-1", ... all map to "stage".
        return "stage" if pc.startswith("stage-") else pc

    def __init__(self, pid: ProcessId, n: int, block_size: int):
        self.pid = validate_process_id(pid)
        self.n = n
        self.block_size = block_size
        # One stateless inner automaton serves every election object: it
        # always plays consensus with our identifier as input.
        self._inner = AnonymousConsensusProcess(
            pid, input=pid, m=block_size, adopt_threshold=n
        )

    def initial_state(self) -> ChainState:
        if self.n == 1:
            # No elections to play: the sole process takes name 1.
            return ChainState(stage=0, inner=self._inner.initial_state(), name=1)
        return ChainState(stage=0, inner=self._inner.initial_state())

    def is_halted(self, state: ChainState) -> bool:
        return state.name is not None

    def output(self, state: ChainState) -> Optional[int]:
        return state.name

    def _offset(self, state: ChainState) -> int:
        return state.stage * self.block_size

    def next_op(self, state: ChainState) -> Operation:
        self.require_running(state)
        op = self._inner.next_op(state.inner)
        base = self._offset(state)
        if isinstance(op, ReadOp):
            return ReadOp(base + op.index)
        if isinstance(op, WriteOp):
            return WriteOp(base + op.index, op.value)
        raise ProtocolError(
            f"chain process {self.pid}: unexpected inner op {op!r}"
        )  # pragma: no cover - consensus only reads/writes

    def apply(self, state: ChainState, op: Operation, result: Any) -> ChainState:
        # Translate the op back to block-local coordinates for the inner
        # automaton's transition.
        base = self._offset(state)
        if isinstance(op, ReadOp):
            inner_op: Operation = ReadOp(op.index - base)
        elif isinstance(op, WriteOp):
            inner_op = WriteOp(op.index - base, op.value)
        else:  # pragma: no cover - consensus only reads/writes
            inner_op = op
        inner = self._inner.apply(state.inner, inner_op, result)
        if not self._inner.is_halted(inner):
            return replace(state, inner=inner)

        winner = self._inner.output(inner)
        if winner == self.pid:
            # Elected at object stage+1: that is the new name.
            return replace(state, inner=inner, name=state.stage + 1)
        next_stage = state.stage + 1
        if next_stage >= self.n - 1:
            # Lost every election: the last process takes the name n.
            return replace(state, inner=inner, name=self.n)
        return ChainState(stage=next_stage, inner=self._inner.initial_state())


class ElectionChainRenaming(Algorithm):
    """Adaptive perfect renaming from ``n - 1`` named election objects."""

    name = "election-chain-renaming(named)"

    def __init__(self, n: int):
        require(
            isinstance(n, int) and n >= 1,
            f"renaming needs a positive process count, got {n!r}",
            ConfigurationError,
        )
        self.n = n
        self.block_size = 2 * n - 1

    def register_count(self) -> int:
        return max(1, (self.n - 1) * self.block_size)

    def initial_value(self) -> RegisterValue:
        return ConsensusRecord()

    def is_anonymous(self) -> bool:
        return False

    def automaton_for(self, pid: ProcessId, input: Any = None) -> ElectionChainProcess:
        return ElectionChainProcess(pid, n=self.n, block_size=self.block_size)
