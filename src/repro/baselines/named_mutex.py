"""Named-register mutual exclusion baselines: Peterson and tournament.

Section 3.2 contrasts the anonymous model with the standard one, where
"there is a lower-level a priori agreement regarding the register names".
These baselines *are* that standard model: they address registers by
globally agreed indices and assign asymmetric roles by position, so they
are rejected under any naming other than identity (see
:meth:`repro.runtime.automaton.Algorithm.is_anonymous`).

* :class:`PetersonMutex` — Dijkstra-style two-process mutual exclusion
  (Peterson 1981): registers ``flag[0]``, ``flag[1]``, ``turn``; 3 named
  registers, deadlock-free (indeed starvation-free), and *not* runnable
  without register agreement.
* :class:`TournamentMutex` — n-process mutual exclusion as a complete
  binary tree of Peterson locks, ``3 * (2^ceil(log2 n) - 1)`` registers.

Together with Figure 1 they ground the experiment comparing the two
models: the named algorithms need no oddness condition on the register
count and extend beyond two processes — exactly the §3.2 properties that
fail in the anonymous model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Tuple

from repro.core.mutex import MutexAutomatonMixin
from repro.errors import ConfigurationError, ProtocolError
from repro.runtime.automaton import Algorithm, ProcessAutomaton
from repro.runtime.ops import (
    CritOp,
    EnterCritOp,
    ExitCritOp,
    Operation,
    ReadOp,
    WriteOp,
)
from repro.types import ProcessId, require, validate_process_id


@dataclass(frozen=True)
class TournamentState:
    """Local state of one tournament (or Peterson, height 1) process."""

    pc: str = "flag_write"
    #: Index into the leaf-to-root lock path: which lock is being worked.
    level: int = 0
    #: Critical-section steps still to spend.
    crit_remaining: int = 0
    #: Completed critical-section visits.
    visits_done: int = 0


class TournamentMutexProcess(MutexAutomatonMixin, ProcessAutomaton):
    """One process of the tournament-of-Petersons algorithm.

    The process's *slot* (position among the participants — a piece of
    prior agreement the anonymous model forbids) determines its leaf in a
    complete binary tree of two-process Peterson locks.  Entry walks the
    path leaf -> root acquiring each lock; exit releases them root ->
    leaf.

    Lock node ``v`` (heap indexing, internal nodes ``1 .. n_slots - 1``)
    owns registers ``3*(v-1) + {0: flag-left, 1: flag-right, 2: turn}``.
    """

    EXIT_PCS = frozenset({"release_write"})

    #: Slots assign asymmetric roles by position — the prior agreement the
    #: anonymous model forbids (§3.2); exempt from the symmetry lint.
    SYMMETRIC = False

    PC_LINES = {
        "flag_write": "Peterson (1981) entry — flag[role] := id at the current lock",
        "turn_write": "Peterson entry — turn := other role (give way)",
        "peer_flag_read": "Peterson entry — read the peer's flag",
        "turn_read": "Peterson entry — read turn (spin test)",
        "enter_cs": "Peterson — all path locks held; enter the CS",
        "crit": "critical section occupancy",
        "exit_crit": "leave the critical section; begin releasing locks",
        "release_write": "Peterson exit — flag[role] := 0, root to leaf",
        "done": "left the algorithm (cs_visits spent)",
    }

    def __init__(
        self,
        pid: ProcessId,
        slot: int,
        n_slots: int,
        cs_visits: int = 1,
        cs_steps: int = 1,
    ):
        self.pid = validate_process_id(pid)
        require(
            0 <= slot < n_slots,
            f"slot {slot} out of range for {n_slots} slots",
            ConfigurationError,
        )
        self.slot = slot
        self.n_slots = n_slots
        self.cs_visits = cs_visits
        self.cs_steps = max(1, cs_steps)
        #: Leaf-to-root path: tuple of (lock node, role at that lock).
        self.path: Tuple[Tuple[int, int], ...] = self._build_path(slot, n_slots)

    @staticmethod
    def _build_path(slot: int, n_slots: int) -> Tuple[Tuple[int, int], ...]:
        path = []
        node = n_slots + slot  # the process's leaf in heap indexing
        while node > 1:
            parent, role = node // 2, node % 2
            path.append((parent, role))
            node = parent
        return tuple(path)

    # -- register addressing --------------------------------------------

    def _flag_reg(self, lock: int, role: int) -> int:
        return 3 * (lock - 1) + role

    def _turn_reg(self, lock: int) -> int:
        return 3 * (lock - 1) + 2

    def _lock_and_role(self, state: TournamentState) -> Tuple[int, int]:
        return self.path[state.level]

    # -- automaton interface ----------------------------------------------

    def initial_state(self) -> TournamentState:
        return TournamentState()

    def is_halted(self, state: TournamentState) -> bool:
        return state.pc == "done"

    def output(self, state: TournamentState) -> Any:
        return state.visits_done if state.pc == "done" else None

    def next_op(self, state: TournamentState) -> Operation:
        self.require_running(state)
        pc = state.pc
        if pc in ("flag_write", "release_write"):
            lock, role = self._lock_and_role(state)
            value = self.pid if pc == "flag_write" else 0
            return WriteOp(self._flag_reg(lock, role), value)
        if pc == "turn_write":
            lock, role = self._lock_and_role(state)
            # Give way: set turn to the *other* role.
            return WriteOp(self._turn_reg(lock), 1 - role)
        if pc == "peer_flag_read":
            lock, role = self._lock_and_role(state)
            return ReadOp(self._flag_reg(lock, 1 - role))
        if pc == "turn_read":
            lock, role = self._lock_and_role(state)
            return ReadOp(self._turn_reg(lock))
        if pc == "enter_cs":
            return EnterCritOp()
        if pc == "crit":
            return CritOp()
        if pc == "exit_crit":
            return ExitCritOp()
        raise ProtocolError(f"tournament process {self.pid}: unknown pc {pc!r}")

    def apply(self, state: TournamentState, op: Operation, result: Any) -> TournamentState:
        pc = state.pc

        if pc == "flag_write":
            return replace(state, pc="turn_write")

        if pc == "turn_write":
            return replace(state, pc="peer_flag_read")

        if pc == "peer_flag_read":
            if result == 0:
                return self._lock_acquired(state)
            return replace(state, pc="turn_read")

        if pc == "turn_read":
            _, role = self._lock_and_role(state)
            if result != (1 - role):
                # turn points back at us: the peer arrived later.
                return self._lock_acquired(state)
            return replace(state, pc="peer_flag_read")

        if pc == "enter_cs":
            return replace(state, pc="crit", crit_remaining=self.cs_steps)

        if pc == "crit":
            remaining = state.crit_remaining - 1
            if remaining > 0:
                return replace(state, crit_remaining=remaining)
            return replace(state, pc="exit_crit")

        if pc == "exit_crit":
            # Release root first (LIFO): start at the top of the path.
            return replace(state, pc="release_write", level=len(self.path) - 1)

        if pc == "release_write":
            if state.level > 0:
                return replace(state, level=state.level - 1)
            visits = state.visits_done + 1
            if visits >= self.cs_visits:
                return TournamentState(pc="done", visits_done=visits)
            return TournamentState(pc="flag_write", visits_done=visits)

        raise ProtocolError(f"tournament process {self.pid}: cannot apply {pc!r}")

    def _lock_acquired(self, state: TournamentState) -> TournamentState:
        if state.level + 1 < len(self.path):
            return replace(state, pc="flag_write", level=state.level + 1)
        return replace(state, pc="enter_cs")


class TournamentMutex(Algorithm):
    """n-process named-register mutual exclusion (tree of Petersons).

    Parameters
    ----------
    n:
        Number of processes (``n >= 2``).
    cs_visits / cs_steps:
        As for :class:`repro.core.mutex.AnonymousMutex`.
    """

    name = "tournament-mutex(named)"

    def __init__(self, n: int, cs_visits: int = 1, cs_steps: int = 1):
        require(
            isinstance(n, int) and n >= 2,
            f"tournament mutex needs n >= 2 processes, got {n!r}",
            ConfigurationError,
        )
        self.n = n
        self.n_slots = 1 << max(1, math.ceil(math.log2(n)))
        self.cs_visits = cs_visits
        self.cs_steps = cs_steps
        self._next_slot = 0

    def register_count(self) -> int:
        return 3 * (self.n_slots - 1)

    def is_anonymous(self) -> bool:
        return False

    def automaton_for(self, pid: ProcessId, input: Any = None) -> TournamentMutexProcess:
        """Assign slots in arrival order — the prior agreement step.

        ``input`` may explicitly pick a slot; otherwise slots are handed
        out sequentially.  Slot assignment is exactly the kind of a
        priori coordination the anonymous model rules out.
        """
        if isinstance(input, int):
            slot = input
        else:
            slot = self._next_slot
            self._next_slot += 1
        return TournamentMutexProcess(
            pid,
            slot=slot,
            n_slots=self.n_slots,
            cs_visits=self.cs_visits,
            cs_steps=self.cs_steps,
        )


class PetersonMutex(TournamentMutex):
    """Peterson's classic two-process algorithm (3 named registers).

    The height-1 special case of the tournament; kept as its own class
    because it is the canonical named-model counterpart to Figure 1:
    two processes, three registers in both cases — but Peterson needs
    agreement on which register is which, while Figure 1 needs none.
    """

    name = "peterson-mutex(named)"

    def __init__(self, cs_visits: int = 1, cs_steps: int = 1):
        super().__init__(n=2, cs_visits=cs_visits, cs_steps=cs_steps)
