"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
letting genuine programming errors (``TypeError`` etc.) propagate.

Specification violations detected by the :mod:`repro.spec` checkers are
*also* exceptions (:class:`SpecViolation` and subclasses): the lower-bound
experiments in :mod:`repro.lowerbounds` intentionally drive algorithms into
forbidden regimes and *catch* these to demonstrate the paper's
impossibility results.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An algorithm or system was instantiated with invalid parameters.

    Examples: an even register count for the Figure 1 mutex, fewer than
    ``2n - 1`` registers for the Figure 2 consensus, duplicate process
    identifiers, or a naming assignment whose permutation is not a
    bijection.
    """


class ProtocolError(ReproError):
    """A process automaton violated the execution protocol.

    Raised when an automaton emits a malformed operation (e.g. a register
    index out of range) or is stepped after it has already halted.
    """


class SchedulingError(ReproError):
    """The adversary or scheduler reached an inconsistent state.

    Examples: an adversary selecting a crashed or halted process, or a
    schedule referring to an unknown process identifier.
    """


class ExplorationLimitExceeded(ReproError):
    """The bounded model checker exhausted its step or state budget.

    This is distinct from finding a violation: it means the search was
    inconclusive within the configured bounds.
    """


class ManifestValidationError(ReproError):
    """A run manifest failed its schema check.

    Raised when loading or constructing a
    :class:`repro.obs.manifest.RunManifest` from a document that is
    missing required fields, carries wrong types, or declares an
    unsupported schema version.  The message lists every problem found,
    not just the first.
    """


class FarmError(ReproError):
    """A sweep-farm run table refused an operation.

    Raised by :mod:`repro.farm` when the claim protocol is violated
    (finishing a cell that is not claimed, claiming from a table that
    does not exist, creating a farm over an existing run table) or when
    a farm directory is structurally broken.  The claim transaction
    itself never raises this for the benign case — "someone else claimed
    it first" simply returns no cell.
    """


class FuzzError(ReproError):
    """The adversary-strategy fuzzer refused an operation or failed to
    certify a hit.

    Raised by :mod:`repro.fuzz` for invalid budgets/strategy names and —
    the load-bearing case — when a candidate violation does not survive
    replay validation: every reported schedule must re-execute through
    :func:`repro.runtime.replay.replay_schedule` and exhibit the claimed
    violation, so a validation failure is a fuzzer bug, never a result.
    """


class VerificationError(ReproError):
    """The exhaustive verifier could not produce a verdict.

    Raised by :mod:`repro.verify` when the retained state graph is
    unusable for a liveness analysis — the walk was truncated (an
    incomplete graph is a strict under-approximation, so any verdict
    over it would be unsound), the graph is missing, or a problem
    declares a liveness property its automata cannot support.  Distinct
    from a :class:`SpecViolation`: this is "could not check", not
    "checked and failed".
    """


class SpecViolation(ReproError):
    """Base class for safety/liveness property violations found in a trace.

    Attributes
    ----------
    trace:
        The offending :class:`repro.runtime.events.Trace`, when available.
    """

    def __init__(self, message: str, trace=None):
        super().__init__(message)
        self.trace = trace


class MutualExclusionViolation(SpecViolation):
    """Two processes were inside the critical section simultaneously."""


class DeadlockFreedomViolation(SpecViolation):
    """Processes starved in their entry sections despite a fair schedule."""


class AgreementViolation(SpecViolation):
    """Two processes decided different values in a consensus run."""


class ValidityViolation(SpecViolation):
    """A consensus decision was not the input of any participant."""


class UniquenessViolation(SpecViolation):
    """Two processes acquired the same new name in a renaming run."""


class NameRangeViolation(SpecViolation):
    """A renaming output fell outside the permitted name range."""


class TerminationViolation(SpecViolation):
    """A process failed to terminate within the progress condition's bound.

    For obstruction-free algorithms this is raised when a process that ran
    solo for the guaranteed number of steps still had not produced an
    output.
    """
