"""Run metrics: step counts, iteration counts, register contention.

The paper's claims are qualitative (possibility/impossibility), but its
proofs contain quantitative handles the experiments verify and report:

* Theorem 4.1: a solo consensus run finishes "after at most 2n - 1
  iterations" — :func:`solo_iterations` counts the actual write
  iterations of a solo run;
* §1 motivates anonymity with memory-contention flexibility —
  :func:`register_contention` histograms physical register accesses so
  the plasticity experiment can show how namings spread load;
* step counts per process and per run feed the performance tables.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.runtime.events import Trace
from repro.types import PhysicalIndex, ProcessId


@dataclass(frozen=True)
class RunMetrics:
    """Aggregate numbers extracted from one trace."""

    total_events: int
    total_reads: int
    total_writes: int
    steps_per_process: Dict[ProcessId, int]
    decided_count: int

    @property
    def max_steps(self) -> int:
        """Steps of the busiest process."""
        return max(self.steps_per_process.values(), default=0)

    @property
    def mean_steps(self) -> float:
        """Mean steps per process."""
        values = list(self.steps_per_process.values())
        return statistics.fmean(values) if values else 0.0


def collect_metrics(trace: Trace) -> RunMetrics:
    """Extract :class:`RunMetrics` from a trace."""
    reads = sum(1 for e in trace.events if e.is_read())
    writes = sum(1 for e in trace.events if e.is_write())
    return RunMetrics(
        total_events=len(trace),
        total_reads=reads,
        total_writes=writes,
        steps_per_process={pid: trace.steps_taken(pid) for pid in trace.pids},
        decided_count=len(trace.decided()),
    )


def register_contention(trace: Trace) -> Dict[PhysicalIndex, Tuple[int, int]]:
    """Per-physical-register (reads, writes) histogram of a run."""
    histogram: Dict[PhysicalIndex, List[int]] = {}
    for event in trace.events:
        if event.physical_index is None:
            continue
        cell = histogram.setdefault(event.physical_index, [0, 0])
        if event.is_read():
            cell[0] += 1
        else:
            cell[1] += 1
    return {index: (r, w) for index, (r, w) in sorted(histogram.items())}


def contention_spread(trace: Trace) -> float:
    """Max/mean ratio of per-register write counts (1.0 = perfectly even).

    The §1 "plasticity" discussion suggests orderings can be assigned to
    reduce memory contention; this scalar summarises how evenly a run
    spread its writes.
    """
    writes = [w for _, w in register_contention(trace).values()]
    if not writes or sum(writes) == 0:
        return 1.0
    mean = sum(writes) / len(writes)
    return max(writes) / mean if mean else 1.0


def solo_iterations(trace: Trace, pid: ProcessId) -> int:
    """Number of write operations ``pid`` performed — its loop iterations.

    Figure 2/3 processes write exactly once per repeat-loop iteration, so
    the write count is the iteration count the Theorem 4.1/5.1 bounds
    speak about.
    """
    return len(trace.writes_by(pid))


def summarize_distribution(values: Sequence[float]) -> Dict[str, float]:
    """min/mean/median/max summary used by the report tables."""
    if not values:
        return {"min": 0.0, "mean": 0.0, "median": 0.0, "max": 0.0}
    return {
        "min": float(min(values)),
        "mean": float(statistics.fmean(values)),
        "median": float(statistics.median(values)),
        "max": float(max(values)),
    }
