"""Experiment support: sweeps, metrics, and report tables.

* :mod:`repro.analysis.experiments` — naming × adversary sweep harness;
* :mod:`repro.analysis.metrics` — step/iteration counts and register
  contention;
* :mod:`repro.analysis.tables` — ASCII table rendering for the benchmark
  reports.
"""

from repro.analysis.experiments import (
    RunRecord,
    SweepResult,
    gives_solo_opportunities,
    solo_run,
    sweep,
)
from repro.analysis.metrics import (
    RunMetrics,
    collect_metrics,
    contention_spread,
    register_contention,
    solo_iterations,
    summarize_distribution,
)
from repro.analysis.tables import print_table, render_table

__all__ = [
    "RunRecord",
    "SweepResult",
    "sweep",
    "solo_run",
    "gives_solo_opportunities",
    "RunMetrics",
    "collect_metrics",
    "register_contention",
    "contention_spread",
    "solo_iterations",
    "summarize_distribution",
    "print_table",
    "render_table",
]
