"""Sweep harness: run an algorithm across namings × adversaries × seeds.

Every possibility-side experiment has the same shape: build a system,
run it under a schedule, check the theorem's properties on the trace,
collect metrics, and aggregate over a battery of namings and adversaries.
:func:`sweep` is that loop; :class:`SweepResult` is what the benchmark
tables are printed from.

The (naming × adversary) cells of a sweep are independent runs, so the
loop is expressed as an ordered ``map`` over an executor — the same
serial/parallel abstraction the exploration backends use
(:class:`~repro.runtime.backends.SerialExecutor` /
:class:`~repro.runtime.backends.ProcessExecutor`).  Every adversary's
``reset()`` reseeds from its stored seed, so cells are independent of
execution order and the executor choice changes wall time only, never
the records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple, Union

from repro.analysis.metrics import RunMetrics, collect_metrics
from repro.errors import ConfigurationError, SpecViolation
from repro.memory.naming import NamingAssignment
from repro.obs.telemetry import NULL_TELEMETRY, TelemetrySink
from repro.runtime.adversary import Adversary
from repro.runtime.automaton import Algorithm
from repro.runtime.events import Trace
from repro.runtime.system import System
from repro.spec.properties import PropertyChecker


@dataclass
class RunRecord:
    """One (naming, adversary) cell of a sweep."""

    naming: str
    adversary: str
    trace: Trace
    metrics: RunMetrics
    violations: List[SpecViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every checked property held."""
        return not self.violations


@dataclass
class SweepResult:
    """All runs of one sweep, with aggregate queries.

    Since the sweep-farm refactor this is a *derived* view: the sweep
    drains a run table (:mod:`repro.farm.runtable`) and re-derives the
    ``SweepResult`` from the resulting
    :class:`~repro.farm.orchestrator.FarmResult` — kept as the stable
    aggregate API the experiment scripts and benchmark tables consume.
    The farm-level record (per-cell status/attempts/claims) rides on
    :attr:`farm` for callers that want it.
    """

    algorithm: str
    records: List[RunRecord] = field(default_factory=list)
    #: The run-table view this result was derived from (None only for
    #: hand-built results in tests).
    farm: Optional[Any] = field(default=None, repr=False, compare=False)

    @property
    def runs(self) -> int:
        """Total runs performed."""
        return len(self.records)

    @property
    def all_ok(self) -> bool:
        """True when no run violated any checked property."""
        return all(record.ok for record in self.records)

    @property
    def failures(self) -> List[RunRecord]:
        """Runs with at least one violation."""
        return [record for record in self.records if not record.ok]

    def metric_values(self, extract: Callable[[RunRecord], float]) -> List[float]:
        """Apply ``extract`` to every record (for distribution summaries)."""
        return [extract(record) for record in self.records]

    def describe_failures(self, limit: int = 3) -> str:
        """Short multi-line description of the first few failures."""
        lines = []
        for record in self.failures[:limit]:
            for violation in record.violations:
                lines.append(
                    f"[{record.naming} / {record.adversary}] {violation}"
                )
        remaining = len(self.failures) - limit
        if remaining > 0:
            lines.append(f"... and {remaining} more failing runs")
        return "\n".join(lines)


#: Worker-process payload for parallel sweeps: (algorithm_factory,
#: inputs, cells, checkers_factory, max_steps).  Planted once per worker
#: via the executor's initializer hook; under the default ``fork`` start
#: method it is inherited, not pickled, so closure-based factories (the
#: house style in benchmarks) keep working in parallel sweeps.
_SweepPayload = Tuple[
    Callable[[], Algorithm],
    Any,
    Tuple[Tuple[NamingAssignment, Adversary], ...],
    Callable[..., Iterable[PropertyChecker]],
    int,
]

_SWEEP: Optional[_SweepPayload] = None


def _init_sweep_worker(payload: _SweepPayload) -> None:
    global _SWEEP
    _SWEEP = payload


def _run_sweep_cell(index: int) -> RunRecord:
    """Run one (naming, adversary) cell of the planted sweep payload.

    A module-level function of the cell *index* only, so the executor's
    task traffic is one int per cell; everything heavy rides in the
    per-process payload.  Depends on nothing mutable across calls —
    adversaries reseed in ``system.run`` — so serial and parallel
    executors produce identical records in identical order.
    """
    assert _SWEEP is not None, "sweep worker initializer did not run"
    algorithm_factory, inputs, cells, checkers_factory, max_steps = _SWEEP
    naming, adversary = cells[index]
    system = System(algorithm_factory(), inputs, naming=naming)
    trace = system.run(adversary, max_steps=max_steps)
    record = RunRecord(
        naming=naming.describe(),
        adversary=adversary.describe(),
        trace=trace,
        metrics=collect_metrics(trace),
    )
    try:
        checkers = checkers_factory(adversary)
    except TypeError:
        checkers = checkers_factory()
    for checker in checkers:
        try:
            checker.check(trace)
        except SpecViolation as exc:
            record.violations.append(exc)
    return record


def sweep(
    algorithm_factory: Callable[[], Algorithm],
    inputs,
    namings: Sequence[NamingAssignment],
    adversaries: Sequence[Adversary],
    checkers_factory: Callable[..., Iterable[PropertyChecker]],
    max_steps: int = 200_000,
    backend: Optional[Union[str, Any]] = None,
    telemetry: Optional[TelemetrySink] = None,
    manifest_dir: Optional[Union[str, Path]] = None,
) -> SweepResult:
    """Run every naming × adversary combination and check each trace.

    ``algorithm_factory`` is called once per run (some algorithms carry
    per-instance state such as slot counters).  ``checkers_factory``
    builds fresh checkers per run; it is called with the adversary when
    it accepts an argument, so callers can drop liveness checks for
    schedules that give no solo opportunities (obstruction-freedom
    guarantees nothing under, say, strict round-robin — and Figure 2
    really does livelock there, which is a feature of the model, not a
    bug).  Violations are *collected*, not raised — impossibility-side
    sweeps count them.

    ``backend`` fans the independent cells out, in the same vocabulary
    the explorer uses: ``"serial"`` (the default — the historical
    in-process loop via
    :class:`~repro.runtime.backends.SerialExecutor`), ``"process"``
    (worker processes via
    :class:`~repro.runtime.backends.ProcessExecutor`, bit-identical
    records, see module docstring), or an executor instance.

    ``telemetry`` receives the per-sweep counters (``sweep.cells``,
    ``sweep.violations``) and the ``sweep.map`` phase timer;
    ``manifest_dir`` additionally writes one
    :class:`~repro.obs.manifest.RunManifest` per cell (NDJSON, one line
    per cell) into that directory — the after-the-fact audit record of
    what each cell ran.

    The grid runs over an in-memory run table
    (:class:`~repro.farm.runtable.MemoryRunTable`) — the same
    claim/finish protocol the disk-backed sweep farm uses (``python -m
    repro sweep --out DIR``), batch-claimed so the single-call
    behaviour is unchanged.  The returned result carries the farm-level
    view on ``result.farm``.
    """
    from repro.farm.orchestrator import FarmResult
    from repro.farm.runtable import Cell, MemoryRunTable
    from repro.runtime.backends import resolve_executor

    chosen = resolve_executor(backend if backend is not None else "serial")
    if telemetry is None:
        telemetry = NULL_TELEMETRY

    cells = tuple(
        (naming, adversary) for naming in namings for adversary in adversaries
    )
    # The in-memory run table: the whole grid is claimed up front and
    # mapped in one ordered batch — the same claim/finish protocol the
    # disk farm drains cell-by-cell, collapsed to the historical
    # single-call behaviour (records bit-identical to the pre-farm
    # sweep; the executor sees the same map over the same indices).
    table = MemoryRunTable(
        [Cell(index=k, kind="run", payload=pair) for k, pair in enumerate(cells)]
    )
    claimed = table.claim_all("sweep")
    payload: _SweepPayload = (
        algorithm_factory, inputs, cells, checkers_factory, max_steps,
    )
    with telemetry.phase("sweep.map"):
        records = chosen.map(
            _run_sweep_cell,
            [cell.index for cell in claimed],
            initializer=_init_sweep_worker,
            initargs=(payload,),
        )
    for cell, record in zip(claimed, records):
        table.finish(cell.index, record)
    farm = FarmResult(problem=algorithm_factory().name, rows=table.rows())
    result = farm.to_sweep_result()
    result.farm = farm
    if telemetry.enabled:
        telemetry.count("sweep.cells", len(records))
        telemetry.count(
            "sweep.violations",
            sum(len(record.violations) for record in records),
        )
        telemetry.event(
            "sweep.done",
            algorithm=result.algorithm,
            cells=len(records),
            backend=chosen.name,
            workers=chosen.workers,
            all_ok=result.all_ok,
        )
    if manifest_dir is not None:
        write_sweep_manifests(
            result, Path(manifest_dir),
            backend=chosen.name, workers=chosen.workers,
            max_steps=max_steps,
        )
    return result


#: Sentinel distinguishing "keyword not passed" from an explicit value,
#: so the deprecated execution keywords warn only when actually used.
_UNSET: Any = object()


def sweep_problem(
    problem: str,
    namings: Sequence[NamingAssignment],
    adversaries: Sequence[Adversary],
    checkers_factory: Callable[..., Iterable[PropertyChecker]],
    instance: Optional[str] = None,
    params: Optional[dict] = None,
    max_steps: Any = _UNSET,
    backend: Any = _UNSET,
    telemetry: Any = _UNSET,
    manifest_dir: Optional[Union[str, Path]] = None,
    *,
    request: Optional[Any] = None,
) -> SweepResult:
    """:func:`sweep`, with the algorithm resolved through the problem
    registry instead of a hand-built factory.

    ``problem`` is a :mod:`repro.problems` key (e.g.
    ``"figure-1-mutex"``); the algorithm factory and inputs come from
    the spec.  Parameters are taken from, in order of precedence:
    ``params`` (an explicit dict), the registry instance named by
    ``instance``, or — when both are omitted — the spec's first declared
    instance.  Everything else forwards to :func:`sweep`.

    Execution choices (``max_steps``, ``backend``, ``telemetry``, plus
    ``instance``/``params`` defaults) ride on a
    :class:`~repro.request.RunRequest` passed as ``request=``; the
    pre-request ``max_steps=``/``backend=``/``telemetry=`` keywords
    still work but emit ``DeprecationWarning`` (removed in PR 11).
    """
    import warnings
    from functools import partial

    from repro.problems import get_problem
    from repro.request import deprecated_keywords_message

    legacy = {
        name: value
        for name, value in (
            ("backend", backend),
            ("max_steps", max_steps),
            ("telemetry", telemetry),
        )
        if value is not _UNSET
    }
    if legacy:
        warnings.warn(
            deprecated_keywords_message("sweep_problem", sorted(legacy)),
            DeprecationWarning,
            stacklevel=2,
        )
    backend = legacy.get("backend")
    max_steps = legacy.get("max_steps")
    telemetry = legacy.get("telemetry")
    if request is not None:
        backend = request.merged("backend", backend)
        max_steps = request.merged("max_steps", max_steps)
        telemetry = request.merged("telemetry", telemetry)
        if instance is None and request.instance is not None:
            instance = request.instance
        if params is None and request.params is not None:
            params = request.params_dict()
    if max_steps is None:
        max_steps = 200_000

    spec = get_problem(problem)
    if params is not None:
        if instance is not None:
            raise ConfigurationError(
                "pass either params= or instance=, not both"
            )
        chosen_params = dict(params)
    elif instance is not None:
        chosen_params = spec.instance(instance).params_dict()
    elif spec.instances:
        chosen_params = spec.instances[0].params_dict()
    else:
        chosen_params = {}
    return sweep(
        partial(spec.build, chosen_params),
        spec.inputs(chosen_params),
        namings,
        adversaries,
        checkers_factory,
        max_steps=max_steps,
        backend=backend,
        telemetry=telemetry,
        manifest_dir=manifest_dir,
    )


def write_sweep_manifests(
    result: SweepResult,
    directory: Path,
    backend: str = "serial",
    workers: int = 1,
    max_steps: int = 0,
) -> Path:
    """Write one manifest per sweep cell as NDJSON under ``directory``.

    The file is named after the algorithm (slugged); an existing file
    gets a numeric suffix instead of being overwritten, so repeated
    sweeps in one telemetry directory all keep their records.
    """
    from repro.obs.manifest import RunManifest, write_manifests_ndjson

    slug = "".join(
        ch if ch.isalnum() or ch in "-_" else "-" for ch in result.algorithm.lower()
    ).strip("-")
    target = directory / f"sweep-{slug}.ndjson"
    suffix = 1
    while target.exists():
        suffix += 1
        target = directory / f"sweep-{slug}-{suffix}.ndjson"
    manifests = []
    for index, record in enumerate(result.records):
        manifests.append(
            RunManifest.create(
                kind="sweep-cell",
                algorithm=result.algorithm,
                parameters={"cell": index, "max_steps": max_steps},
                naming=record.naming,
                adversary=record.adversary,
                backend=backend,
                workers=workers,
                outcome={
                    "verdict": "ok" if record.ok else "violation",
                    "events": len(record.trace),
                    "violations": [str(v) for v in record.violations],
                },
            )
        )
    return write_manifests_ndjson(manifests, target)


def gives_solo_opportunities(adversary: Adversary) -> bool:
    """Whether a schedule eventually lets each process run alone.

    Used to decide if obstruction-free *termination* may be demanded of
    a run driven by this adversary.
    """
    from repro.runtime.adversary import SoloAdversary, StagedObstructionAdversary

    return isinstance(adversary, (SoloAdversary, StagedObstructionAdversary))


def solo_run(
    algorithm_factory: Callable[[], Algorithm],
    inputs,
    pid,
    naming: Optional[NamingAssignment] = None,
    max_steps: int = 1_000_000,
) -> Trace:
    """Run a single process alone to completion (obstruction-free bounds).

    All other participants exist (their views are allocated) but never
    take a step — the paper's "runs alone from the beginning" scenario.
    """
    from repro.runtime.adversary import SoloAdversary

    system = System(algorithm_factory(), inputs, naming=naming)
    return system.run(SoloAdversary(pid), max_steps=max_steps)
