"""Plain-text table rendering for experiment reports.

The benchmark harness prints its results as aligned ASCII tables (the
paper has no numeric tables of its own — each of our tables corresponds
to one theorem-as-experiment, see EXPERIMENTS.md).  No third-party
dependency; right-aligns numbers, left-aligns text.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    formatted: List[List[str]] = [
        [_format_cell(value) for value in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in formatted:
        for col, cell in enumerate(row):
            widths[col] = max(widths[col], len(cell))

    def render_row(cells: Sequence[str], original: Optional[Sequence[Any]] = None) -> str:
        parts = []
        for col, cell in enumerate(cells):
            source = original[col] if original is not None else None
            if isinstance(source, (int, float)) and not isinstance(source, bool):
                parts.append(cell.rjust(widths[col]))
            else:
                parts.append(cell.ljust(widths[col]))
        return "  ".join(parts).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(list(headers)))
    lines.append(render_row(["-" * w for w in widths]))
    for original, row in zip(rows, formatted):
        lines.append(render_row(row, original))
    return "\n".join(lines)


def print_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> None:
    """Print :func:`render_table` output followed by a blank line."""
    print(render_table(headers, rows, title=title))
    print()
