"""Specification of the consensus and election problems (paper §4).

    "There exists a decision value v such that: (1) Agreement: all
    non-faulty processes that eventually decide, decide on the same value
    v, and (2) Validity: v is the input value of at least one of the
    processes."

plus the progress condition:

    "Obstruction-freedom requires that each process that runs alone, for
    sufficiently long time, must eventually decide."

Checkers:

* :class:`AgreementChecker` — all decisions in the trace are equal;
* :class:`ValidityChecker` — every decision is some participant's input;
* :class:`ObstructionFreeTerminationChecker` — under a schedule that gave
  each process a solo suffix (e.g.
  :class:`~repro.runtime.adversary.StagedObstructionAdversary`), every
  non-crashed process decided;
* :class:`SoloStepBoundChecker` — the quantitative version of
  Theorem 4.1's termination argument: a process running alone from the
  start decides within ``(m + 1) * (m + 1)`` operations (at most ``m``
  write-iterations of cost ``m + 1`` each, plus the final deciding
  collect).  Tests use it to confirm the paper's "after at most 2n - 1
  iterations" bound.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import (
    AgreementViolation,
    TerminationViolation,
    ValidityViolation,
)
from repro.runtime.events import Trace
from repro.spec.properties import PropertyChecker


class AgreementChecker(PropertyChecker):
    """All processes that decided, decided the same value."""

    name = "agreement"

    def check(self, trace: Trace) -> None:
        decided = trace.decided()
        if len(set(decided.values())) > 1:
            raise AgreementViolation(
                f"conflicting decisions: {decided}", trace=trace
            )


class ValidityChecker(PropertyChecker):
    """Every decision is the input of at least one participant.

    Parameters
    ----------
    inputs:
        Mapping pid -> input of the run being checked.
    """

    name = "validity"

    def __init__(self, inputs):
        self.inputs = dict(inputs)

    def check(self, trace: Trace) -> None:
        legal = set(self.inputs.values())
        for pid, value in trace.decided().items():
            if value not in legal:
                raise ValidityViolation(
                    f"process {pid} decided {value!r}, which is not the "
                    f"input of any participant (inputs: {self.inputs})",
                    trace=trace,
                )


class ElectionChecker(PropertyChecker):
    """Election outputs: unanimous and a participant's identifier (§4)."""

    name = "election"

    def check(self, trace: Trace) -> None:
        decided = trace.decided()
        if len(set(decided.values())) > 1:
            raise AgreementViolation(
                f"election outputs disagree: {decided}", trace=trace
            )
        for pid, leader in decided.items():
            if leader not in trace.pids:
                raise ValidityViolation(
                    f"process {pid} elected {leader!r}, who is not a "
                    f"participant ({list(trace.pids)})",
                    trace=trace,
                )


class ObstructionFreeTerminationChecker(PropertyChecker):
    """Every non-crashed process decided, given solo opportunities.

    Only meaningful for traces produced by schedules that eventually let
    each process run alone (staged obstruction, solo adversaries, or
    completed runs).
    """

    name = "of-termination"

    def check(self, trace: Trace) -> None:
        live = [pid for pid in trace.pids if pid not in trace.crash_seq]
        undecided = [pid for pid in live if pid not in trace.halt_seq]
        if undecided:
            raise TerminationViolation(
                f"processes {undecided} did not terminate despite solo "
                f"opportunities (run stopped: {trace.stop_reason!r}, "
                f"{len(trace)} events)",
                trace=trace,
            )


class SoloStepBoundChecker(PropertyChecker):
    """Quantitative obstruction-freedom: solo termination within a bound.

    Parameters
    ----------
    max_steps:
        Upper bound on the number of operations the solo process may take
        before halting.
    pid:
        The process expected to run solo; defaults to the only pid that
        took steps.
    """

    name = "solo-step-bound"

    def __init__(self, max_steps: int, pid: Optional[int] = None):
        self.max_steps = max_steps
        self.pid = pid

    def check(self, trace: Trace) -> None:
        pid = self.pid
        if pid is None:
            steppers = {event.pid for event in trace.events}
            if len(steppers) != 1:
                raise TerminationViolation(
                    f"solo bound check expects exactly one process to have "
                    f"stepped, found {sorted(steppers)}",
                    trace=trace,
                )
            pid = steppers.pop()
        steps = trace.steps_taken(pid)
        if pid not in trace.halt_seq:
            raise TerminationViolation(
                f"process {pid} did not decide within its solo run "
                f"({steps} steps)",
                trace=trace,
            )
        if steps > self.max_steps:
            raise TerminationViolation(
                f"process {pid} needed {steps} solo steps, exceeding the "
                f"bound {self.max_steps}",
                trace=trace,
            )


def consensus_checkers(inputs):
    """The standard battery for consensus traces."""
    return (
        AgreementChecker(),
        ValidityChecker(inputs),
        ObstructionFreeTerminationChecker(),
    )
