"""Property checker framework for recorded traces.

Each theorem in the paper claims a property of *runs*; the classes here
check those properties on recorded :class:`~repro.runtime.events.Trace`
objects.  A checker either passes silently or raises the matching
:class:`~repro.errors.SpecViolation` subclass with a diagnostic message
(and the trace attached), so that

* tests assert correctness by just calling the checker, and
* the lower-bound experiments *catch* the violation to demonstrate an
  impossibility result.

``check_all`` composes checkers; every checker also offers ``holds`` for
boolean-style use in sweeps.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.errors import SpecViolation
from repro.runtime.events import Trace


class PropertyChecker:
    """Base class: validates one property of a trace."""

    #: Short name used in experiment report tables.
    name: str = "property"

    def check(self, trace: Trace) -> None:
        """Raise a :class:`SpecViolation` subclass if the property fails."""
        raise NotImplementedError

    def holds(self, trace: Trace) -> bool:
        """Boolean form of :meth:`check`."""
        try:
            self.check(trace)
        except SpecViolation:
            return False
        return True

    def describe(self) -> str:
        """One-line description for reports."""
        return self.name


def check_all(trace: Trace, checkers: Iterable[PropertyChecker]) -> None:
    """Run every checker against ``trace``; first violation propagates."""
    for checker in checkers:
        checker.check(trace)


def violations(trace: Trace, checkers: Iterable[PropertyChecker]) -> List[SpecViolation]:
    """Collect (rather than raise) all violations found in ``trace``."""
    found: List[SpecViolation] = []
    for checker in checkers:
        try:
            checker.check(trace)
        except SpecViolation as exc:
            found.append(exc)
    return found


def first_violation(
    trace: Trace, checkers: Iterable[PropertyChecker]
) -> Optional[SpecViolation]:
    """The first violation found in ``trace``, or ``None``."""
    found = violations(trace, checkers)
    return found[0] if found else None
