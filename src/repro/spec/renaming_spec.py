"""Specification of adaptive perfect renaming (paper §5).

    "A perfect renaming algorithm allows n processes with initially
    distinct names from a large name space to acquire distinct new names
    from the set {1..n}.  A perfect renaming algorithm is adaptive if,
    for any 1 <= k <= n, when only k processes participate, they acquire
    distinct new names from the set {1..k}."

Checkers mirror the three theorems:

* :class:`UniqueNamesChecker` — Theorem 5.2's distinctness;
* :class:`NameRangeChecker` — Theorem 5.2's range ``{1..n}`` and, with
  ``adaptive=True`` and the participant count, Theorem 5.3's tighter
  ``{1..k}``;
* :class:`RenamingTerminationChecker` — Theorem 5.1 under schedules with
  solo opportunities.
"""

from __future__ import annotations

from repro.errors import (
    NameRangeViolation,
    TerminationViolation,
    UniquenessViolation,
)
from repro.runtime.events import Trace
from repro.spec.properties import PropertyChecker


class UniqueNamesChecker(PropertyChecker):
    """No two processes acquired the same new name."""

    name = "unique-names"

    def check(self, trace: Trace) -> None:
        acquired = trace.decided()
        names = list(acquired.values())
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise UniquenessViolation(
                f"duplicate new names {dupes} acquired: {acquired}",
                trace=trace,
            )


class NameRangeChecker(PropertyChecker):
    """All new names come from ``{1..bound}``.

    For Theorem 5.2 pass ``bound=n``; for Theorem 5.3 (adaptivity) pass
    ``bound=k``, the number of actual participants.
    """

    name = "name-range"

    def __init__(self, bound: int):
        self.bound = bound

    def check(self, trace: Trace) -> None:
        for pid, name in trace.decided().items():
            if not isinstance(name, int) or not 1 <= name <= self.bound:
                raise NameRangeViolation(
                    f"process {pid} acquired name {name!r}, outside "
                    f"{{1..{self.bound}}}",
                    trace=trace,
                )


class RenamingTerminationChecker(PropertyChecker):
    """Every non-crashed participant acquired a name (Theorem 5.1 proxy)."""

    name = "renaming-termination"

    def check(self, trace: Trace) -> None:
        live = [pid for pid in trace.pids if pid not in trace.crash_seq]
        unnamed = [pid for pid in live if trace.outputs.get(pid) is None]
        if unnamed:
            raise TerminationViolation(
                f"processes {unnamed} never acquired a new name "
                f"(run stopped: {trace.stop_reason!r}, {len(trace)} events)",
                trace=trace,
            )


def renaming_checkers(participants: int):
    """The standard battery for renaming traces with ``participants``
    actual participants (adaptivity bound)."""
    return (
        UniqueNamesChecker(),
        NameRangeChecker(bound=participants),
        RenamingTerminationChecker(),
    )
