"""Trace checkers for every property the paper's theorems claim.

* :mod:`repro.spec.properties` — checker framework;
* :mod:`repro.spec.mutex_spec` — mutual exclusion, deadlock-freedom,
  wait-free exit (§3.1);
* :mod:`repro.spec.consensus_spec` — agreement, validity, election,
  obstruction-free termination and solo step bounds (§4);
* :mod:`repro.spec.renaming_spec` — uniqueness, name range, adaptivity,
  termination (§5).
"""

from repro.spec.consensus_spec import (
    AgreementChecker,
    ElectionChecker,
    ObstructionFreeTerminationChecker,
    SoloStepBoundChecker,
    ValidityChecker,
    consensus_checkers,
)
from repro.spec.mutex_spec import (
    BoundedBypassChecker,
    DeadlockFreedomChecker,
    ExitWaitFreeChecker,
    MutualExclusionChecker,
    mutex_checkers,
)
from repro.spec.properties import (
    PropertyChecker,
    check_all,
    first_violation,
    violations,
)
from repro.spec.renaming_spec import (
    NameRangeChecker,
    RenamingTerminationChecker,
    UniqueNamesChecker,
    renaming_checkers,
)

__all__ = [
    "PropertyChecker",
    "check_all",
    "violations",
    "first_violation",
    "MutualExclusionChecker",
    "DeadlockFreedomChecker",
    "BoundedBypassChecker",
    "ExitWaitFreeChecker",
    "mutex_checkers",
    "AgreementChecker",
    "ValidityChecker",
    "ElectionChecker",
    "ObstructionFreeTerminationChecker",
    "SoloStepBoundChecker",
    "consensus_checkers",
    "UniqueNamesChecker",
    "NameRangeChecker",
    "RenamingTerminationChecker",
    "renaming_checkers",
]
