"""Specification of the mutual exclusion problem (paper §3.1).

    "Deadlock-freedom: if a process is trying to enter its critical
    section, then some process, not necessarily the same one, eventually
    enters its critical section.  Mutual exclusion: no two processes are
    in their critical sections at the same time."

On finite traces:

* :class:`MutualExclusionChecker` is exact — it inspects every pair of
  critical-section intervals for overlap;
* :class:`DeadlockFreedomChecker` checks the finite-run proxy: a
  sufficiently long fair run in which processes are trying must contain
  critical-section entries, and a run that stopped because everything
  halted must have given each process its requested number of entries.
  (Unbounded liveness is certified separately: the exhaustive explorer
  proves the absence of stuck states, and the Theorem 3.4 attack proves
  *violations* by exhibiting a state cycle — see
  :mod:`repro.lowerbounds.symmetry`.)
* :class:`ExitWaitFreeChecker` checks §3.1's side requirement that the
  exit section is wait-free: between ``ExitCritOp`` and the next
  ``EnterCritOp``/halt of the same process there are at most ``m`` of its
  own steps (Figure 1's exit code is one write per register), and none of
  them is a read — i.e. the exit code never waits on others.
"""

from __future__ import annotations

from repro.errors import DeadlockFreedomViolation, MutualExclusionViolation
from repro.runtime.events import Trace
from repro.spec.properties import PropertyChecker


class MutualExclusionChecker(PropertyChecker):
    """No two critical-section intervals of different processes overlap."""

    name = "mutual-exclusion"

    def check(self, trace: Trace) -> None:
        intervals = trace.critical_section_intervals()
        horizon = len(trace)
        for idx, first in enumerate(intervals):
            for second in intervals[idx + 1 :]:
                if first.pid != second.pid and first.overlaps(second, horizon):
                    raise MutualExclusionViolation(
                        f"processes {first.pid} and {second.pid} were in "
                        f"their critical sections simultaneously "
                        f"(intervals [{first.enter_seq}, {first.exit_seq}] "
                        f"and [{second.enter_seq}, {second.exit_seq}])",
                        trace=trace,
                    )


class DeadlockFreedomChecker(PropertyChecker):
    """Finite-run deadlock-freedom proxy.

    Parameters
    ----------
    min_entries:
        The number of critical-section entries the run must contain to
        count as "progress happened".  For a completed run (stop reason
        ``all-halted``) the default demands every process finished its
        visits; for a truncated fair run, at least one entry.
    """

    name = "deadlock-freedom"

    def __init__(self, min_entries: int = 1):
        self.min_entries = min_entries

    def check(self, trace: Trace) -> None:
        entries = trace.critical_section_entries()
        if trace.stop_reason == "all-halted":
            # Everyone who participated retired voluntarily; progress is
            # witnessed by every process's recorded visit count.
            missing = [
                pid
                for pid in trace.pids
                if pid not in trace.crash_seq and trace.outputs.get(pid) in (None, 0)
            ]
            if missing:
                raise DeadlockFreedomViolation(
                    f"run completed but processes {missing} never entered "
                    "their critical section",
                    trace=trace,
                )
            return
        if entries < self.min_entries:
            raise DeadlockFreedomViolation(
                f"{len(trace)}-event run contains {entries} critical-section "
                f"entries (expected at least {self.min_entries}); processes "
                "are starving in their entry sections",
                trace=trace,
            )


class ExitWaitFreeChecker(PropertyChecker):
    """The exit section is wait-free and write-only (§3.1 requirement).

    Checks that after each ``ExitCritOp`` the process performs at most
    ``max_exit_steps`` operations before its next ``EnterCritOp``/halt
    *and* that none of those operations is a shared-memory read (reading
    would allow waiting on other processes).
    """

    name = "exit-wait-free"

    def __init__(self, max_exit_steps: int):
        self.max_exit_steps = max_exit_steps

    def check(self, trace: Trace) -> None:
        for pid in trace.pids:
            exit_steps = 0
            for event in trace.events_by(pid):
                if event.phase != "exit":
                    exit_steps = 0
                    continue
                exit_steps += 1
                if event.is_read():
                    raise DeadlockFreedomViolation(
                        f"process {pid} read shared memory during its exit "
                        f"section (event {event.seq}); the exit section "
                        "must be wait-free",
                        trace=trace,
                    )
                if exit_steps > self.max_exit_steps:
                    raise DeadlockFreedomViolation(
                        f"process {pid} took more than "
                        f"{self.max_exit_steps} steps in its exit section",
                        trace=trace,
                    )


class BoundedBypassChecker(PropertyChecker):
    """Starvation-freedom, quantitatively: bounded bypass.

    §8 lists "the existence of starvation-free mutual exclusion
    algorithms" (in the anonymous model) as open.  This checker measures
    the finite-trace analogue: while a process is continuously in its
    entry section, how many times do *others* enter the critical section
    before it does?  An algorithm with bypass bound ``B`` never lets that
    count exceed ``B`` (Peterson has ``B = 1``); deadlock-free-but-not-
    starvation-free algorithms (like Figure 1) admit schedules with
    arbitrarily high bypass, which the open-problem bench demonstrates.

    Requires phase-stamped events (all mutex automata produce them).
    """

    name = "bounded-bypass"

    def __init__(self, bound: int):
        self.bound = bound

    def max_bypass(self, trace: Trace):
        """The worst bypass count observed, with the suffering process.

        A process starts "waiting" at its first entry-phase event after
        leaving the critical section; every ``EnterCritOp`` by *another*
        process while it waits counts as one bypass; its own entry
        resets its counter.
        """
        from repro.runtime.ops import EnterCritOp

        worst = (0, None)
        waiting_since: dict = {}
        bypasses: dict = {}
        for event in trace.events:
            if isinstance(event.op, EnterCritOp):
                for pid in list(waiting_since):
                    if pid != event.pid:
                        bypasses[pid] = bypasses.get(pid, 0) + 1
                        if bypasses[pid] > worst[0]:
                            worst = (bypasses[pid], pid)
                waiting_since.pop(event.pid, None)
                bypasses.pop(event.pid, None)
            elif event.phase == "entry" and event.pid not in waiting_since:
                waiting_since[event.pid] = event.seq
        return worst

    def check(self, trace: Trace) -> None:
        count, pid = self.max_bypass(trace)
        if count > self.bound:
            raise DeadlockFreedomViolation(
                f"process {pid} was bypassed {count} times while waiting "
                f"(bound {self.bound}); the algorithm is not "
                f"{self.bound}-bounded-bypass on this trace",
                trace=trace,
            )


def mutex_checkers(m: int, min_entries: int = 1):
    """The standard battery for mutual-exclusion traces with ``m`` registers."""
    return (
        MutualExclusionChecker(),
        DeadlockFreedomChecker(min_entries=min_entries),
        ExitWaitFreeChecker(max_exit_steps=m),
    )
