"""Render run manifests as a human-readable summary table.

``python -m repro report <manifest-or-dir>`` lands here.  The renderer
is deliberately thin: it trusts the manifest schema (everything it
reads is validated on load), leads with the verdict, and folds the most
useful outcome/telemetry numbers into fixed columns so a directory of
bench-cell manifests reads like the E14d table it came from.  Exit
status is the audit verdict: 0 when every manifest validated, 2 when
the input could not be read or failed validation.
"""

from __future__ import annotations

import os
import sys
import warnings
from pathlib import Path
from typing import Any, List, Optional, Sequence

from repro.analysis.tables import render_table
from repro.errors import ManifestValidationError
from repro.obs.manifest import (
    RunManifest,
    TruncatedManifestWarning,
    load_manifests,
)

__all__ = ["render_report", "render_farm_summary", "report_main"]


def _outcome_number(manifest: RunManifest, *keys: str) -> Any:
    """First outcome value present among ``keys`` (engines differ)."""
    for key in keys:
        value = manifest.outcome.get(key)
        if value is not None:
            return value
    return ""


def _dominant_phase(manifest: RunManifest) -> str:
    """The phase that ate the most wall time, e.g. ``walk 98% (1.2s)``."""
    phases = manifest.telemetry.get("phases", {})
    if not phases:
        return ""
    totals = {
        name: block.get("seconds", 0.0)
        for name, block in phases.items()
        if isinstance(block, dict)
    }
    if not totals:
        return ""
    name = max(totals, key=lambda key: totals[key])
    overall = sum(totals.values())
    share = (totals[name] / overall * 100.0) if overall > 0 else 0.0
    return f"{name} {share:.0f}% ({totals[name]:.3f}s)"


def render_report(manifests: Sequence[RunManifest], title: Optional[str] = None) -> str:
    """One table row per manifest, newest schema fields first."""
    rows: List[List[Any]] = []
    for manifest in manifests:
        rows.append(
            [
                manifest.kind,
                manifest.algorithm,
                manifest.naming,
                f"{manifest.backend} x{manifest.workers}",
                manifest.verdict(),
                _outcome_number(manifest, "states", "steps", "runs"),
                _outcome_number(manifest, "events"),
                _outcome_number(manifest, "wall_seconds"),
                _dominant_phase(manifest),
                (manifest.git_rev or "")[:12],
            ]
        )
    return render_table(
        [
            "kind",
            "algorithm",
            "naming",
            "backend",
            "verdict",
            "states/steps",
            "events",
            "wall s",
            "dominant phase",
            "git rev",
        ],
        rows,
        title=title,
    )


def render_farm_summary(directory: Path) -> str:
    """Status summary of a sweep-farm directory's run table.

    One line per status count plus the grid's identity and the disk
    footprint of any retained graph stores — the "how far did my farm
    get" view ``repro report <farm-dir>`` leads with.
    """
    from repro.farm import GRAPHS_DIRNAME, farm_result, graph_store_bytes

    result = farm_result(directory)
    counts = result.counts
    lines = [f"sweep farm — {directory}", result.summary()]
    claimed = counts["claimed"]
    if claimed:
        lines.append(
            f"note: {claimed} cell(s) still claimed — a live worker, or a "
            "killed one (resume with: python -m repro sweep --resume "
            f"{directory})"
        )
    retained = graph_store_bytes(directory / GRAPHS_DIRNAME)
    if retained:
        lines.append(f"retained graph stores: {retained} bytes on disk")
    for row in result.errors:
        lines.append(f"[error] cell {row.index}: {row.error}")
    return "\n".join(lines)


def report_main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI body for ``python -m repro report <manifest-or-dir>``."""
    args = list(argv or [])
    if len(args) != 1 or args[0] in ("-h", "--help"):
        print(
            "usage: python -m repro report "
            "<manifest.json | manifests.ndjson | dir | farm-dir>\n"
            "\n"
            "Validate run manifests against the schema and print a summary\n"
            "table (see docs/OBSERVABILITY.md for the manifest format).\n"
            "A sweep-farm directory (one holding runs.sqlite) additionally\n"
            "gets its run-table status summary; its manifest streams are\n"
            "read tolerating a crash-truncated final line.",
            file=sys.stderr if len(args) != 1 else sys.stdout,
        )
        return 0 if args and args[0] in ("-h", "--help") else 2

    farm_dir: Optional[Path] = None
    source = Path(args[0])
    if source.is_dir() and (source / "runs.sqlite").exists():
        farm_dir = source
    try:
        if farm_dir is not None:
            from repro.farm import MANIFEST_PREFIX

            print(render_farm_summary(farm_dir))
            streams = sorted(farm_dir.glob(f"{MANIFEST_PREFIX}*.ndjson"))
            manifests: List[RunManifest] = []
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always", TruncatedManifestWarning)
                for stream in streams:
                    manifests.extend(
                        load_manifests(stream, tolerate_truncated_tail=True)
                    )
            for warning in caught:
                print(f"warning: {warning.message}", file=sys.stderr)
            if not streams:
                # A freshly created (or instantly killed) farm: status
                # summary above is the whole report.
                from repro.farm import farm_result

                return 1 if farm_result(farm_dir).errors else 0
        else:
            manifests = load_manifests(args[0])
    except ManifestValidationError as exc:
        print(f"invalid manifest(s): {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"cannot read {args[0]}: {exc}", file=sys.stderr)
        return 2
    try:
        print(
            render_report(
                manifests,
                title=f"run manifests — {len(manifests)} run(s), all schema-valid",
            )
        )
    except BrokenPipeError:
        # Piped through `head` and the reader closed early; the manifests
        # all validated, which is the exit status that matters.  Point
        # stdout at devnull so the interpreter's exit-time flush of the
        # dead pipe cannot raise a second time (the stdlib recipe).
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
    if farm_dir is not None:
        from repro.farm import farm_result

        return 1 if farm_result(farm_dir).errors else 0
    return 0
