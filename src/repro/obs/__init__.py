"""repro.obs — structured run observability (telemetry + manifests).

The paper's evaluation *is* its theorems, so the evidence quality of
every claim rests on knowing exactly what each run did: how many states
a walk visited, which phases dominated its wall time, whether dedup or a
budget truncation fired.  This package is the zero-dependency layer that
records those facts and makes them auditable after the fact:

:class:`Telemetry` / :class:`NullTelemetry`
    An in-memory sink of counters, gauges, monotonic phase timers and a
    bounded event log.  Hot paths receive a sink as an *optional* hook —
    the default :data:`NULL_TELEMETRY` advertises ``enabled = False`` so
    instrumented loops skip all recording work.

:class:`RunManifest`
    A versioned, machine-readable JSON record of one run: algorithm,
    parameters, naming, adversary, backend, host fingerprint, git
    revision, outcome, and the telemetry snapshot.  Manifests are what
    ``benchmarks/run_experiments.py --telemetry <dir>`` writes next to
    ``BENCH_explore.json`` and what ``python -m repro report`` renders.

The exporter speaks both one-file-per-run JSON and NDJSON (one manifest
per line) and every load path re-validates against the schema — a
manifest that does not validate is a bug in the producer, never silently
accepted.  See docs/OBSERVABILITY.md for the telemetry model and the
manifest schema.
"""

from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    RunManifest,
    TruncatedManifestWarning,
    host_fingerprint,
    load_manifests,
    validate_manifest,
    write_manifests_ndjson,
)
from repro.obs.report import render_report, report_main
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    TelemetrySink,
)

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "TelemetrySink",
    "RunManifest",
    "MANIFEST_SCHEMA",
    "validate_manifest",
    "host_fingerprint",
    "load_manifests",
    "write_manifests_ndjson",
    "TruncatedManifestWarning",
    "render_report",
    "report_main",
]
