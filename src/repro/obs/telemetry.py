"""In-memory telemetry: counters, gauges, phase timers, bounded events.

The design constraint is the explorer's hot loop: instrumentation must
cost (close to) nothing when disabled and stay cheap when enabled.  Two
decisions follow:

* the *disabled* sink is a distinct :class:`NullTelemetry` class whose
  methods are no-ops and whose :attr:`~TelemetrySink.enabled` flag is
  False — instrumented loops hoist ``telemetry.enabled`` into a local
  and skip recording entirely (the acceptance bar is < 5% overhead on
  the m=3 exhaustive mutex walk, measured in
  ``tests/obs/test_telemetry.py`` only qualitatively — CI machines are
  too noisy for a hard wall-time assert, so the differential tests pin
  *result* identity instead);
* a :class:`Telemetry` is plain dictionaries and a bounded
  :class:`~collections.deque` — no locks, no I/O, no background thread.
  One sink belongs to one run in one process; the work-stealing
  parallel backend keeps that true by instrumenting workers with plain
  in-process counters (chunks, states, steals, donations, inserts,
  duplicates, phase seconds) that ride home in each worker's result
  log — the coordinator replays them into the caller's sink during the
  merge phase, one ``parallel.worker`` event per worker plus aggregate
  ``parallel.*`` counts, so the sink itself never crosses a process
  boundary.

Phase timers use :func:`time.perf_counter` (monotonic); re-entering a
phase accumulates.  The event log is bounded (default 1024 entries,
oldest dropped first) so a pathological producer cannot turn telemetry
into a memory leak; ``events_dropped`` records how many were lost.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Deque, Dict, Iterator, List, Optional, Tuple

try:  # pragma: no cover - version-dependent import
    from typing import Protocol
except ImportError:  # pragma: no cover - Python 3.7 fallback, untested
    Protocol = object  # type: ignore[assignment]

__all__ = [
    "TelemetrySink",
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
]


class TelemetrySink(Protocol):
    """What instrumented code may call on the object it is handed.

    Implementations must make every method safe to call at any time —
    sinks are deliberately forgiving so that instrumentation can never
    turn a correct run into a crashed one.
    """

    #: Hot loops hoist this into a local and skip recording when False.
    enabled: bool

    def count(self, name: str, delta: int = 1) -> None:
        """Add ``delta`` to the counter ``name`` (created at 0)."""
        ...

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to its latest ``value``."""
        ...

    def event(self, name: str, **fields: Any) -> None:
        """Append a timestamped entry to the bounded event log."""
        ...

    def phase(self, name: str) -> "PhaseTimer":
        """Context manager accumulating wall time under phase ``name``."""
        ...


class PhaseTimer:
    """One timed section; returned by :meth:`Telemetry.phase`.

    Re-entrant in the sequential sense (enter/exit pairs may repeat and
    durations accumulate), not in the nested sense — nesting the *same*
    phase name double-counts and is on the caller.
    """

    __slots__ = ("_telemetry", "_name", "_started")

    def __init__(self, telemetry: "Telemetry", name: str) -> None:
        self._telemetry = telemetry
        self._name = name
        self._started: Optional[float] = None

    def __enter__(self) -> "PhaseTimer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        if self._started is None:  # pragma: no cover - misuse guard
            return
        elapsed = time.perf_counter() - self._started
        self._started = None
        seconds, entries = self._telemetry._phases.get(self._name, (0.0, 0))
        self._telemetry._phases[self._name] = (seconds + elapsed, entries + 1)


class _NullPhaseTimer:
    """The no-op twin of :class:`PhaseTimer`."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhaseTimer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


class Telemetry:
    """The recording sink: counters, gauges, phase timers, bounded events.

    Parameters
    ----------
    max_events:
        Bound on the event log; the oldest entries are dropped first and
        :attr:`events_dropped` counts the loss.  Counters, gauges and
        phases are per-name and therefore bounded by the instrumentation
        itself.
    clock:
        Timestamp source for events (seconds; default
        :func:`time.monotonic`).  Injectable so tests can pin event
        timestamps without sleeping.
    """

    enabled = True

    def __init__(self, max_events: int = 1024, clock: Any = time.monotonic) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        #: name -> (accumulated seconds, times entered)
        self._phases: Dict[str, Tuple[float, int]] = {}
        self._events: Deque[Tuple[float, str, Dict[str, Any]]] = deque(
            maxlen=max_events
        )
        self.events_dropped = 0
        self._clock = clock

    # -- recording ----------------------------------------------------------

    def count(self, name: str, delta: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + delta

    def gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def event(self, name: str, **fields: Any) -> None:
        if len(self._events) == self._events.maxlen:
            self.events_dropped += 1
        self._events.append((self._clock(), name, fields))

    def phase(self, name: str) -> PhaseTimer:
        return PhaseTimer(self, name)

    # -- reading ------------------------------------------------------------

    @property
    def counters(self) -> Dict[str, int]:
        """Counter name -> accumulated total (copy)."""
        return dict(self._counters)

    @property
    def gauges(self) -> Dict[str, float]:
        """Gauge name -> last recorded value (copy)."""
        return dict(self._gauges)

    @property
    def phases(self) -> Dict[str, Dict[str, float]]:
        """Phase name -> ``{"seconds": total, "entries": count}`` (copy)."""
        return {
            name: {"seconds": seconds, "entries": float(entries)}
            for name, (seconds, entries) in self._phases.items()
        }

    def events(self) -> Iterator[Tuple[float, str, Dict[str, Any]]]:
        """The retained ``(timestamp, name, fields)`` entries, oldest first."""
        return iter(tuple(self._events))

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready dump of everything recorded so far.

        This is the ``telemetry`` block embedded in a
        :class:`~repro.obs.manifest.RunManifest`; phase seconds are
        rounded to microseconds so manifests diff cleanly.
        """
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "phases": {
                name: {"seconds": round(seconds, 6), "entries": entries}
                for name, (seconds, entries) in self._phases.items()
            },
            "events": [
                {"t": round(ts, 6), "name": name, **fields}
                for ts, name, fields in self._events
            ],
            "events_dropped": self.events_dropped,
        }


class NullTelemetry:
    """The disabled sink: every method is a no-op.

    A dedicated class rather than ``Telemetry(enabled=False)`` so the
    hot-path guard is one attribute load (``telemetry.enabled``) and so
    the null sink is trivially picklable and shareable — there is one
    module-level :data:`NULL_TELEMETRY` instance and no reason ever to
    construct more (constructing more is still fine and tested).
    """

    enabled = False

    def count(self, name: str, delta: int = 1) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None

    def event(self, name: str, **fields: Any) -> None:
        return None

    def phase(self, name: str) -> _NullPhaseTimer:
        return _NULL_PHASE

    def snapshot(self) -> Dict[str, Any]:
        """Uniform shape with :meth:`Telemetry.snapshot`, always empty."""
        empty_events: List[Dict[str, Any]] = []
        return {
            "counters": {},
            "gauges": {},
            "phases": {},
            "events": empty_events,
            "events_dropped": 0,
        }


_NULL_PHASE = _NullPhaseTimer()

#: The shared disabled sink; the default value of every ``telemetry=``
#: hook in the library.
NULL_TELEMETRY = NullTelemetry()
