"""Run manifests: the versioned, machine-readable record of one run.

A :class:`RunManifest` answers, after the fact, "what exactly did this
run do?": which algorithm and parameters, under which naming/adversary,
on which backend, on what host, at which git revision, with what outcome
and what telemetry.  Manifests are plain JSON documents with a declared
schema version (:data:`MANIFEST_SCHEMA`), so they survive the code that
wrote them; every load path re-validates, and a document that fails the
check raises :class:`~repro.errors.ManifestValidationError` listing
*all* problems found rather than the first.

Two disk formats, both line-oriented diff-friendly:

* ``<name>.json`` — one manifest per file (what
  ``benchmarks/run_experiments.py --telemetry <dir>`` writes, one file
  per bench cell, next to ``BENCH_explore.json``);
* ``<name>.ndjson`` — one manifest per line, for sweeps with many cells.

:func:`load_manifests` accepts either format or a directory of them.
The schema itself is documented field-by-field in docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import warnings
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import ManifestValidationError

__all__ = [
    "MANIFEST_SCHEMA",
    "RunManifest",
    "TruncatedManifestWarning",
    "validate_manifest",
    "host_fingerprint",
    "current_git_revision",
    "load_manifests",
    "write_manifests_ndjson",
]


class TruncatedManifestWarning(UserWarning):
    """An NDJSON manifest stream ended in a torn, unparseable line.

    Exactly the state a writer killed mid-append leaves behind (the
    sweep farm's per-worker manifest streams, most prominently).  Only
    emitted when the caller opts in via
    ``load_manifests(..., tolerate_truncated_tail=True)`` — by default
    a torn line is still a hard parse error.
    """

#: Current manifest schema identifier.  Bump the version suffix on any
#: breaking field change; readers reject versions they do not know.
MANIFEST_SCHEMA = "repro.run_manifest/v1"

#: (field name, accepted types, required) — the schema check's core.
#: ``dict``-typed fields are free-form by design (parameters, outcome
#: and telemetry vary by run kind); the schema pins the envelope, and
#: the ``telemetry`` block is additionally checked structurally.
_FIELDS: Tuple[Tuple[str, Tuple[type, ...], bool], ...] = (
    ("schema", (str,), True),
    ("kind", (str,), True),
    ("algorithm", (str,), True),
    ("parameters", (dict,), True),
    ("naming", (str,), True),
    ("adversary", (str, type(None)), False),
    ("backend", (str,), True),
    ("workers", (int,), True),
    ("host", (dict,), True),
    ("git_rev", (str, type(None)), False),
    ("outcome", (dict,), True),
    ("telemetry", (dict,), True),
    ("created_at", (str,), True),
)

_TELEMETRY_KEYS: Tuple[Tuple[str, type], ...] = (
    ("counters", dict),
    ("gauges", dict),
    ("phases", dict),
    ("events", list),
    ("events_dropped", int),
)


def host_fingerprint() -> Dict[str, Any]:
    """Where a run executed: platform, interpreter, core count."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
    }


def current_git_revision(cwd: Optional[Union[str, Path]] = None) -> Optional[str]:
    """The checkout's HEAD commit, or ``None`` outside a git checkout.

    Never raises: a manifest must be writable from an installed wheel,
    a tarball, or a host without git just as well as from the repo.
    """
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    rev = proc.stdout.strip()
    return rev or None


def validate_manifest(document: Any) -> List[str]:
    """Check ``document`` against the manifest schema.

    Returns the list of problems found (empty = valid).  Pure and
    side-effect free so callers can validate untrusted documents without
    committing to constructing a :class:`RunManifest`.
    """
    if not isinstance(document, dict):
        return [f"manifest must be a JSON object, got {type(document).__name__}"]
    problems: List[str] = []
    declared = document.get("schema")
    if declared != MANIFEST_SCHEMA and isinstance(declared, str):
        problems.append(
            f"unsupported schema {declared!r} (this reader knows "
            f"{MANIFEST_SCHEMA!r})"
        )
    for name, types, required in _FIELDS:
        if name not in document:
            if required:
                problems.append(f"missing required field {name!r}")
            continue
        value = document[name]
        # bool is an int subclass; "workers": true must not validate.
        if isinstance(value, bool) and bool not in types:
            problems.append(f"field {name!r} must not be a bool")
            continue
        if not isinstance(value, types):
            expected = "/".join(
                "null" if t is type(None) else t.__name__ for t in types
            )
            problems.append(
                f"field {name!r} must be {expected}, "
                f"got {type(value).__name__}"
            )
    telemetry = document.get("telemetry")
    if isinstance(telemetry, dict):
        for key, expected_type in _TELEMETRY_KEYS:
            if key not in telemetry:
                problems.append(f"telemetry block missing {key!r}")
            elif not isinstance(telemetry[key], expected_type):
                problems.append(
                    f"telemetry.{key} must be {expected_type.__name__}, "
                    f"got {type(telemetry[key]).__name__}"
                )
    unknown = set(document) - {name for name, _, _ in _FIELDS}
    if unknown:
        problems.append(
            "unknown fields: " + ", ".join(sorted(repr(u) for u in unknown))
        )
    return problems


@dataclass
class RunManifest:
    """One run's auditable record; see the module docstring.

    Construct directly when every field is already known, or via
    :meth:`create` to have the ambient fields (host, git revision,
    timestamp) filled in.  ``parameters`` and ``outcome`` are free-form
    JSON objects — by convention ``outcome`` carries a ``verdict`` key
    (e.g. ``"exhaustive-ok"``, ``"bounded-ok"``, ``"violation"``,
    ``"ok"``) that the report CLI leads its table with.
    """

    kind: str
    algorithm: str
    parameters: Dict[str, Any]
    naming: str
    backend: str
    workers: int
    host: Dict[str, Any]
    outcome: Dict[str, Any]
    telemetry: Dict[str, Any]
    created_at: str
    adversary: Optional[str] = None
    git_rev: Optional[str] = None
    schema: str = MANIFEST_SCHEMA

    @classmethod
    def create(
        cls,
        kind: str,
        algorithm: str,
        parameters: Optional[Dict[str, Any]] = None,
        naming: str = "identity",
        adversary: Optional[str] = None,
        backend: str = "serial",
        workers: int = 1,
        outcome: Optional[Dict[str, Any]] = None,
        telemetry: Optional[Dict[str, Any]] = None,
    ) -> "RunManifest":
        """Build a manifest, filling host/git/timestamp automatically."""
        from repro.obs.telemetry import NULL_TELEMETRY

        return cls(
            kind=kind,
            algorithm=algorithm,
            parameters=dict(parameters or {}),
            naming=naming,
            adversary=adversary,
            backend=backend,
            workers=workers,
            host=host_fingerprint(),
            git_rev=current_git_revision(),
            outcome=dict(outcome or {}),
            telemetry=dict(telemetry)
            if telemetry is not None
            else NULL_TELEMETRY.snapshot(),
            created_at=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        )

    def to_dict(self) -> Dict[str, Any]:
        """The JSON document form (validates before returning)."""
        document = {
            "schema": self.schema,
            "kind": self.kind,
            "algorithm": self.algorithm,
            "parameters": self.parameters,
            "naming": self.naming,
            "adversary": self.adversary,
            "backend": self.backend,
            "workers": self.workers,
            "host": self.host,
            "git_rev": self.git_rev,
            "outcome": self.outcome,
            "telemetry": self.telemetry,
            "created_at": self.created_at,
        }
        _raise_on_problems(document, "serializing RunManifest")
        return document

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "RunManifest":
        """Parse and validate a manifest document."""
        _raise_on_problems(document, "parsing manifest")
        return cls(
            kind=document["kind"],
            algorithm=document["algorithm"],
            parameters=document["parameters"],
            naming=document["naming"],
            adversary=document.get("adversary"),
            backend=document["backend"],
            workers=document["workers"],
            host=document["host"],
            git_rev=document.get("git_rev"),
            outcome=document["outcome"],
            telemetry=document["telemetry"],
            created_at=document["created_at"],
            schema=document["schema"],
        )

    def write(self, path: Union[str, Path]) -> Path:
        """Write this manifest as one pretty-printed JSON file."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.to_dict(), indent=1, sort_keys=True) + "\n")
        return target

    def verdict(self) -> str:
        """The outcome's verdict, or ``"?"`` when the producer omitted it."""
        verdict = self.outcome.get("verdict")
        return verdict if isinstance(verdict, str) else "?"


def _raise_on_problems(document: Any, context: str) -> None:
    problems = validate_manifest(document)
    if problems:
        raise ManifestValidationError(
            f"{context}: {len(problems)} schema problem(s): "
            + "; ".join(problems)
        )


def write_manifests_ndjson(
    manifests: Iterable[RunManifest], path: Union[str, Path]
) -> Path:
    """Write manifests as NDJSON, one compact document per line."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    lines = [
        json.dumps(manifest.to_dict(), sort_keys=True) for manifest in manifests
    ]
    target.write_text("\n".join(lines) + ("\n" if lines else ""))
    return target


def load_manifests(
    path: Union[str, Path],
    tolerate_truncated_tail: bool = False,
) -> List[RunManifest]:
    """Load and validate manifests from a file or a directory.

    * a ``.ndjson`` file yields one manifest per non-blank line;
    * any other file is read as a single JSON manifest;
    * a directory yields every ``*.json`` and ``*.ndjson`` inside it
      (sorted by name, non-recursive) — ``BENCH_explore.json`` style
      non-manifest JSON neighbours are rejected loudly by validation,
      so point this at a dedicated telemetry directory.

    ``tolerate_truncated_tail=True`` lets the *final* non-blank line of
    an ``.ndjson`` stream be unparseable JSON: it is dropped with a
    :class:`TruncatedManifestWarning` instead of raising.  That is the
    exact state a writer killed mid-append leaves behind — any earlier
    torn line is corruption, not a crash artifact, and still raises.

    Raises :class:`~repro.errors.ManifestValidationError` on the first
    file that fails validation (naming the file), and ``OSError`` /
    ``json.JSONDecodeError`` for unreadable input.
    """
    source = Path(path)
    if source.is_dir():
        files = sorted(
            entry
            for entry in source.iterdir()
            if entry.suffix in (".json", ".ndjson")
        )
        if not files:
            raise ManifestValidationError(
                f"{source}: directory contains no .json or .ndjson manifests"
            )
        manifests: List[RunManifest] = []
        for entry in files:
            manifests.extend(
                load_manifests(entry, tolerate_truncated_tail)
            )
        return manifests
    if source.suffix == ".ndjson":
        lines = [
            line for line in source.read_text().splitlines() if line.strip()
        ]
        documents: List[Any] = []
        for position, line in enumerate(lines):
            try:
                documents.append(json.loads(line))
            except json.JSONDecodeError:
                if tolerate_truncated_tail and position == len(lines) - 1:
                    warnings.warn(
                        f"{source}: dropped truncated final line "
                        "(writer killed mid-append?)",
                        TruncatedManifestWarning,
                        stacklevel=2,
                    )
                    break
                raise
    else:
        documents = [json.loads(source.read_text())]
    loaded: List[RunManifest] = []
    for index, document in enumerate(documents):
        try:
            loaded.append(RunManifest.from_dict(document))
        except ManifestValidationError as exc:
            position = f", line {index + 1}" if len(documents) > 1 else ""
            raise ManifestValidationError(f"{source}{position}: {exc}") from None
    return loaded
