"""Shared type aliases and small value types used across the library.

The paper's model (Section 2) has three primitive notions that appear in
every module:

* **process identifiers** — positive integers, *not* assumed to come from
  ``{1..n}``; only equality comparisons between identifiers are allowed in
  symmetric algorithms (:data:`ProcessId`);
* **register values** — the contents of an atomic register; any hashable
  immutable Python value (:data:`RegisterValue`);
* **register indices** — positions in a register array.  We distinguish
  *physical* indices (positions in the globally shared array, which the
  processes themselves cannot see) from *view* indices (``p.i[j]``, the
  j-th register in process i's private numbering).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional, Tuple, Type

#: A process identifier.  Positive integer; processes may only compare
#: identifiers for equality (the "symmetric with equality" model of §2).
ProcessId = int

#: The contents of an atomic register.  Must be hashable (global states are
#: hashed by the model checker) and should be treated as immutable.
RegisterValue = Hashable

#: Index of a register in process-local numbering: ``p.i[j]`` for
#: ``0 <= j < m``.  The library uses 0-based indices; docstrings that quote
#: the paper use the paper's 1-based convention.
ViewIndex = int

#: Index of a register in the hidden physical array.  Algorithms never see
#: physical indices; they exist for the memory substrate, the spec
#: checkers, and the lower-bound constructions.
PhysicalIndex = int


def require(
    condition: bool, message: str, error_cls: Optional[Type[Exception]] = None
) -> None:
    """Raise ``error_cls(message)`` unless ``condition`` holds.

    A tiny guard helper used for parameter validation throughout the
    library.  Defaults to :class:`repro.errors.ConfigurationError`.
    """
    if not condition:
        if error_cls is None:
            from repro.errors import ConfigurationError

            error_cls = ConfigurationError
        raise error_cls(message)


def validate_process_id(pid: ProcessId) -> ProcessId:
    """Validate that ``pid`` is a legal process identifier.

    The paper requires identifiers to be positive integers (§2).  Zero is
    additionally reserved as the initial "empty" register value in all
    three algorithms, so it can never be a process identifier.
    """
    from repro.errors import ConfigurationError

    require(
        isinstance(pid, int) and not isinstance(pid, bool),
        f"process identifier must be an int, got {pid!r}",
        ConfigurationError,
    )
    require(
        pid > 0,
        f"process identifier must be a positive integer, got {pid!r}",
        ConfigurationError,
    )
    return pid


def validate_distinct_ids(pids: Iterable[ProcessId]) -> Tuple[ProcessId, ...]:
    """Validate a collection of process identifiers: positive and distinct."""
    from repro.errors import ConfigurationError

    validated = tuple(pids)
    for pid in validated:
        validate_process_id(pid)
    require(
        len(set(validated)) == len(validated),
        f"process identifiers must be distinct, got {validated!r}",
        ConfigurationError,
    )
    return validated
