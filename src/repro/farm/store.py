"""Disk-backed StateGraph retention: append-only mmap edge arrays.

A verify-grade sweep cell retains the full labelled successor relation
of its exploration walk.  In RAM that is a :class:`~repro.verify.graph.StateGraph`
— two dictionaries whose memory footprint caps how large an instance
one process lifetime can verify.  This module persists the same
relation under a farm directory in a fixed-width binary layout that is
written append-only and read back through ``mmap``, so tens of millions
of retained edges cost file pages, not heap:

* ``nodes.bin`` — node keys (the canonicalizer's raw content digests),
  fixed ``key_len`` bytes each, in first-seen (insertion) order.  A
  node's position in this file is its *ordinal*.
* ``edges.bin`` — one 16-byte record per edge, ``>IIq``:
  ``(src ordinal, dst ordinal, pid)``, appended in recording order.
  Edges of one source node are contiguous (the recorder API enforces
  it), so a node's out-edges are a single slice.
* ``index.bin`` — written once at finalisation, one 17-byte record per
  node in **sorted-key order**, ``>IQIB``: ``(ordinal, first edge
  record, edge count, expanded flag)``.  Sorted order makes
  ``successors()`` a binary search and lets :meth:`DiskStateGraph.to_bytes`
  stream the canonical serialisation without building dictionaries.
* ``meta.json`` — schema id, key length, counts, completeness flag and
  the initial key.

:meth:`DiskStateGraph.to_bytes` reproduces the in-RAM
:meth:`StateGraph.to_bytes` framing byte-for-byte (pinned by the
differential tests in ``tests/farm/test_store.py``), so graph digests
computed from the store equal digests computed from the walk.  What the
store deliberately drops is the node *states* — the key already is the
content digest of the state, exactly the argument ``to_bytes`` itself
makes for not serialising them.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import struct
from pathlib import Path
from typing import IO, Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import FarmError
from repro.verify.graph import STATEGRAPH_MAGIC, StateGraph

__all__ = [
    "GRAPHSTORE_SCHEMA",
    "DiskGraphWriter",
    "DiskStateGraph",
    "write_state_graph",
    "load_state_graph",
    "graph_store_bytes",
]

GRAPHSTORE_SCHEMA = "repro.graphstore/v1"

_NODES = "nodes.bin"
_EDGES = "edges.bin"
_INDEX = "index.bin"
_META = "meta.json"

#: One edge record: (src ordinal, dst ordinal, pid).
_EDGE = struct.Struct(">IIq")
#: One index record: (ordinal, first edge record, edge count, expanded).
_INDEX_ENTRY = struct.Struct(">IQIB")


class DiskGraphWriter:
    """Incremental writer mirroring the :class:`GraphRecorder` API.

    ``add_node`` assigns ordinals on first sight and appends the key to
    ``nodes.bin``; ``add_edge`` appends to ``edges.bin`` and requires
    one source's edges to arrive contiguously (which both exploration
    backends and :meth:`StateGraph` iteration guarantee);
    ``mark_expanded`` distinguishes expanded-but-terminal nodes from
    never-expanded frontier nodes on truncated walks.  ``finalize``
    writes the sorted index and metadata — until then the directory is
    an unreadable partial write, which is fine: a killed verify cell is
    still ``claimed`` in the run table and will be re-run from scratch
    on resume.
    """

    def __init__(self, directory: Union[str, Path], key_len: int):
        if key_len <= 0:
            raise FarmError(f"key_len must be positive, got {key_len}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.key_len = key_len
        self._nodes: IO[bytes] = (self.directory / _NODES).open("wb")
        self._edges: IO[bytes] = (self.directory / _EDGES).open("wb")
        self._ordinals: Dict[bytes, int] = {}
        #: src ordinal -> (first edge record, edge count)
        self._edge_spans: Dict[int, List[int]] = {}
        self._expanded: set = set()
        self._open_src: Optional[int] = None
        self._edge_count = 0
        self._finalized = False

    def add_node(self, key: bytes, state: Any = None) -> int:
        """Record a node key (idempotent); returns its ordinal.

        ``state`` is accepted for :class:`GraphRecorder` signature
        compatibility and ignored — the store keeps keys only.
        """
        ordinal = self._ordinals.get(key)
        if ordinal is not None:
            return ordinal
        if len(key) != self.key_len:
            raise FarmError(
                f"node key is {len(key)} bytes; this store was opened "
                f"with key_len={self.key_len}"
            )
        ordinal = len(self._ordinals)
        self._ordinals[key] = ordinal
        self._nodes.write(key)
        return ordinal

    def mark_expanded(self, src: bytes) -> None:
        self._expanded.add(self.add_node(src))

    def add_edge(self, src: bytes, pid: int, dst: bytes) -> None:
        src_ord = self.add_node(src)
        dst_ord = self.add_node(dst)
        if src_ord != self._open_src:
            if src_ord in self._edge_spans:
                raise FarmError(
                    f"edges for node ordinal {src_ord} arrived "
                    "non-contiguously; the disk store requires one "
                    "source's edges in a single run"
                )
            self._edge_spans[src_ord] = [self._edge_count, 0]
            self._open_src = src_ord
        self._edges.write(_EDGE.pack(src_ord, dst_ord, pid))
        self._edge_spans[src_ord][1] += 1
        self._edge_count += 1
        self._expanded.add(src_ord)

    def finalize(self, initial: bytes, complete: bool) -> Dict[str, Any]:
        """Write the sorted index + metadata; returns the meta document."""
        if self._finalized:
            raise FarmError("finalize() called twice on one DiskGraphWriter")
        self._finalized = True
        if initial not in self._ordinals:
            raise FarmError("initial key was never added as a node")
        self._nodes.close()
        self._edges.close()
        with (self.directory / _INDEX).open("wb") as index:
            for key in sorted(self._ordinals):
                ordinal = self._ordinals[key]
                start, count = self._edge_spans.get(ordinal, (0, 0))
                index.write(
                    _INDEX_ENTRY.pack(
                        ordinal, start, count, 1 if ordinal in self._expanded else 0
                    )
                )
        meta = {
            "schema": GRAPHSTORE_SCHEMA,
            "key_len": self.key_len,
            "nodes": len(self._ordinals),
            "edges": self._edge_count,
            "complete": complete,
            "initial": initial.hex(),
        }
        (self.directory / _META).write_text(
            json.dumps(meta, indent=1, sort_keys=True) + "\n"
        )
        return meta


def write_state_graph(
    graph: StateGraph, directory: Union[str, Path]
) -> Dict[str, Any]:
    """Persist an in-RAM :class:`StateGraph` into a store directory.

    Nodes are written in the graph's insertion (visit) order and edges
    in recorded order, which is exactly what an in-walk recorder would
    have produced — so the store layout is independent of whether the
    graph was spooled during the walk or dumped afterwards.
    """
    writer = DiskGraphWriter(directory, key_len=len(graph.initial))
    for key in graph.nodes:
        writer.add_node(key)
    for src, out in graph.edges.items():
        writer.mark_expanded(src)
        for pid, dst in out:
            writer.add_edge(src, pid, dst)
    return writer.finalize(graph.initial, graph.complete)


class DiskStateGraph:
    """Read side of the store: the retained graph over ``mmap`` pages.

    Supports the subset of the :class:`StateGraph` API the liveness
    analyses and audits read — ``len``, ``successors``, ``iter_nodes``,
    ``complete``, ``to_bytes`` — without materialising dictionaries.
    Node *states* are not stored, so analyses needing concrete states
    (lasso replay) still run against the in-RAM graph.
    """

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        meta_path = self.directory / _META
        if not meta_path.exists():
            raise FarmError(
                f"{self.directory}: not a graph store (missing {_META}; "
                "writer killed before finalize?)"
            )
        meta = json.loads(meta_path.read_text())
        if meta.get("schema") != GRAPHSTORE_SCHEMA:
            raise FarmError(
                f"{self.directory}: unsupported graph store schema "
                f"{meta.get('schema')!r} (this reader knows {GRAPHSTORE_SCHEMA!r})"
            )
        self.key_len: int = meta["key_len"]
        self.node_count: int = meta["nodes"]
        self.edge_count: int = meta["edges"]
        self.complete: bool = meta["complete"]
        self.initial: bytes = bytes.fromhex(meta["initial"])
        self._files: List[IO[bytes]] = []
        self._nodes = self._map(_NODES, self.node_count * self.key_len)
        self._edges = self._map(_EDGES, self.edge_count * _EDGE.size)
        self._index = self._map(_INDEX, self.node_count * _INDEX_ENTRY.size)

    def _map(self, name: str, expected: int) -> Union[bytes, mmap.mmap]:
        path = self.directory / name
        size = path.stat().st_size
        if size != expected:
            raise FarmError(
                f"{path}: expected {expected} bytes per meta.json, found {size}"
            )
        if size == 0:
            # mmap refuses zero-length maps; an empty buffer reads the same.
            return b""
        handle = path.open("rb")
        self._files.append(handle)
        return mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)

    def close(self) -> None:
        for view in (self._nodes, self._edges, self._index):
            if isinstance(view, mmap.mmap):
                view.close()
        for handle in self._files:
            handle.close()
        self._files = []

    def __enter__(self) -> "DiskStateGraph":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __len__(self) -> int:
        return self.node_count

    # -- lookups -------------------------------------------------------

    def _key_at(self, ordinal: int) -> bytes:
        start = ordinal * self.key_len
        return bytes(self._nodes[start : start + self.key_len])

    def _index_entry(self, position: int) -> Tuple[int, int, int, int]:
        start = position * _INDEX_ENTRY.size
        entry: Tuple[int, int, int, int] = _INDEX_ENTRY.unpack_from(self._index, start)
        return entry

    def _edge_at(self, record: int) -> Tuple[int, int, int]:
        start = record * _EDGE.size
        edge: Tuple[int, int, int] = _EDGE.unpack_from(self._edges, start)
        return edge

    def iter_nodes(self) -> Iterator[bytes]:
        """Node keys in sorted (deterministic) order."""
        for position in range(self.node_count):
            ordinal, _, _, _ = self._index_entry(position)
            yield self._key_at(ordinal)

    def _find(self, key: bytes) -> Optional[int]:
        """Binary-search the sorted index for ``key``'s position."""
        lo, hi = 0, self.node_count
        while lo < hi:
            mid = (lo + hi) // 2
            ordinal, _, _, _ = self._index_entry(mid)
            probe = self._key_at(ordinal)
            if probe == key:
                return mid
            if probe < key:
                lo = mid + 1
            else:
                hi = mid
        return None

    def __contains__(self, key: bytes) -> bool:
        return self._find(key) is not None

    def successors(self, key: bytes) -> Tuple[Tuple[int, bytes], ...]:
        """Outgoing ``(pid, dst key)`` edges (empty for terminal states)."""
        position = self._find(key)
        if position is None:
            return ()
        _, start, count, _ = self._index_entry(position)
        out: List[Tuple[int, bytes]] = []
        for record in range(start, start + count):
            _, dst_ord, pid = self._edge_at(record)
            out.append((pid, self._key_at(dst_ord)))
        return tuple(out)

    def expanded(self, key: bytes) -> bool:
        """Whether the walk expanded this node (vs truncated frontier)."""
        position = self._find(key)
        if position is None:
            raise KeyError(key.hex())
        return bool(self._index_entry(position)[3])

    # -- canonical serialisation ---------------------------------------

    def _iter_serialised(self) -> Iterator[bytes]:
        yield STATEGRAPH_MAGIC
        yield b"\x01" if self.complete else b"\x00"
        yield self.initial
        yield self.node_count.to_bytes(8, "big")
        for position in range(self.node_count):
            ordinal, start, count, _ = self._index_entry(position)
            chunk: List[bytes] = [self._key_at(ordinal), count.to_bytes(4, "big")]
            for record in range(start, start + count):
                _, dst_ord, pid = self._edge_at(record)
                chunk.append(f"p{pid};".encode("ascii"))
                chunk.append(self._key_at(dst_ord))
            yield b"".join(chunk)

    def to_bytes(self) -> bytes:
        """Byte-identical to the source graph's :meth:`StateGraph.to_bytes`."""
        return b"".join(self._iter_serialised())

    def digest(self) -> str:
        """sha256 of :meth:`to_bytes`, streamed (no full materialisation)."""
        digest = hashlib.sha256()
        for chunk in self._iter_serialised():
            digest.update(chunk)
        return digest.hexdigest()


def load_state_graph(directory: Union[str, Path]) -> DiskStateGraph:
    """Open a graph store directory for reading."""
    return DiskStateGraph(directory)


def graph_store_bytes(directory: Union[str, Path]) -> int:
    """Total on-disk bytes of one graph store (or a tree of them)."""
    root = Path(directory)
    if not root.exists():
        return 0
    return sum(
        entry.stat().st_size for entry in root.rglob("*") if entry.is_file()
    )
