"""The sweep farm's run table: a persisted grid of claimable cells.

A *run table* materialises a parameter grid — one row per (naming,
adversary) cell plus optional verify-grade cells — into durable
per-cell state, so that a sweep survives the process that started it.
Each cell moves through the status machine

    ``pending`` → ``claimed`` → ``done`` | ``error``

and ``--resume`` moves stale ``claimed`` cells (a killed worker's
half-finished claims) back to ``pending``.  ``error`` cells are
terminal by default; a retry budget (``--max-attempts N`` /
:meth:`~MemoryRunTable.retry_errors`) re-pends error cells whose
``attempts`` count is still below the budget, so transient failures
(OOM kills, flaky filesystems) stop poisoning a farm while genuinely
broken cells still settle after N tries.  Two implementations share
the protocol:

* :class:`MemoryRunTable` — a list of rows in process memory.  This is
  what :func:`repro.analysis.experiments.sweep` drives, so the
  single-call in-process sweep keeps today's behaviour bit-identically
  while going through exactly the claim/finish protocol the disk farm
  uses.  Payloads and results may be live Python objects.
* :class:`SqliteRunTable` — the same rows in a sqlite database under a
  farm directory.  Claims are idempotent ``UPDATE ... WHERE
  status='pending'`` transactions under ``BEGIN IMMEDIATE``, so N
  worker processes — or separate hosts sharing a filesystem — can
  drain one table without executing any cell twice.  Payloads and
  results must be JSON documents.

The sqlite schema (documented in docs/EXPLORATION.md):

.. code-block:: sql

    CREATE TABLE cells (
        idx         INTEGER PRIMARY KEY,   -- grid position
        kind        TEXT    NOT NULL,      -- 'run' | 'verify' | 'fuzz'
        payload     TEXT    NOT NULL,      -- JSON cell parameters
        status      TEXT    NOT NULL DEFAULT 'pending',
        worker      TEXT,                  -- last claimant
        claimed_at  REAL,                  -- unix seconds
        finished_at REAL,
        attempts    INTEGER NOT NULL DEFAULT 0,
        result      TEXT,                  -- JSON result (done cells)
        error       TEXT                   -- repr (error cells)
    );
    CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);

``meta`` carries the JSON grid configuration under the key ``"grid"``,
so ``--resume DIR`` needs no flags: the directory is self-describing.
"""

from __future__ import annotations

import json
import sqlite3
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import FarmError

__all__ = [
    "STATUSES",
    "Cell",
    "CellRow",
    "MemoryRunTable",
    "SqliteRunTable",
]

#: The cell status machine, in lifecycle order.
STATUSES: Tuple[str, ...] = ("pending", "claimed", "done", "error")


@dataclass(frozen=True)
class Cell:
    """One claimable unit of work: a grid position plus its parameters.

    ``kind`` is ``"run"`` (trace + property checks under one naming ×
    adversary combination), ``"verify"`` (a graph-retaining exhaustive
    walk whose StateGraph lands in the farm's disk store) or ``"fuzz"``
    (a shard of seeded fuzzing episodes, see :mod:`repro.fuzz`).
    ``payload`` holds the cell-specific parameters; for disk tables it
    must be a JSON document.
    """

    index: int
    kind: str = "run"
    payload: Any = None


@dataclass
class CellRow:
    """One row of the run table: a :class:`Cell` plus its claim state."""

    index: int
    kind: str
    payload: Any
    status: str = "pending"
    worker: Optional[str] = None
    claimed_at: Optional[float] = None
    finished_at: Optional[float] = None
    attempts: int = 0
    result: Any = None
    error: Optional[str] = None

    @property
    def cell(self) -> Cell:
        return Cell(index=self.index, kind=self.kind, payload=self.payload)


def _count_rows(rows: Sequence[CellRow]) -> Dict[str, int]:
    counts = {status: 0 for status in STATUSES}
    for row in rows:
        counts[row.status] += 1
    return counts


class MemoryRunTable:
    """The run-table protocol over an in-process list of rows.

    Single-threaded by design (one claimant per table instance); the
    value is that the in-process sweep and the disk farm drain through
    the *same* claim/finish protocol, so the orchestration layer has one
    code path.
    """

    def __init__(self, cells: Sequence[Cell], meta: Optional[Dict[str, Any]] = None):
        self._rows: List[CellRow] = [
            CellRow(index=cell.index, kind=cell.kind, payload=cell.payload)
            for cell in cells
        ]
        self._meta: Dict[str, Any] = dict(meta or {})

    def meta(self) -> Dict[str, Any]:
        return dict(self._meta)

    def claim(self, worker: str) -> Optional[Cell]:
        """Claim the lowest-index pending cell, or ``None`` if drained."""
        for row in self._rows:
            if row.status == "pending":
                row.status = "claimed"
                row.worker = worker
                row.claimed_at = time.time()
                row.attempts += 1
                return row.cell
        return None

    def claim_all(self, worker: str) -> List[Cell]:
        """Claim every pending cell at once (ordered batch drain).

        This is the in-process sweep's path: the whole grid is claimed
        up front and mapped over an executor, preserving the historical
        "one ordered map over all cells" behaviour exactly.
        """
        claimed: List[Cell] = []
        while True:
            cell = self.claim(worker)
            if cell is None:
                return claimed
            claimed.append(cell)

    def finish(self, index: int, result: Any) -> None:
        """Move a claimed cell to ``done``, recording its result."""
        row = self._row(index)
        if row.status != "claimed":
            raise FarmError(
                f"cell {index} is {row.status!r}, not 'claimed'; "
                "finish() requires a prior claim (double-finish?)"
            )
        row.status = "done"
        row.result = result
        row.finished_at = time.time()
        row.error = None

    def fail(self, index: int, error: str) -> None:
        """Move a claimed cell to ``error``, recording the failure."""
        row = self._row(index)
        if row.status != "claimed":
            raise FarmError(
                f"cell {index} is {row.status!r}, not 'claimed'; "
                "fail() requires a prior claim"
            )
        row.status = "error"
        row.error = error
        row.finished_at = time.time()

    def reset_claims(self) -> int:
        """Return stale ``claimed`` cells to ``pending`` (resume step)."""
        reclaimed = 0
        for row in self._rows:
            if row.status == "claimed":
                row.status = "pending"
                row.worker = None
                row.claimed_at = None
                reclaimed += 1
        return reclaimed

    def retry_errors(self, max_attempts: int) -> int:
        """Re-pend ``error`` cells that still have attempt budget.

        A cell whose ``attempts`` count is below ``max_attempts`` moves
        back to ``pending`` (its error text is kept until the retry
        resolves it); cells at or over the budget stay terminal.
        Returns how many cells re-entered ``pending``.
        """
        retried = 0
        for row in self._rows:
            if row.status == "error" and row.attempts < max_attempts:
                row.status = "pending"
                row.worker = None
                row.claimed_at = None
                row.finished_at = None
                retried += 1
        return retried

    def counts(self) -> Dict[str, int]:
        return _count_rows(self._rows)

    def attempts_of(self, index: int) -> int:
        """How many times this cell has been claimed."""
        return self._row(index).attempts

    def rows(self) -> List[CellRow]:
        """Snapshot of every row, in grid order."""
        return [replace(row) for row in self._rows]

    def _row(self, index: int) -> CellRow:
        for row in self._rows:
            if row.index == index:
                return row
        raise FarmError(f"no cell with index {index} in this run table")


class SqliteRunTable:
    """The run-table protocol over a sqlite database file.

    Open one instance per worker process (sqlite connections do not
    survive ``fork``).  The database runs in WAL mode with a busy
    timeout, so concurrent claimants block briefly instead of failing;
    the claim itself is an ``UPDATE ... WHERE status='pending'`` under
    ``BEGIN IMMEDIATE`` whose rowcount decides who won — losing a race
    just means claiming the next pending cell.
    """

    FILENAME = "runs.sqlite"

    def __init__(self, connection: sqlite3.Connection, path: Path):
        self._db = connection
        self.path = path

    # -- construction --------------------------------------------------

    @classmethod
    def create(
        cls,
        path: Union[str, Path],
        cells: Sequence[Cell],
        meta: Optional[Dict[str, Any]] = None,
    ) -> "SqliteRunTable":
        """Create a fresh run table at ``path`` with one row per cell.

        Refuses to overwrite an existing table: a farm directory is
        append-only state, and starting over on top of finished cells is
        what ``--resume`` exists to prevent.
        """
        target = Path(path)
        if target.exists():
            raise FarmError(
                f"{target}: run table already exists; use resume to "
                "continue it (or point --out at a fresh directory)"
            )
        target.parent.mkdir(parents=True, exist_ok=True)
        table = cls(cls._connect(target), target)
        with table._db:  # one transaction for schema + rows
            table._db.execute(
                "CREATE TABLE cells ("
                " idx INTEGER PRIMARY KEY,"
                " kind TEXT NOT NULL,"
                " payload TEXT NOT NULL,"
                " status TEXT NOT NULL DEFAULT 'pending',"
                " worker TEXT,"
                " claimed_at REAL,"
                " finished_at REAL,"
                " attempts INTEGER NOT NULL DEFAULT 0,"
                " result TEXT,"
                " error TEXT)"
            )
            table._db.execute(
                "CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL)"
            )
            table._db.executemany(
                "INSERT INTO cells (idx, kind, payload) VALUES (?, ?, ?)",
                [
                    (cell.index, cell.kind, json.dumps(cell.payload, sort_keys=True))
                    for cell in cells
                ],
            )
            table._db.executemany(
                "INSERT INTO meta (key, value) VALUES (?, ?)",
                [
                    (key, json.dumps(value, sort_keys=True))
                    for key, value in (meta or {}).items()
                ],
            )
        return table

    @classmethod
    def open(cls, path: Union[str, Path]) -> "SqliteRunTable":
        """Open an existing run table (raises :class:`FarmError` if absent)."""
        target = Path(path)
        if not target.exists():
            raise FarmError(f"{target}: no run table found (not a farm directory?)")
        return cls(cls._connect(target), target)

    @staticmethod
    def _connect(path: Path) -> sqlite3.Connection:
        # autocommit mode: transactions are issued explicitly (BEGIN
        # IMMEDIATE for claims) so the claim window is exactly as wide
        # as the UPDATE, never held open by python-side buffering.
        db = sqlite3.connect(str(path), timeout=30.0, isolation_level=None)
        db.execute("PRAGMA journal_mode=WAL")
        db.execute("PRAGMA busy_timeout=30000")
        db.execute("PRAGMA synchronous=NORMAL")
        return db

    def close(self) -> None:
        self._db.close()

    def __enter__(self) -> "SqliteRunTable":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- the claim protocol --------------------------------------------

    def meta(self) -> Dict[str, Any]:
        rows = self._db.execute("SELECT key, value FROM meta").fetchall()
        return {key: json.loads(value) for key, value in rows}

    def claim(self, worker: str) -> Optional[Cell]:
        """Atomically claim the lowest-index pending cell.

        ``BEGIN IMMEDIATE`` takes the write lock up front; the UPDATE's
        ``WHERE status='pending'`` guard makes the claim idempotent —
        if another worker (or host) claimed the row between our SELECT
        and UPDATE, the rowcount is 0 and we simply try the next cell.
        Returns ``None`` when no pending cells remain.
        """
        while True:
            self._db.execute("BEGIN IMMEDIATE")
            try:
                row = self._db.execute(
                    "SELECT idx, kind, payload FROM cells"
                    " WHERE status='pending' ORDER BY idx LIMIT 1"
                ).fetchone()
                if row is None:
                    self._db.execute("COMMIT")
                    return None
                index, kind, payload = row
                cursor = self._db.execute(
                    "UPDATE cells SET status='claimed', worker=?,"
                    " claimed_at=?, attempts=attempts+1"
                    " WHERE idx=? AND status='pending'",
                    (worker, time.time(), index),
                )
                self._db.execute("COMMIT")
            except BaseException:
                self._db.execute("ROLLBACK")
                raise
            if cursor.rowcount == 1:
                return Cell(index=index, kind=kind, payload=json.loads(payload))
            # Lost the race for this row inside our own lock window —
            # only possible via an external writer; go around again.

    def finish(self, index: int, result: Any) -> None:
        """Move a claimed cell to ``done``; rejects double-finishes."""
        cursor = self._db.execute(
            "UPDATE cells SET status='done', result=?, finished_at=?, error=NULL"
            " WHERE idx=? AND status='claimed'",
            (json.dumps(result, sort_keys=True), time.time(), index),
        )
        if cursor.rowcount != 1:
            raise FarmError(
                f"cell {index} is not 'claimed'; finish() requires a "
                "prior claim (double-finish, or finished by another worker?)"
            )

    def fail(self, index: int, error: str) -> None:
        """Move a claimed cell to ``error``, recording the failure."""
        cursor = self._db.execute(
            "UPDATE cells SET status='error', error=?, finished_at=?"
            " WHERE idx=? AND status='claimed'",
            (error, time.time(), index),
        )
        if cursor.rowcount != 1:
            raise FarmError(
                f"cell {index} is not 'claimed'; fail() requires a prior claim"
            )

    def reset_claims(self) -> int:
        """Return stale ``claimed`` cells to ``pending`` (resume step).

        Only call this when no worker is live on the table — the farm
        has no lease/heartbeat notion, so a reset while workers run
        could hand a cell out twice.
        """
        cursor = self._db.execute(
            "UPDATE cells SET status='pending', worker=NULL, claimed_at=NULL"
            " WHERE status='claimed'"
        )
        return cursor.rowcount

    def retry_errors(self, max_attempts: int) -> int:
        """Re-pend ``error`` cells with ``attempts < max_attempts``.

        The disk twin of :meth:`MemoryRunTable.retry_errors`: one guarded
        UPDATE, so a concurrent claimant can never race a cell back to
        ``pending`` twice.  The error text stays on the row until a
        retry resolves it (``finish`` clears it, a final ``fail``
        overwrites it).
        """
        cursor = self._db.execute(
            "UPDATE cells SET status='pending', worker=NULL,"
            " claimed_at=NULL, finished_at=NULL"
            " WHERE status='error' AND attempts < ?",
            (max_attempts,),
        )
        return cursor.rowcount

    def counts(self) -> Dict[str, int]:
        counts = {status: 0 for status in STATUSES}
        for status, count in self._db.execute(
            "SELECT status, COUNT(*) FROM cells GROUP BY status"
        ):
            counts[status] = count
        return counts

    def attempts_of(self, index: int) -> int:
        """How many times this cell has been claimed."""
        row = self._db.execute(
            "SELECT attempts FROM cells WHERE idx=?", (index,)
        ).fetchone()
        if row is None:
            raise FarmError(f"no cell with index {index} in this run table")
        return int(row[0])

    def rows(self) -> List[CellRow]:
        """Snapshot of every row, in grid order."""
        out: List[CellRow] = []
        for (
            index, kind, payload, status, worker,
            claimed_at, finished_at, attempts, result, error,
        ) in self._db.execute(
            "SELECT idx, kind, payload, status, worker, claimed_at,"
            " finished_at, attempts, result, error FROM cells ORDER BY idx"
        ):
            out.append(
                CellRow(
                    index=index,
                    kind=kind,
                    payload=json.loads(payload),
                    status=status,
                    worker=worker,
                    claimed_at=claimed_at,
                    finished_at=finished_at,
                    attempts=attempts,
                    result=json.loads(result) if result is not None else None,
                    error=error,
                )
            )
        return out
