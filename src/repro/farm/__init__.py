"""The sweep farm: resumable, disk-backed grid execution.

Layers (each its own module, composable separately):

* :mod:`repro.farm.runtable` — the claimable-cell run table (in-memory
  and sqlite implementations of one claim/finish protocol);
* :mod:`repro.farm.cells` — grid materialisation from a JSON config and
  the execution of individual run/verify cells;
* :mod:`repro.farm.store` — disk-backed StateGraph retention (mmap
  node/edge arrays, byte-identical ``to_bytes`` to the in-RAM graph);
* :mod:`repro.farm.orchestrator` — create/drain/resume over a farm
  directory, per-worker manifest streams, multi-process draining.

``python -m repro sweep --out DIR`` is the CLI face; see
docs/EXPLORATION.md ("The sweep farm") for the directory layout, claim
protocol and resume semantics.
"""

from repro.farm.cells import (
    build_adversary,
    build_naming,
    default_checkers,
    describe_descriptor,
    execute_cell,
    grid_cells,
    parse_adversary_spec,
    parse_naming_spec,
    resolve_grid_params,
)
from repro.farm.orchestrator import (
    GRAPHS_DIRNAME,
    MANIFEST_PREFIX,
    FarmResult,
    create_farm,
    drain_farm,
    farm_result,
    is_farm_dir,
    open_farm,
    resume_farm,
    run_farm,
)
from repro.farm.runtable import (
    STATUSES,
    Cell,
    CellRow,
    MemoryRunTable,
    SqliteRunTable,
)
from repro.farm.store import (
    GRAPHSTORE_SCHEMA,
    DiskGraphWriter,
    DiskStateGraph,
    graph_store_bytes,
    load_state_graph,
    write_state_graph,
)

__all__ = [
    "STATUSES",
    "Cell",
    "CellRow",
    "MemoryRunTable",
    "SqliteRunTable",
    "GRAPHSTORE_SCHEMA",
    "DiskGraphWriter",
    "DiskStateGraph",
    "write_state_graph",
    "load_state_graph",
    "graph_store_bytes",
    "GRAPHS_DIRNAME",
    "MANIFEST_PREFIX",
    "FarmResult",
    "create_farm",
    "open_farm",
    "resume_farm",
    "drain_farm",
    "run_farm",
    "farm_result",
    "is_farm_dir",
    "grid_cells",
    "execute_cell",
    "default_checkers",
    "resolve_grid_params",
    "parse_naming_spec",
    "parse_adversary_spec",
    "describe_descriptor",
    "build_naming",
    "build_adversary",
]
