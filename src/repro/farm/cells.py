"""Grid materialisation and cell execution for the sweep farm.

A farm directory is self-describing: its grid configuration is a JSON
document (stored in the run table's ``meta`` under ``"grid"``) from
which the cell list re-materialises deterministically, and every cell's
parameters are JSON payloads.  That forces the naming/adversary axis of
a sweep through *descriptors* — ``{"type": "random", "seed": 3}``
rather than live objects — with a small parser for the CLI's compact
spellings (``random:3``).  The descriptor set covers the namings and
adversaries the experiment scripts actually sweep; in-process callers
with exotic namings keep using :func:`repro.analysis.experiments.sweep`
directly, which takes live objects.

Three cell kinds execute here:

* ``run`` — build the problem's system under one naming × adversary
  combination, run it to ``max_steps``, collect metrics and check the
  spec's safety properties on the trace.  The result dict is fully
  deterministic (seeded adversaries, no wall-clock fields), so an
  interrupted-and-resumed farm produces byte-identical results to an
  uninterrupted one.
* ``verify`` — an exhaustive graph-retaining
  :func:`~repro.verify.runner.verify_instance` walk; the retained
  :class:`~repro.verify.graph.StateGraph` is persisted into the farm's
  disk store (:mod:`repro.farm.store`) and the result records its
  canonical sha256 digest, which is likewise bit-stable across resume.
* ``fuzz`` — one shard of a seeded fuzz run (:mod:`repro.fuzz`): the
  grid's ``"fuzz"`` block fixes the root seed and total episode
  budget, and each cell executes a contiguous range of globally
  numbered episodes.  Episode RNGs derive from the global episode
  index, so the union of all cells is exactly the one-shot run and a
  resumed farm is byte-identical to an uninterrupted one.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import FarmError
from repro.farm.runtable import Cell

__all__ = [
    "parse_naming_spec",
    "parse_adversary_spec",
    "build_naming",
    "build_adversary",
    "describe_descriptor",
    "grid_cells",
    "resolve_grid_params",
    "default_checkers",
    "execute_cell",
]


# -- descriptors -------------------------------------------------------

def parse_naming_spec(text: str) -> Dict[str, Any]:
    """Parse a CLI naming spelling into a descriptor.

    ``identity`` → ``{"type": "identity"}``;
    ``random:SEED`` → ``{"type": "random", "seed": SEED}``.
    """
    head, _, arg = text.strip().partition(":")
    if head == "identity" and not arg:
        return {"type": "identity"}
    if head == "random":
        return {"type": "random", "seed": int(arg or 0)}
    raise FarmError(
        f"unknown naming spec {text!r}; expected 'identity' or 'random:SEED'"
    )


def parse_adversary_spec(text: str) -> Dict[str, Any]:
    """Parse a CLI adversary spelling into a descriptor.

    ``round-robin`` | ``random:SEED`` | ``burst:SEED`` |
    ``staged:PREFIX:SEED`` (the obstruction-freedom schedule: PREFIX
    contended steps, then each process runs solo).
    """
    parts = text.strip().split(":")
    head = parts[0]
    if head == "round-robin" and len(parts) == 1:
        return {"type": "round-robin"}
    if head == "random" and len(parts) <= 2:
        return {"type": "random", "seed": int(parts[1]) if len(parts) == 2 else 0}
    if head == "burst" and len(parts) <= 2:
        return {"type": "burst", "seed": int(parts[1]) if len(parts) == 2 else 0}
    if head == "staged" and len(parts) <= 3:
        prefix = int(parts[1]) if len(parts) >= 2 else 50
        seed = int(parts[2]) if len(parts) == 3 else 0
        return {"type": "staged", "prefix": prefix, "seed": seed}
    raise FarmError(
        f"unknown adversary spec {text!r}; expected 'round-robin', "
        "'random:SEED', 'burst:SEED' or 'staged:PREFIX:SEED'"
    )


def build_naming(descriptor: Dict[str, Any]):
    """Instantiate the naming assignment a descriptor names."""
    from repro.memory.naming import IdentityNaming, RandomNaming

    kind = descriptor.get("type")
    if kind == "identity":
        return IdentityNaming()
    if kind == "random":
        return RandomNaming(int(descriptor["seed"]))
    raise FarmError(f"unknown naming descriptor {descriptor!r}")


def build_adversary(descriptor: Dict[str, Any]):
    """Instantiate the adversary a descriptor names (freshly seeded)."""
    from repro.runtime.adversary import (
        AlternatingBurstAdversary,
        RandomAdversary,
        RoundRobinAdversary,
        StagedObstructionAdversary,
    )

    kind = descriptor.get("type")
    if kind == "round-robin":
        return RoundRobinAdversary()
    if kind == "random":
        return RandomAdversary(int(descriptor["seed"]))
    if kind == "burst":
        return AlternatingBurstAdversary(int(descriptor["seed"]))
    if kind == "staged":
        return StagedObstructionAdversary(
            prefix_steps=int(descriptor["prefix"]), seed=int(descriptor["seed"])
        )
    raise FarmError(f"unknown adversary descriptor {descriptor!r}")


def describe_descriptor(descriptor: Dict[str, Any]) -> str:
    """Compact CLI spelling of a descriptor (inverse of the parsers)."""
    kind = descriptor.get("type", "?")
    if kind == "staged":
        return f"staged:{descriptor['prefix']}:{descriptor['seed']}"
    if "seed" in descriptor:
        return f"{kind}:{descriptor['seed']}"
    return str(kind)


# -- the grid ----------------------------------------------------------

def resolve_grid_params(spec, config: Dict[str, Any]) -> Dict[str, Any]:
    """The builder params a grid config names (same precedence as
    :func:`~repro.analysis.experiments.sweep_problem`: explicit params,
    then the named instance, then the spec's first declared instance)."""
    if config.get("params") is not None:
        return dict(config["params"])
    if config.get("instance") is not None:
        return spec.instance(config["instance"]).params_dict()
    if spec.instances:
        return spec.instances[0].params_dict()
    return {}


def grid_cells(config: Dict[str, Any]) -> List[Cell]:
    """Materialise a grid config into its cell list, deterministically.

    A config with a ``"fuzz"`` block shards that block's episode budget
    into contiguous fuzz cells and nothing else.  Otherwise run cells
    come first in naming-major order (the same nesting
    :func:`~repro.analysis.experiments.sweep` uses), then — when the
    config asks for graph retention — one verify cell at the end.
    """
    cells: List[Cell] = []
    if config.get("fuzz") is not None:
        fuzz = config["fuzz"]
        episodes = int(fuzz["episodes"])
        per_cell = max(1, int(fuzz.get("episodes_per_cell") or 1))
        for base in range(0, episodes, per_cell):
            cells.append(
                Cell(
                    index=len(cells),
                    kind="fuzz",
                    payload={
                        "episode_base": base,
                        "episodes": min(per_cell, episodes - base),
                    },
                )
            )
        return cells
    for naming in config["namings"]:
        for adversary in config["adversaries"]:
            cells.append(
                Cell(
                    index=len(cells),
                    kind="run",
                    payload={"naming": naming, "adversary": adversary},
                )
            )
    if config.get("retain_graph"):
        cells.append(Cell(index=len(cells), kind="verify", payload={}))
    return cells


# -- execution ---------------------------------------------------------

def _flatten_invariants(invariant) -> List[Any]:
    from repro.runtime.exploration import _ConjoinedInvariant

    if isinstance(invariant, _ConjoinedInvariant):
        return [
            flat
            for inner in invariant.invariants
            for flat in _flatten_invariants(inner)
        ]
    return [invariant]


def default_checkers(spec, inputs) -> List[Any]:
    """Trace checkers matching a spec's declared safety invariant.

    Safety only: liveness checkers presume schedules that grant solo
    opportunities, which arbitrary grid adversaries do not — exhaustive
    liveness belongs to the farm's verify cells, where it needs no
    adversary sampling at all.  Specs with invariants outside the stock
    four check nothing here (the run still records metrics/outputs).
    """
    from repro.runtime.exploration import (
        agreement_invariant,
        mutual_exclusion_invariant,
        unique_names_invariant,
        validity_invariant,
    )
    from repro.spec.consensus_spec import AgreementChecker, ValidityChecker
    from repro.spec.mutex_spec import MutualExclusionChecker
    from repro.spec.renaming_spec import NameRangeChecker, UniqueNamesChecker

    checkers: List[Any] = []
    for invariant in _flatten_invariants(spec.invariant):
        if invariant is mutual_exclusion_invariant:
            checkers.append(MutualExclusionChecker())
        elif invariant is agreement_invariant:
            checkers.append(AgreementChecker())
        elif invariant is validity_invariant:
            checkers.append(ValidityChecker(inputs))
        elif invariant is unique_names_invariant:
            checkers.append(UniqueNamesChecker())
            checkers.append(NameRangeChecker(bound=len(list(inputs))))
    return checkers


def _run_cell_result(spec, params: Dict[str, Any], cell: Cell,
                     max_steps: int) -> Dict[str, Any]:
    from repro.analysis.metrics import collect_metrics
    from repro.errors import SpecViolation
    from repro.runtime.system import System

    naming = build_naming(cell.payload["naming"])
    adversary = build_adversary(cell.payload["adversary"])
    inputs = spec.inputs(params)
    system = System(spec.build(params), inputs, naming=naming)
    trace = system.run(adversary, max_steps=max_steps)
    metrics = collect_metrics(trace)
    violations: List[str] = []
    for checker in default_checkers(spec, inputs):
        try:
            checker.check(trace)
        except SpecViolation as exc:
            violations.append(str(exc))
    # Deterministic by construction: seeded adversaries, no wall-clock
    # or host fields — resume must reproduce these bytes exactly.
    return {
        "verdict": "ok" if not violations else "violation",
        "naming": naming.describe(),
        "adversary": adversary.describe(),
        "events": metrics.total_events,
        "reads": metrics.total_reads,
        "writes": metrics.total_writes,
        "decided": metrics.decided_count,
        "violations": violations,
    }


def _verify_cell_result(spec, params: Dict[str, Any], config: Dict[str, Any],
                        graph_dir: Optional[Path]) -> Dict[str, Any]:
    from repro.problems.spec import ProblemInstance
    from repro.request import RunRequest
    from repro.verify.runner import verify_instance

    if config.get("instance") is not None:
        instance = spec.instance(config["instance"])
    else:
        # Explicit params (or spec defaults): synthesize an unregistered
        # instance record so verify_instance can budget the walk.
        rendered = ",".join(f"{k}={v}" for k, v in sorted(params.items()))
        instance = ProblemInstance(
            label=f"{spec.key}({rendered})",
            params=tuple(sorted(params.items())),
            roles=("verify",),
        )
    report = verify_instance(
        spec,
        instance,
        request=RunRequest(max_states=config.get("verify_max_states")),
    )
    graph = report.exploration.graph
    result: Dict[str, Any] = {
        "verdict": "verified" if report.ok else "failed",
        "instance": instance.label,
        "states": report.exploration.states_explored,
        "retained_edges": report.retained_edges,
        "properties": [
            {
                "kind": outcome.declared.kind,
                "theorem": outcome.declared.theorem,
                "ok": outcome.ok,
            }
            for outcome in report.outcomes
        ],
    }
    if graph is not None:
        result["graph_sha256"] = hashlib.sha256(graph.to_bytes()).hexdigest()
        if graph_dir is not None:
            from repro.farm.store import graph_store_bytes, write_state_graph

            write_state_graph(graph, graph_dir)
            result["graph_store_bytes"] = graph_store_bytes(graph_dir)
    return result


def _fuzz_cell_result(config: Dict[str, Any], cell: Cell) -> Dict[str, Any]:
    from repro.fuzz.engine import run_fuzz
    from repro.request import RunRequest

    fuzz = config["fuzz"]
    report = run_fuzz(
        RunRequest(
            problem=config["problem"],
            instance=config.get("instance"),
            params=config.get("params"),
            kernel=(
                fuzz.get("kernel")
                if fuzz.get("kernel") == "compiled"
                else None
            ),
            seed=int(fuzz.get("seed") or 0),
            max_steps=fuzz.get("max_steps"),
            max_states=fuzz.get("max_states"),
        ),
        episodes=int(cell.payload["episodes"]),
        episode_base=int(cell.payload["episode_base"]),
        families=fuzz.get("families"),
    )
    # FuzzReport.to_dict is wall-clock-free, so resume reproduces the
    # exact bytes an uninterrupted farm writes.
    return report.to_dict()


def execute_cell(
    config: Dict[str, Any],
    cell: Cell,
    graphs_dir: Optional[Union[str, Path]] = None,
) -> Dict[str, Any]:
    """Execute one claimed cell of a grid; returns its JSON result.

    ``graphs_dir`` is the farm's graph-store root; verify cells persist
    their retained StateGraph under ``<graphs_dir>/cell-<index>`` when
    it is given (disk farms) and skip persistence when it is ``None``
    (in-memory one-shot sweeps).
    """
    from repro.problems import get_problem

    spec = get_problem(config["problem"])
    if cell.kind == "fuzz":
        return _fuzz_cell_result(config, cell)
    params = resolve_grid_params(spec, config)
    if cell.kind == "run":
        return _run_cell_result(spec, params, cell, int(config["max_steps"]))
    if cell.kind == "verify":
        graph_dir = (
            Path(graphs_dir) / f"cell-{cell.index:05d}"
            if graphs_dir is not None
            else None
        )
        return _verify_cell_result(spec, params, config, graph_dir)
    raise FarmError(f"unknown cell kind {cell.kind!r} at index {cell.index}")
