"""Farm orchestration: create, drain, kill, resume.

A *farm directory* is the durable form of one sweep:

.. code-block:: text

    <dir>/
      runs.sqlite            -- the run table (repro.farm.runtable)
      manifests-<worker>.ndjson  -- one farm-cell manifest per finished cell
      graphs/cell-<idx>/     -- disk StateGraph stores of verify cells

Workers (:func:`drain_farm`) loop ``claim → execute → finish → append
manifest`` until the table drains; each worker appends to its *own*
manifest file, so concurrent workers never interleave writes within a
line.  The manifest line is appended after ``finish`` commits — the run
table is the source of truth for cell status, the NDJSON stream is the
audit record (a crash in the window between the two loses at most one
manifest line, never a result; ``repro report`` reads both).

Resume semantics (:func:`resume_farm`): stale ``claimed`` rows — the
cells a killed worker held — go back to ``pending``, then workers drain
as usual.  ``done`` cells are never re-executed, so a killed-and-resumed
farm executes every cell exactly once and its results (seeded runs, no
wall-clock fields) are byte-identical to an uninterrupted farm's.

Execution errors inside a cell mark it ``error`` (with the repr) and
the worker moves on — one broken cell must not strand a thousand-cell
grid.  ``error`` is terminal by default — a deliberate state distinct
from "worker died" — but a retry budget (``--max-attempts N``, stored
in the grid config or passed at resume time) re-pends error cells
whose ``attempts`` count is below N, both live (a worker that fails a
cell immediately offers it back while budget remains) and on
``--resume``.  Retried cells re-execute from scratch; their results
are deterministic, so a farm that needed retries is byte-identical to
one that never failed.
"""

from __future__ import annotations

import json
import multiprocessing
import signal
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.errors import FarmError
from repro.farm.cells import grid_cells
from repro.farm.runtable import CellRow, SqliteRunTable

__all__ = [
    "FarmResult",
    "create_farm",
    "open_farm",
    "resume_farm",
    "drain_farm",
    "run_farm",
    "farm_result",
    "is_farm_dir",
]

GRAPHS_DIRNAME = "graphs"
MANIFEST_PREFIX = "manifests-"

#: Hook called with each cell right after its claim commits; tests use
#: it to simulate a worker killed mid-cell (raise → the cell stays
#: ``claimed``, exactly the state a SIGKILL leaves behind).
FaultInjector = Callable[[Any], None]


@dataclass
class FarmResult:
    """Every row of one farm's run table, with aggregate queries.

    The farm-level analogue of
    :class:`~repro.analysis.experiments.SweepResult` — which is
    re-derived from it via :meth:`to_sweep_result` on the in-memory
    path, where results are live
    :class:`~repro.analysis.experiments.RunRecord` objects.
    """

    problem: str
    rows: List[CellRow] = field(default_factory=list)

    @property
    def counts(self) -> Dict[str, int]:
        from repro.farm.runtable import _count_rows

        return _count_rows(self.rows)

    @property
    def done(self) -> List[CellRow]:
        return [row for row in self.rows if row.status == "done"]

    @property
    def errors(self) -> List[CellRow]:
        return [row for row in self.rows if row.status == "error"]

    @property
    def complete(self) -> bool:
        """True when every cell reached ``done``."""
        return all(row.status == "done" for row in self.rows)

    def summary(self) -> str:
        counts = self.counts
        return (
            f"{self.problem}: {len(self.rows)} cells — "
            + ", ".join(f"{counts[s]} {s}" for s in ("done", "pending", "claimed", "error"))
        )

    def to_sweep_result(self):
        """Re-derive a :class:`~repro.analysis.experiments.SweepResult`.

        Requires every done row's result to be a live ``RunRecord``
        (the in-memory sweep path); disk farms hold JSON results and
        should be read row-wise instead.
        """
        from repro.analysis.experiments import RunRecord, SweepResult

        records: List[RunRecord] = []
        for row in self.done:
            if not isinstance(row.result, RunRecord):
                raise FarmError(
                    f"cell {row.index} holds a {type(row.result).__name__} "
                    "result, not a RunRecord; to_sweep_result() is the "
                    "in-memory sweep path only"
                )
            records.append(row.result)
        return SweepResult(algorithm=self.problem, records=records)


# -- directory layout --------------------------------------------------

def _table_path(directory: Union[str, Path]) -> Path:
    return Path(directory) / SqliteRunTable.FILENAME


def is_farm_dir(path: Union[str, Path]) -> bool:
    """Whether ``path`` looks like a farm directory (has a run table)."""
    return _table_path(path).exists()


def create_farm(directory: Union[str, Path], config: Dict[str, Any]) -> int:
    """Materialise a grid config into a fresh farm directory.

    Returns the cell count.  Refuses an existing run table — resuming
    is :func:`resume_farm`'s job, and silently re-gridding over
    finished cells is the failure mode the farm exists to prevent.
    """
    cells = grid_cells(config)
    if not cells:
        raise FarmError("grid config materialises zero cells")
    table = SqliteRunTable.create(
        _table_path(directory), cells, meta={"grid": config}
    )
    table.close()
    return len(cells)


def open_farm(directory: Union[str, Path]) -> SqliteRunTable:
    """Open a farm directory's run table (each worker opens its own)."""
    return SqliteRunTable.open(_table_path(directory))


def resume_farm(
    directory: Union[str, Path], max_attempts: Optional[int] = None
) -> int:
    """Reclaim stale ``claimed`` cells; returns how many cells re-entered
    ``pending`` (stale claims plus, under a retry budget, error cells
    with remaining attempts).

    ``max_attempts`` defaults to the grid config's ``max_attempts``
    (itself defaulting to 1 — errors stay terminal).  Call once, before
    workers start — not concurrently with them (see
    :meth:`SqliteRunTable.reset_claims`).
    """
    with open_farm(directory) as table:
        if max_attempts is None:
            max_attempts = int(
                (table.meta().get("grid") or {}).get("max_attempts", 1)
            )
        reclaimed = table.reset_claims()
        if max_attempts > 1:
            reclaimed += table.retry_errors(max_attempts)
        return reclaimed


def farm_result(directory: Union[str, Path]) -> FarmResult:
    """Snapshot a farm directory's run table into a :class:`FarmResult`."""
    with open_farm(directory) as table:
        grid = table.meta().get("grid", {})
        return FarmResult(problem=grid.get("problem", "?"), rows=table.rows())


# -- the worker loop ---------------------------------------------------

def _append_manifest(
    directory: Path,
    worker: str,
    config: Dict[str, Any],
    cell,
    result: Dict[str, Any],
    attempts: int,
) -> None:
    from repro.obs.manifest import RunManifest

    manifest = RunManifest.create(
        # Fuzz shards are first-class fuzz evidence, not generic farm
        # bookkeeping; reports group them with one-shot fuzz manifests.
        kind="fuzz" if cell.kind == "fuzz" else "farm-cell",
        algorithm=config["problem"],
        parameters={
            "cell": cell.index,
            "cell_kind": cell.kind,
            "max_steps": int(config.get("max_steps", 0)),
            "worker": worker,
            "attempt": attempts,
        },
        naming=result.get("naming", "identity"),
        adversary=result.get("adversary"),
        backend="farm",
        workers=1,
        outcome=result,
    )
    line = json.dumps(manifest.to_dict(), sort_keys=True)
    path = directory / f"{MANIFEST_PREFIX}{worker}.ndjson"
    # O_APPEND + one write: a whole line lands or (on a kill mid-write)
    # a truncated tail the report CLI tolerates; lines never interleave
    # because each worker owns its file.
    with path.open("a") as stream:
        stream.write(line + "\n")


def drain_farm(
    directory: Union[str, Path],
    worker: str = "w0",
    fault_injector: Optional[FaultInjector] = None,
    max_cells: Optional[int] = None,
    max_attempts: Optional[int] = None,
) -> FarmResult:
    """Claim-and-execute cells until the table drains (one worker).

    ``max_cells`` bounds how many cells this call may claim (for tests
    and incremental draining); ``fault_injector`` fires between claim
    and execution — see :data:`FaultInjector`.  ``max_attempts``
    (default: the grid config's, default 1) is the per-cell retry
    budget: a failed cell with attempts to spare goes straight back to
    ``pending`` instead of settling in ``error``.
    """
    from repro.farm.cells import execute_cell

    root = Path(directory)
    graphs_dir = root / GRAPHS_DIRNAME
    executed = 0
    with open_farm(root) as table:
        config = table.meta().get("grid")
        if config is None:
            raise FarmError(f"{root}: run table has no grid config in meta")
        if max_attempts is None:
            max_attempts = int(config.get("max_attempts", 1))
        while max_cells is None or executed < max_cells:
            cell = table.claim(worker)
            if cell is None:
                break
            if fault_injector is not None:
                fault_injector(cell)
            try:
                result = execute_cell(config, cell, graphs_dir=graphs_dir)
            except FarmError:
                raise  # protocol bugs must surface, not soak into rows
            except Exception as exc:  # noqa: BLE001 — cell isolation
                table.fail(cell.index, f"{type(exc).__name__}: {exc}")
                if max_attempts > 1:
                    table.retry_errors(max_attempts)
                executed += 1
                continue
            table.finish(cell.index, result)
            _append_manifest(
                root, worker, config, cell, result,
                attempts=table.attempts_of(cell.index),
            )
            executed += 1
    return farm_result(root)


def _worker_entry(
    directory: str, worker: str, max_attempts: Optional[int]
) -> None:
    """Subprocess entry: open own connection, drain, exit 0."""
    # Workers are killed wholesale by the parent on SIGTERM; default
    # disposition means "die now, leave claims in place for resume".
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    drain_farm(directory, worker=worker, max_attempts=max_attempts)


def run_farm(
    directory: Union[str, Path],
    workers: int = 1,
    fault_injector: Optional[FaultInjector] = None,
    max_attempts: Optional[int] = None,
    *,
    request: Optional[Any] = None,
) -> FarmResult:
    """Drain a farm with ``workers`` processes (1 = in this process).

    With ``workers > 1``, N subprocesses each run the
    :func:`drain_farm` loop against their own sqlite connection; the
    parent waits, forwarding SIGTERM/SIGINT as child termination so a
    killed farm leaves only ``claimed`` rows behind (the resumable
    state).  Worker ids are ``w0..wN-1`` — stable across resume, so a
    resumed farm appends to the same per-worker manifest files.

    ``max_attempts`` is the per-cell retry budget (see
    :func:`drain_farm`); ``request=`` accepts a
    :class:`~repro.request.RunRequest` whose ``workers`` field is the
    unified spelling of the worker count.
    """
    if request is not None:
        workers = request.merged("workers", workers, default=1) or 1
    if workers <= 1:
        return drain_farm(
            directory, fault_injector=fault_injector, max_attempts=max_attempts
        )
    if fault_injector is not None:
        raise FarmError("fault_injector is single-process only (workers=1)")

    context = multiprocessing.get_context("fork")
    children = [
        context.Process(
            target=_worker_entry,
            args=(str(directory), f"w{rank}", max_attempts),
            daemon=False,
        )
        for rank in range(workers)
    ]

    def _terminate(signum, frame):  # pragma: no cover — exercised via CLI kill
        for child in children:
            if child.is_alive():
                child.terminate()
        for child in children:
            child.join(timeout=5)
        sys.exit(128 + signum)

    previous = {
        signum: signal.signal(signum, _terminate)
        for signum in (signal.SIGTERM, signal.SIGINT)
    }
    try:
        for child in children:
            child.start()
        for child in children:
            child.join()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    failed = [child.exitcode for child in children if child.exitcode != 0]
    if failed:
        raise FarmError(f"{len(failed)} worker(s) exited non-zero: {failed}")
    return farm_result(directory)
