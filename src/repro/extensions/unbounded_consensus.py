"""Obstruction-free consensus for an unknown/unbounded number of
processes — the named-model possibility result behind Corollary 6.4.

Theorem 6.3 proves obstruction-free consensus impossible with *unnamed*
registers when the number of processes is not a priori known; the paper
contrasts this with [25]: with *named* registers it is possible, even
for unbounded concurrency.  Corollary 6.4 (no obstruction-free
implementation of a named register from unnamed ones) is exactly the
combination of those two facts — so the reproduction needs the
possibility side executable too.  This module provides it.

Construction — a ladder of commit-adopt objects
(:mod:`repro.extensions.commit_adopt`), one per round, all of whose
register roles are indexed by *round and value* only, never by process:

    round r:  (status, v) := CA_r(pref)
              if status = COMMIT: decide v
              else: pref := v; continue to round r + 1

* **Agreement**: the first commit, say of ``v`` at round ``r``, forces
  (CA coherence) every CA_r output to carry ``v``; hence every process
  enters round ``r+1`` preferring ``v``, and (CA validity + convergence,
  inductively) every later output carries ``v`` too — all decisions are
  ``v``.
* **Validity**: CA outputs are proposals; proposals start as inputs.
* **Obstruction-free termination**: rounds are fresh; a process running
  alone eventually proposes to a CA nobody else has touched and commits
  (one round above the highest round anybody reached).  Under
  contention the ladder may climb forever — permitted by
  obstruction-freedom, and the test suite demonstrates both behaviours.

The register array is dimensioned by ``max_rounds`` — a *simulation
horizon*, not an algorithmic bound: the algorithm as specified uses an
unbounded array, which a real named-memory system provides by
allocation.  Exceeding the horizon raises loudly rather than deciding
incorrectly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Tuple

from repro.errors import ConfigurationError, ProtocolError
from repro.extensions.commit_adopt import (
    ADOPT,
    COMMIT,
    CommitAdoptProcess,
    CommitAdoptState,
)
from repro.runtime.automaton import Algorithm, ProcessAutomaton
from repro.runtime.ops import Operation
from repro.types import ProcessId, require, validate_process_id


@dataclass(frozen=True)
class LadderState:
    """Local state: current round plus the embedded CA proposer state."""

    round: int = 1
    inner: CommitAdoptState = None
    decision: Any = None

    @property
    def pc(self) -> str:  # for uniform debugging/tracing
        return "decided" if self.decision is not None else f"round-{self.round}"


class LadderConsensusProcess(ProcessAutomaton):
    """One process climbing the commit-adopt ladder."""

    PC_LINES = {
        "round": "[25]-style ladder — playing commit-adopt object CA_r (round r)",
        "decided": "[25]-style ladder — CA_r returned COMMIT; decide its value",
    }

    @classmethod
    def pc_key(cls, pc: str) -> str:
        # Dynamic counters "round-1", "round-2", ... all map to "round".
        return "round" if pc.startswith("round-") else pc

    def __init__(
        self,
        pid: ProcessId,
        input: Any,
        domain: Tuple[Any, ...],
        max_rounds: int,
    ):
        self.pid = validate_process_id(pid)
        self.domain = tuple(domain)
        require(
            input in self.domain,
            f"input {input!r} not in declared domain {self.domain!r}",
            ConfigurationError,
        )
        self.input = input
        self.max_rounds = max_rounds
        self._block = 2 * len(self.domain)

    def _ca_for(self, round_no: int, pref: Any) -> CommitAdoptProcess:
        if round_no > self.max_rounds:
            raise ProtocolError(
                f"process {self.pid} exceeded the simulation horizon of "
                f"{self.max_rounds} ladder rounds; raise max_rounds (the "
                "algorithm itself uses an unbounded register array)"
            )
        return CommitAdoptProcess(
            self.pid,
            pref,
            self.domain,
            offset=(round_no - 1) * self._block,
        )

    def initial_state(self) -> LadderState:
        inner = self._ca_for(1, self.input).initial_state()
        return LadderState(round=1, inner=inner)

    def is_halted(self, state: LadderState) -> bool:
        return state.decision is not None

    def output(self, state: LadderState) -> Any:
        return state.decision

    def next_op(self, state: LadderState) -> Operation:
        self.require_running(state)
        ca = self._ca_for(state.round, state.inner.pref)
        return ca.next_op(state.inner)

    def apply(self, state: LadderState, op: Operation, result: Any) -> LadderState:
        ca = self._ca_for(state.round, state.inner.pref)
        inner = ca.apply(state.inner, op, result)
        if not ca.is_halted(inner):
            return replace(state, inner=inner)
        status, value = ca.output(inner)
        if status == COMMIT:
            return replace(state, inner=inner, decision=value)
        assert status == ADOPT
        next_round = state.round + 1
        next_inner = self._ca_for(next_round, value).initial_state()
        return LadderState(round=next_round, inner=next_inner)


class UnboundedConsensus(Algorithm):
    """Obstruction-free consensus, process-count oblivious (named model).

    Parameters
    ----------
    domain:
        The finite input domain (register roles are value-indexed; this
        is the price of not being process-indexed).
    max_rounds:
        Simulation horizon for the unbounded ladder.
    """

    name = "unbounded-consensus([25]-style ladder)"

    def __init__(self, domain: Tuple[Any, ...], max_rounds: int = 64):
        domain = tuple(domain)
        require(
            len(domain) >= 1 and len(set(domain)) == len(domain) and 0 not in domain,
            f"domain must be non-empty, duplicate-free and 0-free, got {domain!r}",
            ConfigurationError,
        )
        require(
            isinstance(max_rounds, int) and max_rounds >= 1,
            f"max_rounds must be a positive int, got {max_rounds!r}",
            ConfigurationError,
        )
        self.domain = domain
        self.max_rounds = max_rounds

    def register_count(self) -> int:
        return 2 * len(self.domain) * self.max_rounds

    def is_anonymous(self) -> bool:
        return False

    def automaton_for(self, pid: ProcessId, input: Any = None) -> LadderConsensusProcess:
        return LadderConsensusProcess(
            pid, input, self.domain, max_rounds=self.max_rounds
        )
