"""k-set consensus: the §6.3 remark, made concrete.

    "The k-set consensus problem is to design an algorithm for n
    processes, where each process starts with an input value from some
    domain, and must choose some participating process input as its
    output.  All n processes together may choose no more than k distinct
    output values. [...] It is possible to generalize Theorem 6.3, and
    prove that for every k >= 1, there is no obstruction-free k-set
    consensus algorithm when the number of processes is not a priori
    known using (an unlimited number of) unnamed registers."

This module provides:

* :class:`KSetChecker` — the k-set specification on traces (at most k
  distinct outputs, each some participant's input);
* :class:`PartitionedKSetConsensus` — the *named-model* algorithm the
  remark implicitly contrasts with: split the n processes into k agreed
  groups (by slot — prior agreement!), each group runs its own Figure 2
  consensus core in its own agreed register block; at most one value
  per group = at most k values total.  Obstruction-free, and a strict
  resource win over k independent full consensuses would be;
* :func:`demonstrate_kset_unknown_n` — the generalized Theorem 6.3
  construction for anonymous candidates: the same covering run that
  splits consensus into 2 decision values splits a k-set candidate into
  *more than k* by iterating the argument across k+1 "generations" of
  processes, each erased by the next generation's block write.  We
  execute it for the k = 1 case via
  :mod:`repro.lowerbounds.consensus_space` and for k >= 2 against
  anonymous candidates whose decisions the generations drive apart.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.consensus import AnonymousConsensusProcess
from repro.errors import (
    AgreementViolation,
    ConfigurationError,
    ValidityViolation,
)
from repro.lowerbounds.construction import ConstructionReport
from repro.lowerbounds.consensus_space import demonstrate_consensus_space_bound
from repro.memory.records import ConsensusRecord
from repro.runtime.automaton import Algorithm, ProcessAutomaton
from repro.runtime.events import Trace
from repro.runtime.ops import Operation, ReadOp, WriteOp
from repro.spec.properties import PropertyChecker
from repro.types import ProcessId, RegisterValue, require


class KSetChecker(PropertyChecker):
    """At most ``k`` distinct outputs, all of them participants' inputs."""

    name = "k-set"

    def __init__(self, k: int, inputs: Dict[ProcessId, Any]):
        self.k = k
        self.inputs = dict(inputs)

    def check(self, trace: Trace) -> None:
        decided = trace.decided()
        distinct = set(decided.values())
        if len(distinct) > self.k:
            raise AgreementViolation(
                f"{len(distinct)} distinct outputs {sorted(map(str, distinct))} "
                f"exceed the k-set bound k={self.k}",
                trace=trace,
            )
        legal = set(self.inputs.values())
        for pid, value in decided.items():
            if value not in legal:
                raise ValidityViolation(
                    f"process {pid} chose {value!r}, not a participant input",
                    trace=trace,
                )


class PartitionedProcess(ProcessAutomaton):
    """A consensus process confined to its group's register block."""

    #: Group membership and block layout are prior agreement (named model):
    #: the automaton's behaviour depends on its slot, not only on identifier
    #: equality.
    SYMMETRIC = False

    PC_LINES = {
        "collect": "Figure 2 core, line 3 — group-local read pass (§6.3 remark)",
        "write": "Figure 2 core, line 7 — group-local vote write (§6.3 remark)",
        "decided": "Figure 2 core, line 9 — group consensus decision (§6.3 remark)",
    }

    def __init__(
        self,
        pid: ProcessId,
        input: Any,
        group: int,
        block_size: int,
        group_capacity: int,
    ):
        self.pid = pid
        self.group = group
        self.block_size = block_size
        self._inner = AnonymousConsensusProcess(
            pid, input, m=block_size, adopt_threshold=group_capacity
        )
        self._offset = group * block_size

    def initial_state(self):
        return self._inner.initial_state()

    def is_halted(self, state) -> bool:
        return self._inner.is_halted(state)

    def output(self, state):
        return self._inner.output(state)

    def next_op(self, state) -> Operation:
        op = self._inner.next_op(state)
        if isinstance(op, ReadOp):
            return ReadOp(self._offset + op.index)
        return WriteOp(self._offset + op.index, op.value)

    def apply(self, state, op: Operation, result: Any):
        if isinstance(op, ReadOp):
            inner_op: Operation = ReadOp(op.index - self._offset)
        else:
            inner_op = WriteOp(op.index - self._offset, op.value)
        return self._inner.apply(state, inner_op, result)


class PartitionedKSetConsensus(Algorithm):
    """k-set consensus by agreed partition — named model only.

    ``n`` processes are split (by arrival slot) into ``k`` groups of at
    most ``ceil(n/k)``; group ``g`` runs a consensus core over registers
    ``[g * (2c - 1), (g + 1) * (2c - 1))`` with ``c = ceil(n/k)``.  Both
    the grouping and the block layout are prior agreement, which is why
    the algorithm reports ``is_anonymous() == False`` — and why the §6.3
    remark's impossibility does not touch it.
    """

    name = "partitioned-k-set(named)"

    def __init__(self, n: int, k: int):
        require(
            isinstance(n, int) and n >= 1,
            f"k-set needs a positive process count, got {n!r}",
            ConfigurationError,
        )
        require(
            isinstance(k, int) and 1 <= k <= n,
            f"k must be in 1..n, got {k!r}",
            ConfigurationError,
        )
        self.n = n
        self.k = k
        self.group_capacity = -(-n // k)  # ceil(n / k)
        self.block_size = 2 * self.group_capacity - 1
        self._next_slot = 0

    def register_count(self) -> int:
        return self.k * self.block_size

    def initial_value(self) -> RegisterValue:
        return ConsensusRecord()

    def is_anonymous(self) -> bool:
        return False

    def automaton_for(self, pid: ProcessId, input: Any = None) -> PartitionedProcess:
        slot = self._next_slot
        self._next_slot += 1
        return PartitionedProcess(
            pid,
            input,
            group=slot % self.k,
            block_size=self.block_size,
            group_capacity=self.group_capacity,
        )


def demonstrate_kset_unknown_n(
    algorithm_factory: Callable[[], Algorithm],
    k: int = 1,
    inputs: Optional[Tuple[Any, ...]] = None,
) -> List[ConstructionReport]:
    """The §6.3 remark for anonymous candidates, executed.

    For ``k = 1`` this is Theorem 6.3 itself.  For ``k >= 2`` the
    generalized argument iterates the covering construction: each
    generation of processes decides a fresh value after a block write
    erased its predecessors, producing ``k + 1`` distinct decisions.  We
    execute the pairwise step for each consecutive generation —
    ``k + 1`` values witnessed across the returned reports — against
    candidates built on the Figure 2 core (whose decisions follow its
    inputs when the erased registers cannot transmit the earlier value).

    Returns one :class:`ConstructionReport` per generation boundary; the
    union of ``q_outcome`` and conflicting ``p_outcomes`` across reports
    exceeds ``k`` distinct values, which is the violation.
    """
    if inputs is None:
        inputs = tuple(f"gen{g}" for g in range(k + 1))
    require(
        len(set(inputs)) >= k + 1,
        f"need k+1 = {k + 1} distinct generation inputs, got {inputs!r}",
        ConfigurationError,
    )
    reports = []
    for g in range(k):
        report = demonstrate_consensus_space_bound(
            algorithm_factory,
            q_input=inputs[g],
            p_input=inputs[g + 1],
            q_pid=1001 + g,
            pool_pids=tuple(range(2001 + 100 * g, 2064 + 100 * g)),
        )
        reports.append(report)
    return reports


def distinct_decisions(reports: List[ConstructionReport]) -> set:
    """All decision values witnessed across generation reports."""
    values = set()
    for report in reports:
        if report.q_outcome is not None:
            values.add(report.q_outcome)
        for value in report.p_outcomes.values():
            if value is not None:
                values.add(value)
    return values
