"""Commit-adopt objects from named MWMR registers, for unbounded processes.

The paper's Section 6 contrasts anonymous impossibilities with named
possibilities: obstruction-free consensus *is* solvable with named
registers "when the number of processes is finite and not a priori known
or even when the number of processes is unbounded" (citing [25]).  This
module supplies the substrate for our executable version of that
possibility result (:mod:`repro.extensions.unbounded_consensus`): a
**commit-adopt** object whose register usage is indexed by *values*, not
by processes — which is what makes it independent of the process count.

Specification (one-shot; every process proposes at most once):

* **Validity** — every output value was proposed;
* **Convergence** — if all proposals are equal to ``v``, every output is
  ``(COMMIT, v)``;
* **Coherence** — if any process outputs ``(COMMIT, v)``, every output
  is ``(COMMIT, v)`` or ``(ADOPT, v)``;
* **Obstruction-free termination** — a proposer running alone finishes
  (in fact the object is wait-free: every proposer finishes in at most
  ``3|D|`` of its own steps, ``D`` the value domain).

Construction, for a finite known value domain ``D`` (2|D| registers,
``A[w]`` and ``B[w]`` per value ``w``):

1. ``A[v] := 1``;
2. read every ``A[w]``, ``w != v``; if any is set, go to step 5
   (*conflicted*);
3. ``B[v] := 1``;
4. re-read every ``A[w]``, ``w != v``; if all still clear, return
   ``(COMMIT, v)``; else return ``(ADOPT, v)``;
5. (conflicted) read every ``B[w]``; if some ``B[w]`` is set, return
   ``(ADOPT, w)``; else return ``(ADOPT, v)``.

Why it is correct (the arguments the test suite checks mechanically):

* at most one value ever reaches ``B``: if proposers of ``v`` and ``w``
  both pass step 2, each one's read of the other's ``A`` preceded the
  other's write of it — a cycle;
* a committer's step-4 re-read puts its ``B[v]`` write before every
  conflicting ``A[w]`` write, so every conflicted process subsequently
  finds ``B[v]`` set and adopts ``v``; a same-value proposer returns
  ``v`` on every path.

The binary instance is exhaustively model-checked for 2 and 3 processes
in the tests (all schedules), and swept for larger counts — the
construction itself is process-count-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional, Tuple

from repro.errors import ConfigurationError, ProtocolError
from repro.runtime.automaton import Algorithm, ProcessAutomaton
from repro.runtime.ops import Operation, ReadOp, WriteOp
from repro.types import ProcessId, require, validate_process_id

#: Output statuses.
COMMIT = "commit"
ADOPT = "adopt"


@dataclass(frozen=True)
class CommitAdoptState:
    """Local state of one commit-adopt proposer."""

    pc: str = "w_propose"
    #: Scan cursor into the domain (skipping own value where applicable).
    k: int = 0
    #: The value this process is backing.
    pref: Any = None
    #: A set B[w] discovered during the conflicted scan, if any.
    seen_b: Any = None
    #: Final output, as (status, value), once done.
    output: Optional[Tuple[str, Any]] = None


class CommitAdoptProcess(ProcessAutomaton):
    """One proposer of the commit-adopt object.

    Register layout (``d = len(domain)``): ``A[w]`` at ``offset +
    domain.index(w)``; ``B[w]`` at ``offset + d + domain.index(w)``.
    ``offset`` lets a ladder embed many objects in one array.
    """

    PC_LINES = {
        "w_propose": "commit-adopt step 1 — A[v] := 1 (module docstring protocol)",
        "scan_conflict": "commit-adopt step 2 — read every A[w], w != v",
        "w_phase2": "commit-adopt step 3 — B[v] := 1",
        "scan_recheck": "commit-adopt step 4 — re-read every A[w], w != v",
        "scan_b": "commit-adopt step 5 — conflicted scan of every B[w]",
        "done": "commit-adopt — returned (status, value)",
    }

    def __init__(self, pid: ProcessId, input: Any, domain: Tuple[Any, ...], offset: int = 0):
        self.pid = validate_process_id(pid)
        require(
            input in domain,
            f"proposal {input!r} is not in the declared domain {domain!r}",
            ConfigurationError,
        )
        self.domain = tuple(domain)
        self.input = input
        self.offset = offset

    # -- register addressing ------------------------------------------------

    def _a_reg(self, value: Any) -> int:
        return self.offset + self.domain.index(value)

    def _b_reg(self, value: Any) -> int:
        return self.offset + len(self.domain) + self.domain.index(value)

    def _others(self, value: Any) -> Tuple[Any, ...]:
        return tuple(w for w in self.domain if w != value)

    # -- automaton interface ------------------------------------------------

    def initial_state(self) -> CommitAdoptState:
        return CommitAdoptState(pref=self.input)

    def is_halted(self, state: CommitAdoptState) -> bool:
        return state.pc == "done"

    def output(self, state: CommitAdoptState) -> Optional[Tuple[str, Any]]:
        return state.output if state.pc == "done" else None

    def next_op(self, state: CommitAdoptState) -> Operation:
        self.require_running(state)
        pc = state.pc
        if pc == "w_propose":
            return WriteOp(self._a_reg(state.pref), 1)
        if pc == "scan_conflict" or pc == "scan_recheck":
            other = self._others(state.pref)[state.k]
            return ReadOp(self._a_reg(other))
        if pc == "w_phase2":
            return WriteOp(self._b_reg(state.pref), 1)
        if pc == "scan_b":
            return ReadOp(self._b_reg(self.domain[state.k]))
        raise ProtocolError(f"commit-adopt {self.pid}: unknown pc {pc!r}")

    def apply(self, state: CommitAdoptState, op: Operation, result: Any) -> CommitAdoptState:
        pc = state.pc
        others = self._others(state.pref)

        if pc == "w_propose":
            if not others:
                # Singleton domain: nothing can conflict.
                return replace(
                    state, pc="done", output=(COMMIT, state.pref)
                )
            return replace(state, pc="scan_conflict", k=0)

        if pc == "scan_conflict":
            if result != 0:
                # Step 5: conflicted — look for a phase-2 value.
                return replace(state, pc="scan_b", k=0, seen_b=None)
            if state.k + 1 < len(others):
                return replace(state, k=state.k + 1)
            return replace(state, pc="w_phase2")

        if pc == "w_phase2":
            return replace(state, pc="scan_recheck", k=0)

        if pc == "scan_recheck":
            if result != 0:
                # A conflicting proposal arrived after phase 1: no commit.
                return replace(
                    state, pc="done", output=(ADOPT, state.pref)
                )
            if state.k + 1 < len(others):
                return replace(state, k=state.k + 1)
            return replace(state, pc="done", output=(COMMIT, state.pref))

        if pc == "scan_b":
            seen_b = state.seen_b
            if result != 0:
                seen_b = self.domain[state.k]
            if state.k + 1 < len(self.domain):
                return replace(state, k=state.k + 1, seen_b=seen_b)
            adopted = seen_b if seen_b is not None else state.pref
            return replace(state, pc="done", output=(ADOPT, adopted))

        raise ProtocolError(f"commit-adopt {self.pid}: cannot apply {pc!r}")


class CommitAdopt(Algorithm):
    """A one-shot commit-adopt object over a finite value domain.

    Named-model algorithm (value-indexed register roles are agreed), but
    with **no dependence on the number of processes** — the property the
    unbounded-concurrency consensus ladder builds on.
    """

    name = "commit-adopt"

    def __init__(self, domain: Tuple[Any, ...]):
        domain = tuple(domain)
        require(
            len(domain) >= 1 and len(set(domain)) == len(domain),
            f"domain must be non-empty and duplicate-free, got {domain!r}",
            ConfigurationError,
        )
        require(
            0 not in domain,
            "0 is reserved as the registers' initial state and cannot be a "
            "domain value",
            ConfigurationError,
        )
        self.domain = domain

    def register_count(self) -> int:
        return 2 * len(self.domain)

    def is_anonymous(self) -> bool:
        return False

    def automaton_for(self, pid: ProcessId, input: Any = None) -> CommitAdoptProcess:
        return CommitAdoptProcess(pid, input, self.domain)
