"""Ablation variants: the algorithms with their design constants exposed.

DESIGN.md calls out two load-bearing constants in the paper's
algorithms:

* Figure 1's give-up threshold ``ceil(m/2)`` (line 4) — oddness of ``m``
  makes it a strict majority, which is the whole Theorem 3.1 story;
* Figure 2's adoption threshold ``n`` over ``2n - 1`` registers — again
  a strict majority, carrying the Theorem 4.1 agreement argument.

The variants here parameterise those constants so the ablation bench
(``benchmarks/bench_ablations.py``) can measure what actually breaks as
they move: too-low mutex thresholds livelock (processes never yield),
too-high ones thrash; consensus thresholds below ``n`` lose the
uniqueness of the adopted value and with it agreement.  Running the
*wrong* constants through the same model checker and symmetry attack
that certify the right ones is the strongest evidence that the paper's
choices are necessary rather than incidental.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.consensus import AnonymousConsensus, AnonymousConsensusProcess
from repro.core.mutex import AnonymousMutex, AnonymousMutexProcess
from repro.errors import ConfigurationError
from repro.types import ProcessId, require


class ThresholdMutexProcess(AnonymousMutexProcess):
    """Figure 1 with an arbitrary line-4 give-up threshold."""

    def __init__(self, pid, m, threshold, cs_visits=1, cs_steps=1):
        super().__init__(pid, m, cs_visits=cs_visits, cs_steps=cs_steps)
        require(
            1 <= threshold <= m,
            f"threshold must be in 1..{m}, got {threshold}",
            ConfigurationError,
        )
        self.threshold = threshold


class ThresholdMutex(AnonymousMutex):
    """Ablation: Figure 1 with ``lose-threshold = t`` instead of ceil(m/2).

    ``t = ceil(m/2)`` reproduces the paper.  Lower ``t`` makes processes
    stubborn (they give up only when holding fewer than ``t`` registers,
    so with ``t = 1`` never); higher ``t`` makes them skittish (with
    ``t = m`` both always reset and retry).  Mutual exclusion survives
    any ``t`` (entry still requires all m registers); *deadlock-freedom*
    is what the ablation shows breaking.
    """

    name = "fig1-threshold-ablation"

    def __init__(self, m: int, threshold: int, cs_visits: int = 1, cs_steps: int = 1):
        super().__init__(
            m=m, cs_visits=cs_visits, cs_steps=cs_steps, unsafe_allow_any_m=True
        )
        self.threshold = threshold
        self.name = f"fig1-threshold(m={m}, t={threshold})"

    def automaton_for(self, pid: ProcessId, input: Any = None) -> ThresholdMutexProcess:
        cs_visits = input if isinstance(input, int) and input > 0 else self.cs_visits
        return ThresholdMutexProcess(
            pid,
            self.m,
            threshold=self.threshold,
            cs_visits=cs_visits,
            cs_steps=self.cs_steps,
        )


class LenientConsensusProcess(AnonymousConsensusProcess):
    """Figure 2 with a lowered adoption threshold and plurality tie-break.

    With threshold ``t < n`` two values can both reach ``t`` among the
    ``2n - 1`` val fields; the paper's line 4 then has no unique winner.
    This variant resolves ties by plurality (earliest index among the
    most frequent) — the "obvious fix" whose failure the ablation
    demonstrates.
    """

    def _adopt(self, myview):
        counts = {}
        for entry in myview:
            if entry.val != 0:
                counts[entry.val] = counts.get(entry.val, 0) + 1
        eligible = {v: c for v, c in counts.items() if c >= self.adopt_threshold}
        if not eligible:
            return None
        best = max(eligible.values())
        for entry in myview:  # earliest-index tie-break, deterministic
            if eligible.get(entry.val) == best:
                return entry.val
        return None  # pragma: no cover

    def _after_collect(self, state, myview):
        from dataclasses import replace

        from repro.core.consensus import choose_index
        from repro.memory.records import ConsensusRecord

        mypref = state.mypref
        adopted = self._adopt(myview)
        if adopted is not None:
            mypref = adopted
        target = ConsensusRecord(self.pid, mypref)
        if all(entry == target for entry in myview):
            return replace(state, pc="decided", mypref=mypref, myview=myview, j=0)
        index = choose_index(
            myview, lambda entry: entry != target, self.choice,
            salt=(self.pid, myview),
        )
        return replace(
            state, pc="write", mypref=mypref, myview=myview,
            write_index=index, j=0,
        )


class LenientConsensus(AnonymousConsensus):
    """Ablation: Figure 2 with adoption threshold ``t`` instead of ``n``."""

    name = "fig2-threshold-ablation"

    def __init__(self, n: int, threshold: Optional[int] = None, registers: Optional[int] = None):
        super().__init__(n=n, registers=registers)
        self.threshold = threshold if threshold is not None else n
        require(
            1 <= self.threshold,
            f"threshold must be positive, got {self.threshold}",
            ConfigurationError,
        )
        self.name = f"fig2-threshold(n={n}, t={self.threshold})"

    def automaton_for(self, pid: ProcessId, input: Any = None) -> LenientConsensusProcess:
        return LenientConsensusProcess(
            pid, input, m=self.m, adopt_threshold=self.threshold
        )
