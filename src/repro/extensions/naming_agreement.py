"""Naming agreement: bootstrapping a common register numbering — a §8
exploration.

The Discussion section asks about models mixing named and unnamed
objects, and about the gap between them.  A natural bridge question: can
processes *agree on a naming* using the anonymous registers themselves,
after which any named-model algorithm runs unchanged?  This module
implements one protocol for a known number of processes ``n``:

1. **Elect.**  Run the Figure 2 consensus core with identifiers as
   inputs over the ``2n - 1`` registers.
2. **Tag.**  The elected leader overwrites every register ``j`` (in its
   own numbering) with a tag record ``(TAG, leader, j)`` and halts,
   outputting the identity numbering.
3. **Adopt.**  Every other process abandons the election the moment any
   read returns a tag, then keeps scanning, building the map from its
   private numbering to the leader's.  When only **one** register's tag
   is missing, the map is completed *by elimination*, and the process
   **repairs** that register (rewrites the inferred tag) before
   halting.

Why repair exists: a process may have committed to an election write
just before tags appeared; that stale vote lands *after* the leader
tagged, destroying one tag.  Inference-plus-repair heals any single
outstanding clobber — including the perpetrator healing its own.

**Guarantee (and its honest limits).**  All completed outputs are
mutually consistent (each physical register gets one agreed number —
:func:`consistent_namings`), and the protocol terminates under
schedules where (a) the elected leader runs to completion and (b) stale
post-tagging votes land one at a time (each healed before the next
lands) — e.g. any schedule that runs the remaining processes solo in
turn.  Two *interleaved* stale clobbers can destroy two tags at once,
leaving both perpetrators unable to disambiguate the missing indices:
the information is genuinely gone and only a live leader could restore
it.  This is not an implementation artifact — an unconditionally
obstruction-free naming agreement would implement named registers from
unnamed ones, which Corollary 6.4 forbids for unknown ``n`` and which
the paper leaves open even for known ``n``.  The tests construct the
bad corner explicitly to document that it is reachable.

After agreement, :class:`AgreedView` adapts a process's raw
:class:`~repro.memory.anonymous.MemoryView` to the agreed numbering
(translating leftover protocol records to the payload's initial value),
so named algorithms — Peterson, tournaments, anything — run on top of
memory that started with no naming agreement at all.  The test suite
does exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Tuple

from repro.core.consensus import majority_value
from repro.errors import ConfigurationError, ProtocolError
from repro.memory.anonymous import MemoryView
from repro.runtime.automaton import Algorithm, ProcessAutomaton
from repro.runtime.ops import Operation, ReadOp, WriteOp
from repro.types import ProcessId, RegisterValue, require, validate_process_id


@dataclass(frozen=True)
class ElectionRecord:
    """Register contents: an election vote or a leader tag.

    ``kind`` is ``"vote"`` during the election (``a`` = writer id,
    ``b`` = preferred leader id) and ``"tag"`` afterwards (``a`` =
    leader id, ``b`` = the register's agreed index).
    """

    kind: str = "vote"
    a: int = 0
    b: int = 0

    def is_empty(self) -> bool:
        """True for the initial register state."""
        return self.kind == "vote" and self.a == 0 and self.b == 0


@dataclass(frozen=True)
class NamingState:
    """Local state of one naming-agreement process."""

    pc: str = "collect"
    j: int = 0
    myview: Tuple[ElectionRecord, ...] = ()
    mypref: ProcessId = 0
    write_index: int = -1
    #: The elected leader, once known.
    leader: Optional[ProcessId] = None
    #: Accumulated mapping: (view index, agreed index) pairs.
    mapping: Tuple[Tuple[int, int], ...] = ()
    #: View index to repair with an inferred tag, while pc=="repair_write".
    repair_j: int = -1
    repair_agreed: int = -1
    #: The final output permutation, once done.
    output_perm: Optional[Tuple[int, ...]] = None


class NamingAgreementProcess(ProcessAutomaton):
    """One process of the naming-agreement protocol."""

    PC_LINES = {
        "collect": "Figure 2 core, line 3 — election read pass (§8 exploration)",
        "write": "Figure 2 core, line 7 — election vote write (§8 exploration)",
        "tag_write": "§8 exploration, step 2 — leader tags register j with (TAG, leader, j)",
        "adopt_scan": "§8 exploration, step 3 — non-leader scans for tags",
        "repair_write": "§8 exploration, step 3 — rewrite the tag inferred by elimination",
        "done": "§8 exploration — agreed numbering returned",
    }

    def __init__(self, pid: ProcessId, n: int, m: int):
        self.pid = validate_process_id(pid)
        self.n = n
        self.m = m

    def initial_state(self) -> NamingState:
        return NamingState(mypref=self.pid)

    def is_halted(self, state: NamingState) -> bool:
        return state.pc == "done"

    def output(self, state: NamingState) -> Optional[Tuple[int, ...]]:
        """The agreed numbering: ``output[j]`` is the agreed index of the
        register this process privately calls ``j``."""
        return state.output_perm if state.pc == "done" else None

    # -- operations ---------------------------------------------------------

    def next_op(self, state: NamingState) -> Operation:
        self.require_running(state)
        pc = state.pc
        if pc in ("collect", "adopt_scan"):
            return ReadOp(state.j)
        if pc == "write":
            return WriteOp(
                state.write_index, ElectionRecord("vote", self.pid, state.mypref)
            )
        if pc == "tag_write":
            return WriteOp(state.j, ElectionRecord("tag", self.pid, state.j))
        if pc == "repair_write":
            return WriteOp(
                state.repair_j,
                ElectionRecord("tag", state.leader, state.repair_agreed),
            )
        raise ProtocolError(f"naming agreement {self.pid}: unknown pc {pc!r}")

    def apply(self, state: NamingState, op: Operation, result: Any) -> NamingState:
        pc = state.pc
        record = result if isinstance(result, ElectionRecord) else ElectionRecord()

        if pc == "collect":
            # Per-read tag detection: the election is over the moment any
            # tag is visible; abandon immediately (before any new write).
            if record.kind == "tag":
                return self._leader_known(state, record.a)
            myview = state.myview + (record,)
            if state.j + 1 < self.m:
                return replace(state, j=state.j + 1, myview=myview)
            return self._after_collect(state, myview)

        if pc == "write":
            return replace(state, pc="collect", j=0, myview=(), write_index=-1)

        if pc == "tag_write":
            if state.j + 1 < self.m:
                return replace(state, j=state.j + 1)
            # Leader: own numbering is the agreed one.
            return replace(state, pc="done", output_perm=tuple(range(self.m)))

        if pc == "repair_write":
            return self._finish(state)

        if pc == "adopt_scan":
            mapping = dict(state.mapping)
            if record.kind == "tag" and record.a == state.leader:
                mapping[state.j] = record.b
            mapping_t = tuple(sorted(mapping.items()))
            if len(mapping) == self.m:
                return self._finish(replace(state, mapping=mapping_t))
            if state.j + 1 < self.m:
                return replace(state, j=state.j + 1, mapping=mapping_t)
            # End of a full pass: one missing tag can be inferred by
            # elimination and repaired; otherwise keep scanning.
            if len(mapping) == self.m - 1:
                missing_view = next(
                    j for j in range(self.m) if j not in mapping
                )
                missing_agreed = next(
                    idx for idx in range(self.m) if idx not in mapping.values()
                )
                mapping[missing_view] = missing_agreed
                return replace(
                    state,
                    pc="repair_write",
                    mapping=tuple(sorted(mapping.items())),
                    repair_j=missing_view,
                    repair_agreed=missing_agreed,
                )
            return replace(state, j=0, mapping=mapping_t)

        raise ProtocolError(f"naming agreement {self.pid}: cannot apply {pc!r}")

    def _finish(self, state: NamingState) -> NamingState:
        mapping = dict(state.mapping)
        perm = tuple(mapping[j] for j in range(self.m))
        if sorted(perm) != list(range(self.m)):
            raise ProtocolError(
                f"process {self.pid} assembled a non-bijective numbering "
                f"{perm!r}; tag records were corrupted beyond repair"
            )
        return replace(state, pc="done", output_perm=perm)

    # -- election phase (Figure 2 core over ElectionRecords) -----------------

    def _after_collect(
        self, state: NamingState, myview: Tuple[ElectionRecord, ...]
    ) -> NamingState:
        mypref = state.mypref
        adopted = majority_value(
            (entry.b if entry.kind == "vote" else 0 for entry in myview),
            self.n,
        )
        if adopted is not None:
            mypref = adopted
        target = ElectionRecord("vote", self.pid, mypref)
        if all(entry == target for entry in myview):
            # Election decided: the agreed leader is mypref.
            return self._leader_known(replace(state, mypref=mypref), mypref)
        index = next(k for k, entry in enumerate(myview) if entry != target)
        return replace(
            state,
            pc="write",
            mypref=mypref,
            myview=myview,
            write_index=index,
            j=0,
        )

    def _leader_known(self, state: NamingState, leader: ProcessId) -> NamingState:
        if leader == self.pid:
            # Tag every register with our numbering.
            return replace(state, pc="tag_write", j=0, leader=leader, myview=())
        return replace(
            state, pc="adopt_scan", j=0, leader=leader, mapping=(), myview=()
        )


class NamingAgreement(Algorithm):
    """Agree on a common register numbering over anonymous registers.

    The array size is pinned to the election's ``2n - 1``: the embedded
    Figure 2 core needs its adoption threshold ``n`` to be a strict
    majority, which holds exactly at ``m = 2n - 1``.  All registers end
    up tagged and usable by the payload algorithm afterwards.
    """

    name = "naming-agreement(§8 exploration)"

    def __init__(self, n: int):
        require(
            isinstance(n, int) and n >= 1,
            f"naming agreement needs a positive process count, got {n!r}",
            ConfigurationError,
        )
        self.n = n
        self.m = 2 * n - 1

    def register_count(self) -> int:
        return self.m

    def initial_value(self) -> RegisterValue:
        return ElectionRecord()

    def automaton_for(self, pid: ProcessId, input: Any = None) -> NamingAgreementProcess:
        return NamingAgreementProcess(pid, n=self.n, m=self.m)


def consistent_namings(system, outputs: Dict[ProcessId, Tuple[int, ...]]) -> bool:
    """Check that the output numberings agree physically.

    For every pair of processes and every physical register, both must
    assign it the same agreed index: ``out_p[view_p(phys)] ==
    out_q[view_q(phys)]``.
    """
    pids = list(outputs)
    for phys in range(system.memory.size):
        agreed = set()
        for pid in pids:
            view = system.memory.view(pid)
            agreed.add(outputs[pid][view.view_index_of(phys)])
        if len(agreed) != 1:
            return False
    return True


class AgreedView:
    """Adapt a raw :class:`MemoryView` to an agreed numbering.

    ``read``/``write`` address registers by the *agreed* index.  Leftover
    protocol records (election votes / tags) read as ``payload_initial``
    so that a payload algorithm sees the initial memory it expects; its
    own writes pass through untouched.
    """

    def __init__(
        self,
        view: MemoryView,
        agreed_perm: Tuple[int, ...],
        payload_initial: RegisterValue = 0,
    ):
        self._view = view
        # agreed index -> private view index
        self._to_view = {agreed: j for j, agreed in enumerate(agreed_perm)}
        if len(self._to_view) != len(agreed_perm):
            raise ConfigurationError(
                f"agreed numbering {agreed_perm!r} is not a bijection"
            )
        self._payload_initial = payload_initial
        self.pid = view.pid

    @property
    def size(self) -> int:
        """Number of registers visible through the agreed numbering."""
        return len(self._to_view)

    def read(self, agreed_index: int) -> RegisterValue:
        value = self._view.read(self._to_view[agreed_index])
        if isinstance(value, ElectionRecord):
            return self._payload_initial
        return value

    def write(self, agreed_index: int, value: RegisterValue) -> None:
        self._view.write(self._to_view[agreed_index], value)
