"""Extensions: the paper's §8 directions and §6.3 remark, executable.

Beyond the paper's published results, this package explores the
follow-up questions the Discussion section raises:

* :mod:`repro.extensions.commit_adopt` — value-indexed commit-adopt
  objects for unboundedly many processes (named model);
* :mod:`repro.extensions.unbounded_consensus` — obstruction-free
  consensus with an unknown/unbounded number of processes, the [25]
  possibility result that (with Theorem 6.3) yields Corollary 6.4;
* :mod:`repro.extensions.naming_agreement` — bootstrapping a common
  register numbering over anonymous registers (a hybrid-model bridge;
  leader-progress only, as Corollary 6.4 demands some such weakness);
* :mod:`repro.extensions.kset` — the §6.3 k-set consensus remark:
  specification, a named-model partitioned algorithm, and the
  generalized covering demonstration;
* :mod:`repro.extensions.variants` — ablation variants exposing the
  algorithms' load-bearing thresholds.
"""

from repro.extensions.commit_adopt import (
    ADOPT,
    COMMIT,
    CommitAdopt,
    CommitAdoptProcess,
    CommitAdoptState,
)
from repro.extensions.kset import (
    KSetChecker,
    PartitionedKSetConsensus,
    demonstrate_kset_unknown_n,
    distinct_decisions,
)
from repro.extensions.naming_agreement import (
    AgreedView,
    ElectionRecord,
    NamingAgreement,
    NamingAgreementProcess,
    consistent_namings,
)
from repro.extensions.unbounded_consensus import (
    LadderConsensusProcess,
    UnboundedConsensus,
)
from repro.extensions.variants import (
    LenientConsensus,
    ThresholdMutex,
)

__all__ = [
    "ADOPT",
    "COMMIT",
    "CommitAdopt",
    "CommitAdoptProcess",
    "CommitAdoptState",
    "KSetChecker",
    "PartitionedKSetConsensus",
    "demonstrate_kset_unknown_n",
    "distinct_decisions",
    "AgreedView",
    "ElectionRecord",
    "NamingAgreement",
    "NamingAgreementProcess",
    "consistent_namings",
    "LadderConsensusProcess",
    "UnboundedConsensus",
    "LenientConsensus",
    "ThresholdMutex",
]
