"""``repro.problems`` — the declarative problem registry.

One :class:`~repro.problems.spec.ProblemSpec` per shipped algorithm
(plus addressable mutants), consumed by the lint passes, the exhaustive
verifier (``python -m repro verify``), the sweep harness and the
exploration benchmark.  See :mod:`repro.problems.registry` for the
table itself and docs/ARCHITECTURE.md for where the layer sits.
"""

from repro.problems.registry import (
    PIDS,
    get_problem,
    instances_with_role,
    pids,
    problem_specs,
    shipped_automaton_classes,
    shipped_modules,
)
from repro.problems.spec import (
    Inputs,
    LivenessProperty,
    ProblemInstance,
    ProblemSpec,
)

__all__ = [
    "PIDS",
    "Inputs",
    "LivenessProperty",
    "ProblemInstance",
    "ProblemSpec",
    "get_problem",
    "instances_with_role",
    "pids",
    "problem_specs",
    "shipped_automaton_classes",
    "shipped_modules",
]
