"""The problem registry: every shipped algorithm as a :class:`ProblemSpec`.

This table is the *only* place the repository enumerates its algorithms.
Consumers derive their views from it:

* the lint passes get their automaton classes and small dynamic-pass
  instances (:mod:`repro.lint.registry` adapts the ``"lint"``-role
  instances into its historical ``LintTarget`` shape);
* ``python -m repro verify`` runs the ``"verify"``-role instances
  through exhaustive safety + liveness checking (:mod:`repro.verify`);
* the exploration benchmark builds its rows from the ``"bench"``-role
  instances (labels are the ``BENCH_explore.json`` trajectory keys);
* the sweep harness resolves algorithm factories by problem key
  (:func:`repro.analysis.experiments.sweep_problem`).

Mutants (``mutant=True``) are algorithms deliberately configured in a
forbidden regime — they are excluded from every "shipped" view and exist
so the verifier can demonstrate a *found* counterexample (the Theorem
3.4 even-``m`` livelock) rather than only ever confirming theorems.

Process identifiers follow the test suite's convention (>= 100) so they
can never collide with register indices or loop counters.
"""

from __future__ import annotations

import importlib
from typing import Dict, Iterator, List, Tuple, Type

from repro.problems.spec import (
    AutomatonFootprint,
    Inputs,
    LivenessProperty,
    ProblemInstance,
    ProblemSpec,
)
from repro.runtime.automaton import ProcessAutomaton
from repro.runtime.exploration import (
    agreement_invariant,
    conjoin,
    mutual_exclusion_invariant,
    unique_names_invariant,
    validity_invariant,
)
from repro.types import ProcessId

PIDS: Tuple[ProcessId, ...] = (101, 103, 107, 109)


def pids(n: int) -> Tuple[ProcessId, ...]:
    """The first ``n`` conventional process identifiers."""
    return PIDS[:n]


def _mutex_pids(params: Dict) -> Inputs:
    return pids(params.get("n", 2))


def _consensus_inputs(params: Dict) -> Inputs:
    n = params.get("n", 2)
    if params.get("equal"):
        return {pid: "same" for pid in pids(n)}
    return {pid: f"v{k}" for k, pid in enumerate(pids(n))}


def _binary_inputs(params: Dict) -> Inputs:
    return {PIDS[0]: 1, PIDS[1]: 2}


def _mutex_domain(params: Dict) -> Tuple:
    """Every value a Figure 1 register can hold: 0 plus the pids in play."""
    return (0,) + pids(params.get("n", 2))


def _consensus_domain(params: Dict) -> Tuple:
    """Every value a Figure 2 register can hold.

    Registers start at the empty record and are only ever overwritten
    with ``(pid, pref)`` where ``pref`` is some process's input (line 4's
    adoption can only ever pick up another input value).
    """
    from repro.memory.records import ConsensusRecord

    inputs = dict(_consensus_inputs(params))
    values = sorted(set(inputs.values()))
    return (ConsensusRecord(),) + tuple(
        ConsensusRecord(pid, value)
        for pid in pids(params.get("n", 2))
        for value in values
    )


def _ring_naming(params: Dict):
    from repro.memory.naming import RingNaming

    return RingNaming.equispaced(pids(params.get("n", 2)), params["m"])


def _specs() -> Tuple[ProblemSpec, ...]:
    from repro.baselines.named_consensus import (
        NamedConsensus,
        NamedConsensusProcess,
    )
    from repro.baselines.named_mutex import PetersonMutex, TournamentMutexProcess
    from repro.baselines.named_renaming import (
        ElectionChainProcess,
        ElectionChainRenaming,
    )
    from repro.baselines.splitter_renaming import (
        SplitterRenaming,
        SplitterRenamingProcess,
    )
    from repro.core.consensus import AnonymousConsensus, AnonymousConsensusProcess
    from repro.core.election import AnonymousElection
    from repro.core.mutex import AnonymousMutex, AnonymousMutexProcess
    from repro.core.renaming import AnonymousRenaming, AnonymousRenamingProcess
    from repro.extensions.commit_adopt import CommitAdopt, CommitAdoptProcess
    from repro.extensions.kset import PartitionedKSetConsensus, PartitionedProcess
    from repro.extensions.naming_agreement import (
        NamingAgreement,
        NamingAgreementProcess,
    )
    from repro.extensions.unbounded_consensus import (
        LadderConsensusProcess,
        UnboundedConsensus,
    )
    from repro.extensions.variants import (
        LenientConsensus,
        LenientConsensusProcess,
        ThresholdMutex,
        ThresholdMutexProcess,
    )
    from repro.lowerbounds.candidates import (
        NaiveTestAndSetLock,
        NaiveTestAndSetProcess,
    )

    consensus_safety = conjoin(agreement_invariant, validity_invariant)

    return (
        ProblemSpec(
            key="figure-1-mutex",
            title="Figure 1 — anonymous mutual exclusion (odd m)",
            module="repro.core.mutex",
            automata=(AnonymousMutexProcess,),
            build=lambda p: AnonymousMutex(
                m=p["m"], cs_visits=p.get("cs_visits", 1)
            ),
            inputs=_mutex_pids,
            value_domain=_mutex_domain,
            theorems=(
                "Theorem 3.1", "Theorem 3.2", "Theorem 3.3", "Theorem 3.4",
            ),
            invariant=mutual_exclusion_invariant,
            liveness=(
                LivenessProperty("deadlock-freedom", "Theorem 3.3"),
            ),
            footprints=(
                (
                    "AnonymousMutexProcess",
                    AutomatonFootprint(
                        writes_pid=True,
                        write_constants=(0,),
                        symbolic_indexing=True,
                    ),
                ),
            ),
            instances=(
                ProblemInstance(
                    "figure-1-mutex(m=3)",
                    params=(("m", 3),),
                    roles=("lint", "verify", "bench"),
                    race_check=True,
                    bench_label="mutex m=3 (n=2)",
                    bench_quick=True,
                ),
                ProblemInstance(
                    "figure-1-mutex(m=5)",
                    params=(("m", 5),),
                    roles=("verify", "bench"),
                    bench_label="mutex m=5 (n=2)",
                    bench_quick=True,
                ),
                ProblemInstance(
                    "figure-1-mutex(m=7)",
                    params=(("m", 7),),
                    roles=("verify", "bench"),
                    bench_label="mutex m=7 (n=2)",
                ),
                ProblemInstance(
                    "figure-1-mutex(m=9)",
                    params=(("m", 9),),
                    roles=("bench",),
                    bench_label="mutex m=9 (n=2)",
                ),
                ProblemInstance(
                    "figure-1-mutex(m=9,extended)",
                    params=(("m", 9),),
                    roles=("bench",),
                    bench_label="mutex m=9 (n=2, extended budget)",
                    bench_overrides=(("max_states", 1_000_000),),
                    notes="lets the seed engine complete and show its true cost",
                ),
            ),
        ),
        ProblemSpec(
            key="figure-2-consensus",
            title="Figure 2 — anonymous obstruction-free consensus",
            module="repro.core.consensus",
            automata=(AnonymousConsensusProcess,),
            build=lambda p: AnonymousConsensus(n=p["n"]),
            inputs=_consensus_inputs,
            value_domain=_consensus_domain,
            theorems=("Theorem 4.1", "Theorem 4.2"),
            invariant=consensus_safety,
            liveness=(
                LivenessProperty("obstruction-freedom", "Theorem 4.1"),
            ),
            footprints=(
                (
                    "AnonymousConsensusProcess",
                    AutomatonFootprint(
                        writes_pid=True,
                        writes_input=True,
                        writes_memory=True,
                        symbolic_indexing=True,
                    ),
                ),
            ),
            instances=(
                ProblemInstance(
                    "figure-2-consensus(n=2)",
                    params=(("n", 2),),
                    roles=("lint", "verify", "bench"),
                    race_check=True,
                    bench_label="consensus n=2 (distinct inputs)",
                    bench_quick=True,
                ),
                ProblemInstance(
                    "figure-2-consensus(n=3,equal)",
                    params=(("equal", True), ("n", 3)),
                    roles=("bench",),
                    bench_label="consensus n=3 (equal inputs)",
                ),
                ProblemInstance(
                    "figure-2-consensus(n=3,equal,extended)",
                    params=(("equal", True), ("n", 3)),
                    roles=("bench",),
                    bench_label="consensus n=3 (equal inputs, extended budget)",
                    bench_overrides=(("max_states", 1_500_000),),
                    notes="the seed engine still cannot complete here",
                ),
            ),
        ),
        ProblemSpec(
            key="figure-3-renaming",
            title="Figure 3 — anonymous perfect renaming",
            module="repro.core.renaming",
            automata=(AnonymousRenamingProcess,),
            build=lambda p: AnonymousRenaming(n=p["n"]),
            inputs=_mutex_pids,
            theorems=("Theorem 5.1", "Theorem 5.2", "Theorem 5.3"),
            invariant=unique_names_invariant,
            liveness=(
                LivenessProperty("obstruction-freedom", "Theorem 5.1"),
            ),
            footprints=(
                (
                    "AnonymousRenamingProcess",
                    AutomatonFootprint(
                        writes_pid=True,
                        writes_memory=True,
                        writes_counter=True,
                        symbolic_indexing=True,
                    ),
                ),
            ),
            instances=(
                ProblemInstance(
                    "figure-3-renaming(n=2)",
                    params=(("n", 2),),
                    roles=("lint", "verify", "bench"),
                    race_check=True,
                    bench_label="renaming n=2",
                    bench_quick=True,
                ),
            ),
        ),
        ProblemSpec(
            key="election",
            title="Leader election from consensus on identifiers",
            module="repro.core.election",
            automata=(),  # reuses AnonymousConsensusProcess (Figure 2)
            build=lambda p: AnonymousElection(n=p["n"]),
            inputs=_mutex_pids,
            theorems=("Theorem 4.2",),
            # Agreement only: election decides *identifiers*, which are
            # not inputs, so consensus validity does not apply.
            invariant=agreement_invariant,
            liveness=(
                LivenessProperty("obstruction-freedom", "Theorem 4.2"),
            ),
            instances=(
                ProblemInstance(
                    "election(n=2)",
                    params=(("n", 2),),
                    roles=("lint", "verify"),
                ),
            ),
        ),
        ProblemSpec(
            key="naming-agreement",
            title="Naming agreement (repairable name claims)",
            module="repro.extensions.naming_agreement",
            automata=(NamingAgreementProcess,),
            build=lambda p: NamingAgreement(n=p["n"]),
            inputs=_mutex_pids,
            footprints=(
                (
                    "NamingAgreementProcess",
                    AutomatonFootprint(
                        writes_pid=True,
                        writes_memory=True,
                        writes_counter=True,
                        writes_config=True,
                        symbolic_indexing=True,
                    ),
                ),
            ),
            instances=(
                ProblemInstance(
                    "naming-agreement(n=2)",
                    params=(("n", 2),),
                    max_states=400_000,
                    notes="repair_write needs deep interleavings",
                ),
            ),
        ),
        ProblemSpec(
            key="commit-adopt",
            title="Commit-adopt over a binary domain",
            module="repro.extensions.commit_adopt",
            automata=(CommitAdoptProcess,),
            build=lambda p: CommitAdopt(domain=(1, 2)),
            inputs=_binary_inputs,
            footprints=(
                (
                    "CommitAdoptProcess",
                    AutomatonFootprint(
                        write_constants=(1,),
                        symbolic_indexing=True,
                    ),
                ),
            ),
            instances=(
                ProblemInstance("commit-adopt", naming_seed=None),
            ),
        ),
        ProblemSpec(
            key="ladder-consensus",
            title="Unbounded ladder consensus",
            module="repro.extensions.unbounded_consensus",
            automata=(LadderConsensusProcess,),
            build=lambda p: UnboundedConsensus(
                domain=(1, 2), max_rounds=p.get("max_rounds", 8)
            ),
            inputs=_binary_inputs,
            footprints=(
                (
                    "LadderConsensusProcess",
                    AutomatonFootprint(forwards_values=True, no_ops=True),
                ),
            ),
            instances=(
                ProblemInstance(
                    "ladder-consensus",
                    params=(("max_rounds", 8),),
                    naming_seed=None,
                    notes="state space grows with rounds; truncation expected",
                ),
            ),
        ),
        ProblemSpec(
            key="threshold-mutex",
            title="Threshold variant of the Figure 1 mutex",
            module="repro.extensions.variants",
            automata=(ThresholdMutexProcess,),
            build=lambda p: ThresholdMutex(
                m=p["m"], threshold=p["threshold"], cs_visits=1
            ),
            inputs=_mutex_pids,
            invariant=mutual_exclusion_invariant,
            footprints=(
                (
                    "ThresholdMutexProcess",
                    AutomatonFootprint(
                        writes_pid=True,
                        write_constants=(0,),
                        symbolic_indexing=True,
                    ),
                ),
            ),
            instances=(
                ProblemInstance(
                    "threshold-mutex(m=3,t=2)",
                    params=(("m", 3), ("threshold", 2)),
                ),
            ),
        ),
        ProblemSpec(
            key="lenient-consensus",
            title="Lenient (grace-round) consensus variant",
            module="repro.extensions.variants",
            automata=(LenientConsensusProcess,),
            build=lambda p: LenientConsensus(n=p["n"]),
            inputs=_consensus_inputs,
            footprints=(
                (
                    "LenientConsensusProcess",
                    AutomatonFootprint(
                        writes_pid=True,
                        writes_input=True,
                        writes_memory=True,
                        symbolic_indexing=True,
                    ),
                ),
            ),
            instances=(
                ProblemInstance(
                    "lenient-consensus(n=2)", params=(("n", 2),)
                ),
            ),
        ),
        ProblemSpec(
            key="partitioned-k-set",
            title="Partitioned (n,k)-set consensus",
            module="repro.extensions.kset",
            automata=(PartitionedProcess,),
            build=lambda p: PartitionedKSetConsensus(n=p["n"], k=p["k"]),
            inputs=_consensus_inputs,
            footprints=(
                (
                    "PartitionedProcess",
                    AutomatonFootprint(
                        symbolic_indexing=True, forwards_values=True
                    ),
                ),
            ),
            instances=(
                ProblemInstance(
                    "partitioned-k-set(n=2,k=2)",
                    params=(("k", 2), ("n", 2)),
                    naming_seed=None,
                ),
            ),
        ),
        ProblemSpec(
            key="naive-lock",
            title="Naive test-and-set lock (lower-bound candidate)",
            module="repro.lowerbounds.candidates",
            automata=(NaiveTestAndSetProcess,),
            build=lambda p: NaiveTestAndSetLock(cs_visits=1),
            inputs=_mutex_pids,
            footprints=(
                (
                    "NaiveTestAndSetProcess",
                    AutomatonFootprint(
                        writes_pid=True,
                        write_constants=(0,),
                        index_constants=(0,),
                    ),
                ),
            ),
            instances=(
                ProblemInstance("naive-lock"),
            ),
        ),
        ProblemSpec(
            key="peterson-mutex",
            title="Peterson tournament mutex (named baseline)",
            module="repro.baselines.named_mutex",
            automata=(TournamentMutexProcess,),
            build=lambda p: PetersonMutex(cs_visits=1),
            inputs=_mutex_pids,
            invariant=mutual_exclusion_invariant,
            footprints=(
                (
                    "TournamentMutexProcess",
                    AutomatonFootprint(
                        writes_pid=True,
                        writes_config=True,
                        write_constants=(0,),
                        symbolic_indexing=True,
                    ),
                ),
            ),
            instances=(
                ProblemInstance(
                    "peterson-mutex", race_check=True, naming_seed=None
                ),
            ),
        ),
        ProblemSpec(
            key="election-chain-renaming",
            title="Election-chain renaming (named baseline)",
            module="repro.baselines.named_renaming",
            automata=(ElectionChainProcess,),
            build=lambda p: ElectionChainRenaming(n=p["n"]),
            inputs=_mutex_pids,
            footprints=(
                (
                    "ElectionChainProcess",
                    AutomatonFootprint(
                        symbolic_indexing=True, forwards_values=True
                    ),
                ),
            ),
            instances=(
                ProblemInstance(
                    "election-chain-renaming(n=2)",
                    params=(("n", 2),),
                    naming_seed=None,
                ),
            ),
        ),
        ProblemSpec(
            key="splitter-renaming",
            title="Splitter-based renaming (named baseline)",
            module="repro.baselines.splitter_renaming",
            automata=(SplitterRenamingProcess,),
            build=lambda p: SplitterRenaming(n=p["n"]),
            inputs=_mutex_pids,
            footprints=(
                (
                    "SplitterRenamingProcess",
                    AutomatonFootprint(
                        writes_pid=True,
                        write_constants=(1,),
                        symbolic_indexing=True,
                    ),
                ),
            ),
            instances=(
                ProblemInstance(
                    "splitter-renaming(n=2)",
                    params=(("n", 2),),
                    naming_seed=None,
                ),
            ),
        ),
        ProblemSpec(
            key="named-consensus",
            title="Named-model consensus (baseline)",
            module="repro.baselines.named_consensus",
            automata=(NamedConsensusProcess,),
            build=lambda p: NamedConsensus(n=p["n"]),
            inputs=_consensus_inputs,
            footprints=(
                (
                    "NamedConsensusProcess",
                    AutomatonFootprint(
                        writes_pid=True,
                        writes_input=True,
                        writes_memory=True,
                        symbolic_indexing=True,
                    ),
                ),
            ),
            instances=(
                ProblemInstance(
                    "named-consensus(n=2)",
                    params=(("n", 2),),
                    naming_seed=None,
                ),
            ),
        ),
        # -- seeded mutants: forbidden regimes kept for counterexamples --
        ProblemSpec(
            key="figure-1-mutex-even-m",
            title="Figure 1 mutex with even m — the Theorem 3.4 regime",
            module="repro.core.mutex",
            automata=(),  # same AnonymousMutexProcess as figure-1-mutex
            build=lambda p: AnonymousMutex(
                m=p["m"], cs_visits=1, unsafe_allow_any_m=True
            ),
            inputs=_mutex_pids,
            value_domain=_mutex_domain,
            theorems=("Theorem 3.1", "Theorem 3.4"),
            invariant=mutual_exclusion_invariant,
            naming=_ring_naming,
            liveness=(
                LivenessProperty(
                    "deadlock-freedom", "Theorem 3.4", expect_violation=True
                ),
            ),
            mutant=True,
            instances=(
                ProblemInstance(
                    "figure-1-mutex-even-m(m=4)",
                    params=(("m", 4),),
                    roles=("verify",),
                    notes="equispaced ring naming; the lockstep livelock "
                    "of Theorem 3.4 must appear as a fair non-progress "
                    "cycle",
                ),
            ),
        ),
    )


_CACHE: Dict[bool, Tuple[ProblemSpec, ...]] = {}


def problem_specs(include_mutants: bool = False) -> Tuple[ProblemSpec, ...]:
    """All registered problems, in declaration (= lint output) order."""
    if include_mutants not in _CACHE:
        specs = _specs()
        keys = [spec.key for spec in specs]
        assert len(set(keys)) == len(keys), f"duplicate problem keys: {keys}"
        _CACHE[True] = specs
        _CACHE[False] = tuple(s for s in specs if not s.mutant)
    return _CACHE[include_mutants]


def get_problem(key: str) -> ProblemSpec:
    """Look a problem up by key (mutants included — they are addressable,
    just never part of a 'shipped' enumeration)."""
    for spec in problem_specs(include_mutants=True):
        if spec.key == key:
            return spec
    raise KeyError(
        f"unknown problem {key!r}; known: "
        f"{[s.key for s in problem_specs(include_mutants=True)]}"
    )


def instances_with_role(
    role: str, include_mutants: bool = False
) -> Iterator[Tuple[ProblemSpec, ProblemInstance]]:
    """Every ``(spec, instance)`` pair the given consumer runs."""
    for spec in problem_specs(include_mutants=include_mutants):
        for inst in spec.instances_with_role(role):
            yield spec, inst


def shipped_modules() -> Tuple[str, ...]:
    """The modules shipping algorithm code, in first-appearance order."""
    seen: Dict[str, None] = {}
    for spec in problem_specs():
        seen.setdefault(spec.module, None)
    return tuple(seen)


def shipped_automaton_classes() -> List[Type[ProcessAutomaton]]:
    """Every automaton class the registry declares, sorted like the old
    subclass walk (module, qualname) so lint output order is stable.

    The registry declaration *is* the source of truth; the drift test in
    ``tests/problems/test_registry.py`` walks the
    :class:`~repro.runtime.automaton.ProcessAutomaton` subclass tree
    over :func:`shipped_modules` and fails if a shipped module ever
    defines an automaton class the registry does not declare (or vice
    versa), so the count in ``repro lint``'s summary line can no longer
    silently drift.
    """
    for module in shipped_modules():
        importlib.import_module(module)
    classes = {cls for spec in problem_specs() for cls in spec.automata}
    return sorted(classes, key=lambda cls: (cls.__module__, cls.__qualname__))
