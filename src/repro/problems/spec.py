"""Problem specifications: one declarative record per shipped algorithm.

A :class:`ProblemSpec` bundles everything the rest of the codebase used
to hand-wire per consumer — the automaton builder, the parameter space,
the safety invariant, the declared liveness properties, and the concrete
instances each consumer runs — so that ``explore()``/``sweep()``, the
lint passes, the experiments harness, the exploration benchmark and the
CLI all resolve algorithms through one table
(:mod:`repro.problems.registry`) instead of five drifting copies.

Design notes
------------
* Specs are *frozen* values: builders are plain callables taking the
  instance's parameter dict, so a spec can be shipped to worker
  processes or introspected without instantiating anything.
* Instances carry **roles** (``"lint"``, ``"verify"``, ``"bench"``)
  rather than living in per-consumer tables; budgets that only one
  consumer reads (lint exploration caps, bench overrides) live on the
  instance next to the parameters they budget.
* Liveness properties are declarations, not implementations: the
  exhaustive checkers live in :mod:`repro.verify` and look the property
  kind up here (``"deadlock-freedom"`` → SCC non-progress-cycle
  analysis, ``"obstruction-freedom"`` → per-state solo-run
  termination).  ``expect_violation`` marks seeded mutants whose whole
  point is to *fail* verification with a replayable counterexample.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)

from repro.runtime.automaton import Algorithm, ProcessAutomaton
from repro.types import ProcessId

#: Inputs as accepted by :class:`repro.runtime.system.System`.
Inputs = Union[Sequence[ProcessId], Mapping[ProcessId, object]]

#: Builder callables receive the instance's parameter dict.
AlgorithmBuilder = Callable[[Dict[str, Any]], Algorithm]
InputsBuilder = Callable[[Dict[str, Any]], Inputs]
NamingBuilder = Callable[[Dict[str, Any]], Any]

#: The roles an instance can play (which consumer runs it).
ROLES = ("lint", "verify", "bench")

#: Liveness property kinds the exhaustive verifier implements.
LIVENESS_KINDS = ("deadlock-freedom", "obstruction-freedom")


@dataclass(frozen=True)
class AutomatonFootprint:
    """The register read/write footprint of one automaton class.

    Declared here (on the spec, next to the automata it describes) and
    *inferred* independently by the dataflow IR in
    :mod:`repro.lint.ir`; :mod:`repro.lint.footprints` cross-checks the
    two and turns any drift into a build-breaking finding.  The
    ``writes_*`` flags classify the provenance of values an automaton
    can store into registers; ``write_constants``/``index_constants``
    name the literal payloads and register indices used along
    pure-constant paths; ``symbolic_indexing`` records whether any
    register index is computed (renamed views, hashed slots) rather
    than literal; ``forwards_values`` marks wrappers that relay an
    inner automaton's operations; ``no_ops`` marks automata that never
    construct a register operation themselves.
    """

    writes_pid: bool = False
    writes_input: bool = False
    writes_memory: bool = False
    writes_counter: bool = False
    writes_config: bool = False
    write_constants: Tuple[Any, ...] = ()
    index_constants: Tuple[Any, ...] = ()
    symbolic_indexing: bool = False
    forwards_values: bool = False
    no_ops: bool = False

    def describe(self) -> str:
        """A compact human-readable summary (used in drift findings)."""
        parts = [
            name
            for name, flag in (
                ("pid", self.writes_pid),
                ("input", self.writes_input),
                ("memory", self.writes_memory),
                ("counter", self.writes_counter),
                ("config", self.writes_config),
            )
            if flag
        ]
        if self.write_constants:
            parts.append(f"consts={list(self.write_constants)!r}")
        if self.index_constants:
            parts.append(f"indices={list(self.index_constants)!r}")
        if self.symbolic_indexing:
            parts.append("symbolic-indexing")
        if self.forwards_values:
            parts.append("forwards")
        if self.no_ops:
            parts.append("no-ops")
        return "writes[" + ", ".join(parts) + "]" if parts else "writes[]"


@dataclass(frozen=True)
class LivenessProperty:
    """One liveness claim the exhaustive verifier can check.

    ``kind`` selects the checker (see :data:`LIVENESS_KINDS`);
    ``theorem`` names the paper claim the check reproduces;
    ``expect_violation`` marks seeded mutants: the verifier still runs
    the same analysis, but a *found* counterexample is the expected
    outcome (Theorem 3.4's even-``m`` livelock, for example).
    """

    kind: str
    theorem: str
    expect_violation: bool = False

    def __post_init__(self) -> None:
        if self.kind not in LIVENESS_KINDS:
            raise ValueError(
                f"unknown liveness kind {self.kind!r}; "
                f"expected one of {LIVENESS_KINDS}"
            )


@dataclass(frozen=True)
class ProblemInstance:
    """One concrete parameterisation of a problem.

    ``params`` is stored as a sorted tuple of ``(name, value)`` pairs so
    instances stay hashable; :meth:`params_dict` rebuilds the dict the
    spec's builders consume.  ``max_states``/``max_depth`` budget the
    *lint* exploration (pc reachability, anonymity audit);
    ``verify_max_states`` budgets the exhaustive verification walk,
    which retains the full state graph and therefore gets its own cap.
    ``bench_label``/``bench_quick``/``bench_overrides`` parameterise the
    exploration benchmark row this instance backs (labels are the
    trajectory keys in ``benchmarks/BENCH_explore.json`` and must stay
    stable across refactors).
    """

    label: str
    params: Tuple[Tuple[str, Any], ...] = ()
    roles: Tuple[str, ...] = ("lint",)
    max_states: int = 150_000
    max_depth: int = 10_000
    race_check: bool = False
    thread_steps: int = 200_000
    naming_seed: Optional[int] = 1
    notes: str = field(default="", compare=False)
    verify_max_states: int = 1_000_000
    bench_label: Optional[str] = None
    bench_quick: bool = False
    bench_overrides: Tuple[Tuple[str, int], ...] = ()

    def __post_init__(self) -> None:
        for role in self.roles:
            if role not in ROLES:
                raise ValueError(
                    f"instance {self.label!r}: unknown role {role!r}; "
                    f"expected a subset of {ROLES}"
                )

    def params_dict(self) -> Dict[str, Any]:
        """The parameters as the dict the spec's builders receive."""
        return dict(self.params)

    def has_role(self, role: str) -> bool:
        """Whether this instance is run by the given consumer."""
        return role in self.roles


@dataclass(frozen=True)
class ProblemSpec:
    """The single source of truth for one shipped (or mutant) algorithm.

    ``build``/``inputs`` construct a fresh algorithm and its inputs from
    an instance's parameter dict; ``naming`` (optional) builds the
    naming assignment the *verifier* uses — ``None`` means the system
    default, while seeded mutants pin the adversarial naming their
    counterexample needs (the Theorem 3.4 ring).  ``automata`` lists the
    :class:`~repro.runtime.automaton.ProcessAutomaton` classes this
    problem ships, which is what the lint passes analyse statically.
    """

    key: str
    title: str
    module: str
    automata: Tuple[Type[ProcessAutomaton], ...]
    build: AlgorithmBuilder
    inputs: InputsBuilder
    theorems: Tuple[str, ...] = ()
    invariant: Optional[Callable[[Any], Optional[str]]] = None
    liveness: Tuple[LivenessProperty, ...] = ()
    instances: Tuple[ProblemInstance, ...] = ()
    naming: Optional[NamingBuilder] = None
    mutant: bool = False
    #: Declared register footprints, keyed by automaton qualname; the
    #: footprint pass cross-checks these against the inferred ones.
    footprints: Tuple[Tuple[str, AutomatonFootprint], ...] = ()
    #: Optional declaration of the closed register value domain, as a
    #: function of an instance's parameter dict: every value any
    #: register can ever hold (including initial contents).  The
    #: compiled kernel seeds its value-domain enumeration with it (a
    #: superset is harmless — the closure completes any subset), and the
    #: differential tests cross-check the discovered domain against it.
    #: ``None`` for problems whose domain is combinatorial (renaming
    #: records carry unbounded history sets).
    value_domain: Optional[Callable[[Dict[str, Any]], Tuple[Any, ...]]] = None

    def instance(self, label: str) -> ProblemInstance:
        """The instance with the given label.

        Raises :class:`KeyError` (with the known labels) when absent, so
        CLI typos fail with a useful message.
        """
        for inst in self.instances:
            if inst.label == label:
                return inst
        raise KeyError(
            f"problem {self.key!r} has no instance {label!r}; "
            f"known: {[inst.label for inst in self.instances]}"
        )

    def instances_with_role(self, role: str) -> Tuple[ProblemInstance, ...]:
        """All instances the given consumer runs, in declaration order."""
        return tuple(inst for inst in self.instances if inst.has_role(role))

    def algorithm(self, instance: ProblemInstance) -> Algorithm:
        """A fresh algorithm object for the instance."""
        return self.build(instance.params_dict())

    def system(self, instance: ProblemInstance, record_trace: bool = False):
        """A configured :class:`~repro.runtime.system.System` for the
        instance, under the spec's verification naming (identity unless
        the spec pins one)."""
        from repro.runtime.system import System

        params = instance.params_dict()
        naming = self.naming(params) if self.naming is not None else None
        return System(
            self.build(params),
            self.inputs(params),
            naming=naming,
            record_trace=record_trace,
        )
