"""Atomic multi-writer multi-reader registers and register arrays.

The paper's communication primitive (Section 2) is the atomic MWMR
read/write register: "reading or writing an atomic register is an
indivisible action".  In the simulator, atomicity is guaranteed
structurally — all register mutations happen inside the scheduler's single
event loop, one operation per event.  For the real-thread backend
(:mod:`repro.runtime.threads`), :class:`LockedRegister` guards each access
with a lock so that reads and writes remain indivisible under genuine
preemption.

Registers also keep simple access statistics (read/write counts) which the
:mod:`repro.analysis` layer uses for contention reporting; the statistics
are observational only and are never visible to algorithms.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Iterator, List, Tuple

from repro.errors import ConfigurationError
from repro.types import RegisterValue, require

#: Observer callback: ``(register, kind, value, guarded)`` where ``kind`` is
#: ``"read"`` or ``"write"``, ``value`` is the value read or written, and
#: ``guarded`` reports whether the access held the register's lock (always
#: False for plain :class:`AtomicRegister` cells).
AccessObserver = Callable[["AtomicRegister", str, RegisterValue, bool], None]


class AtomicRegister:
    """A single atomic MWMR register.

    Parameters
    ----------
    initial:
        The register's initial value.  The paper assumes registers are
        "initially in a known state" (§1); all three algorithms use 0 (or a
        record whose fields are zero) as that known state.
    name:
        An *observational* label for debugging and trace rendering.  The
        name is part of the substrate, not the model: memory-anonymous
        algorithms never see it.
    """

    __slots__ = ("_value", "_initial", "name", "index", "read_count", "write_count", "observers")

    def __init__(self, initial: RegisterValue = 0, name: str = ""):
        self._initial = initial
        self._value = initial
        self.name = name
        #: Physical position within the owning array (-1 when standalone).
        self.index = -1
        self.read_count = 0
        self.write_count = 0
        #: Access observers (see :data:`AccessObserver`) — observational
        #: instrumentation for the lint/audit layer, never model-visible.
        self.observers: List[AccessObserver] = []

    @property
    def initial(self) -> RegisterValue:
        """The value this register was initialised (and is reset) to."""
        return self._initial

    def _guarded(self) -> bool:
        """Whether the *current* access holds this register's lock.

        Plain cells have no lock; :class:`LockedRegister` overrides this.
        Only meaningful when called from inside :meth:`read`/:meth:`write`
        (i.e. from an observer), which is the only place it is used.
        """
        return False

    def read(self) -> RegisterValue:
        """Atomically read the register's current value."""
        self.read_count += 1
        value = self._value
        if self.observers:
            guarded = self._guarded()
            for observer in self.observers:
                observer(self, "read", value, guarded)
        return value

    def write(self, value: RegisterValue) -> None:
        """Atomically overwrite the register's value."""
        self.write_count += 1
        self._value = value
        if self.observers:
            guarded = self._guarded()
            for observer in self.observers:
                observer(self, "write", value, guarded)

    def peek(self) -> RegisterValue:
        """Read the value *without* counting it as an algorithm access.

        Used by spec checkers, the model checker and trace rendering —
        observations made from "outside the model".
        """
        return self._value

    def poke(self, value: RegisterValue) -> None:
        """Set the value without counting a write (for test/exploration setup)."""
        self._value = value

    def reset(self) -> None:
        """Restore the initial value and clear access statistics."""
        self._value = self._initial
        self.read_count = 0
        self.write_count = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or "reg"
        return f"AtomicRegister({label}={self._value!r})"


class LockedRegister(AtomicRegister):
    """An :class:`AtomicRegister` whose accesses are guarded by a lock.

    Used by the real-thread backend where operations are not serialised by
    a scheduler loop.  A per-register lock makes each read and write
    indivisible, which is precisely the atomicity granularity of the model
    (note: it does *not* make multi-register scans atomic — the algorithms
    must not rely on that, and the paper's algorithms do not).
    """

    __slots__ = ("_lock",)

    def __init__(self, initial: RegisterValue = 0, name: str = ""):
        super().__init__(initial, name)
        self._lock = threading.Lock()

    def _guarded(self) -> bool:
        # Called from inside read()/write() while the lock is held.
        return self._lock.locked()

    def read(self) -> RegisterValue:
        with self._lock:
            return super().read()

    def write(self, value: RegisterValue) -> None:
        with self._lock:
            super().write(value)


class RegisterArray:
    """A fixed-size array of atomic registers — the physical shared memory.

    Algorithms never touch this class directly; they access registers
    through an :class:`repro.memory.anonymous.MemoryView`, which applies
    the process's private register numbering.

    Parameters
    ----------
    size:
        Number of registers, the paper's ``m``.
    initial:
        Initial value for every register.
    locked:
        When true, build :class:`LockedRegister` cells (thread backend).
    """

    def __init__(self, size: int, initial: RegisterValue = 0, locked: bool = False):
        require(
            isinstance(size, int) and size >= 1,
            f"register array size must be a positive int, got {size!r}",
            ConfigurationError,
        )
        cell_cls = LockedRegister if locked else AtomicRegister
        self._registers: List[AtomicRegister] = [
            cell_cls(initial, name=f"R{k}") for k in range(size)
        ]
        #: One shared observer list for every cell, so a single
        #: :meth:`add_observer` call instruments the whole array.
        self._observers: List[AccessObserver] = []
        for k, reg in enumerate(self._registers):
            reg.index = k
            reg.observers = self._observers

    def add_observer(self, observer: AccessObserver) -> None:
        """Attach an access observer to every register in the array."""
        self._observers.append(observer)

    def remove_observer(self, observer: AccessObserver) -> None:
        """Detach a previously attached observer (no-op if absent)."""
        if observer in self._observers:
            self._observers.remove(observer)

    def __len__(self) -> int:
        return len(self._registers)

    def __iter__(self) -> Iterator[AtomicRegister]:
        return iter(self._registers)

    def register(self, physical_index: int) -> AtomicRegister:
        """Return the register at a *physical* index (substrate access)."""
        return self._registers[physical_index]

    def read(self, physical_index: int) -> RegisterValue:
        """Atomically read the register at ``physical_index``."""
        return self._registers[physical_index].read()

    def write(self, physical_index: int, value: RegisterValue) -> None:
        """Atomically write ``value`` to the register at ``physical_index``."""
        self._registers[physical_index].write(value)

    def snapshot(self) -> Tuple[RegisterValue, ...]:
        """Observe all register values at once (outside-the-model view).

        Used for global-state hashing in the model checker and for trace
        rendering.  This is *not* an atomic snapshot object available to
        algorithms — see :mod:`repro.memory.snapshot` for that.
        """
        return tuple(r.peek() for r in self._registers)

    def restore(self, values: Iterable[RegisterValue]) -> None:
        """Overwrite all register values without counting accesses."""
        values = tuple(values)
        require(
            len(values) == len(self._registers),
            f"restore expects {len(self._registers)} values, got {len(values)}",
            ConfigurationError,
        )
        for reg, value in zip(self._registers, values):
            reg.poke(value)

    def reset(self) -> None:
        """Reset every register to its initial value and clear statistics."""
        for reg in self._registers:
            reg.reset()

    @property
    def total_reads(self) -> int:
        """Total number of read operations applied to any register."""
        return sum(r.read_count for r in self._registers)

    @property
    def total_writes(self) -> int:
        """Total number of write operations applied to any register."""
        return sum(r.write_count for r in self._registers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RegisterArray({self.snapshot()!r})"
