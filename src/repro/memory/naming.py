"""Register naming assignments — who calls which register "number j".

The defining feature of the paper's model is that registers have no global
names: "the first register examined and the subsequent order in which
registers are scanned may be different for each process" (§1).  Formally,
each process is assigned a private bijection from its *view* indices
``0..m-1`` to the *physical* indices of the shared array (§3.5 phrases this
as "an initial register and an ordering of the registers").

A :class:`NamingAssignment` produces one such bijection per process.  The
adversary chooses the assignment; a correct memory-anonymous algorithm must
work under **every** assignment.  The library ships the assignments the
paper's arguments use:

* :class:`IdentityNaming` — everyone agrees (the *named* model; baselines
  assume this, and it is one legal adversary choice for anonymous ones);
* :class:`RandomNaming` — independent uniformly random permutations, the
  workhorse for randomised testing;
* :class:`RingNaming` — all processes share one cyclic order but start at
  rotated offsets.  This is exactly the assignment used by the Theorem 3.4
  lower-bound proof ("we arrange the registers as a unidirectional ring
  ... assign these l processes the same ring ordering, though potentially
  different initial registers");
* :class:`ExplicitNaming` — caller-supplied permutations, used by the
  covering constructions of Section 6 which need fine control over which
  register a process reaches first.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.types import PhysicalIndex, ProcessId, require

#: A process's private register numbering: ``perm[j]`` is the physical
#: index of the register the process calls ``p.i[j]``.
Permutation = Tuple[PhysicalIndex, ...]


def validate_permutation(perm: Sequence[int], size: int) -> Permutation:
    """Check that ``perm`` is a bijection on ``0..size-1`` and return it."""
    perm = tuple(perm)
    require(
        len(perm) == size and sorted(perm) == list(range(size)),
        f"expected a permutation of 0..{size - 1}, got {perm!r}",
        ConfigurationError,
    )
    return perm


class NamingAssignment:
    """Base class: assigns each process its private register numbering."""

    def permutation_for(self, pid: ProcessId, size: int) -> Permutation:
        """Return process ``pid``'s view-to-physical bijection.

        Must be deterministic per ``(pid, size)`` for a given assignment
        instance, so that repeated calls (e.g. during model-checker replay)
        see the same naming.
        """
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable one-line description for experiment reports."""
        return type(self).__name__


class IdentityNaming(NamingAssignment):
    """All processes number the registers identically.

    Under this assignment the anonymous model coincides with the standard
    named model, so it doubles as the naming used by the
    :mod:`repro.baselines` algorithms (which *require* agreement).
    """

    def permutation_for(self, pid: ProcessId, size: int) -> Permutation:
        return tuple(range(size))


class RandomNaming(NamingAssignment):
    """Independent seeded-random permutation per process.

    The permutation for a process is derived from ``(seed, pid, size)``, so
    an assignment instance is reproducible and stable across replays.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed

    def permutation_for(self, pid: ProcessId, size: int) -> Permutation:
        rng = random.Random(f"{self.seed}/{pid}/{size}")
        perm = list(range(size))
        rng.shuffle(perm)
        return tuple(perm)

    def describe(self) -> str:
        return f"RandomNaming(seed={self.seed})"


class RingNaming(NamingAssignment):
    """One shared cyclic order, rotated per process — the Thm 3.4 layout.

    All processes scan the ring of ``m`` registers in the same direction;
    process k (in the order given by ``offsets``) starts at physical
    register ``offsets[k]``.  The Theorem 3.4 proof picks ``l`` processes
    and spaces their starting registers exactly ``m / l`` apart so that the
    lockstep run is perfectly symmetric; :func:`RingNaming.equispaced`
    builds that configuration.

    Parameters
    ----------
    offsets:
        Mapping from process id to that process's starting physical index.
        Processes not in the mapping start at 0.
    """

    def __init__(self, offsets: Dict[ProcessId, int]):
        self.offsets = dict(offsets)

    @classmethod
    def equispaced(cls, pids: Sequence[ProcessId], size: int) -> "RingNaming":
        """Starting registers spaced ``size / len(pids)`` apart on the ring.

        Requires ``len(pids)`` to divide ``size`` — the arithmetic heart of
        Theorem 3.4: such a placement exists exactly when ``l`` divides
        ``m``, i.e. when ``m`` and ``l`` are *not* relatively prime.
        """
        count = len(pids)
        require(
            count >= 1 and size % count == 0,
            f"equispaced ring placement needs process count ({count}) "
            f"to divide register count ({size})",
            ConfigurationError,
        )
        gap = size // count
        return cls({pid: k * gap for k, pid in enumerate(pids)})

    def permutation_for(self, pid: ProcessId, size: int) -> Permutation:
        offset = self.offsets.get(pid, 0) % size
        return tuple((offset + j) % size for j in range(size))

    def describe(self) -> str:
        return f"RingNaming(offsets={self.offsets})"


class ExplicitNaming(NamingAssignment):
    """Caller-supplied permutation per process.

    The Section 6 covering constructions choose, for each covering process,
    an ordering that makes it reach a *specific* register of
    ``write(y, q)`` first; this class is how those proofs express that
    choice.  Processes without an explicit permutation fall back to
    identity.
    """

    def __init__(self, permutations: Dict[ProcessId, Sequence[int]]):
        self._perms = {pid: tuple(perm) for pid, perm in permutations.items()}

    def permutation_for(self, pid: ProcessId, size: int) -> Permutation:
        if pid in self._perms:
            return validate_permutation(self._perms[pid], size)
        return tuple(range(size))

    def describe(self) -> str:
        return f"ExplicitNaming({sorted(self._perms)})"


def first_visit_permutation(target: PhysicalIndex, size: int) -> Permutation:
    """A permutation under which a sequential scan reaches ``target`` first.

    Helper for covering constructions: a process that scans its registers
    in view order ``0, 1, 2, ...`` under this naming touches physical
    register ``target`` first, then the rest in ascending order.
    """
    require(
        0 <= target < size,
        f"target index {target} out of range for {size} registers",
        ConfigurationError,
    )
    rest = [k for k in range(size) if k != target]
    return tuple([target] + rest)


def all_namings_for_tests(
    pids: Iterable[ProcessId], size: int, seeds: Iterable[int] = (0, 1, 2)
) -> Tuple[NamingAssignment, ...]:
    """A representative spread of naming assignments for test sweeps."""
    pids = tuple(pids)
    namings = [IdentityNaming()]
    namings.extend(RandomNaming(seed) for seed in seeds)
    if pids and size % len(pids) == 0:
        namings.append(RingNaming.equispaced(pids, size))
    else:
        namings.append(RingNaming({pid: k for k, pid in enumerate(pids)}))
    return tuple(namings)
