"""Shared-memory substrate: atomic registers without global names.

This package implements the paper's communication model (Section 2):

* :mod:`repro.memory.register` — atomic MWMR registers and the physical
  register array;
* :mod:`repro.memory.naming` — per-process private register numberings
  (the adversary's choice of who calls which register "number j");
* :mod:`repro.memory.anonymous` — :class:`AnonymousMemory`, handing each
  process a :class:`MemoryView` that translates its private numbering;
* :mod:`repro.memory.records` — the register record values of Figures 2
  and 3, with single-integer encodings per the §4.1 remark;
* :mod:`repro.memory.snapshot` — a named-register snapshot object for the
  baselines (the substrate of the paper's reference [5]).
"""

from repro.memory.anonymous import AnonymousMemory, MemoryView
from repro.memory.naming import (
    ExplicitNaming,
    IdentityNaming,
    NamingAssignment,
    RandomNaming,
    RingNaming,
    all_namings_for_tests,
    first_visit_permutation,
    validate_permutation,
)
from repro.memory.records import (
    ConsensusRecord,
    RenamingRecord,
    decode_consensus_record,
    decode_renaming_record,
    encode_consensus_record,
    encode_renaming_record,
)
from repro.memory.register import AtomicRegister, LockedRegister, RegisterArray
from repro.memory.snapshot import SnapshotObject

__all__ = [
    "AnonymousMemory",
    "MemoryView",
    "AtomicRegister",
    "LockedRegister",
    "RegisterArray",
    "SnapshotObject",
    "NamingAssignment",
    "IdentityNaming",
    "RandomNaming",
    "RingNaming",
    "ExplicitNaming",
    "all_namings_for_tests",
    "first_visit_permutation",
    "validate_permutation",
    "ConsensusRecord",
    "RenamingRecord",
    "encode_consensus_record",
    "decode_consensus_record",
    "encode_renaming_record",
    "decode_renaming_record",
]
