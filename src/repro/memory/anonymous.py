"""Anonymous shared memory: a register array seen through private namings.

:class:`AnonymousMemory` couples the physical :class:`~repro.memory.register.RegisterArray`
with a :class:`~repro.memory.naming.NamingAssignment` and hands each
process a :class:`MemoryView` — the only interface algorithms ever get.
A view translates the process's private register numbers (the paper's
``p.i[j]``) into physical indices, so the same algorithm code runs
unchanged whether the adversary picked identity, random or ring namings.

The view's translation also runs in reverse (:meth:`MemoryView.view_index_of`)
for the benefit of spec checkers and lower-bound constructions, which need
to reason about which *physical* register a process is about to touch —
e.g. the covering arguments of Section 6.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.errors import ConfigurationError, ProtocolError
from repro.memory.naming import (
    IdentityNaming,
    NamingAssignment,
    Permutation,
    validate_permutation,
)
from repro.memory.register import RegisterArray
from repro.types import (
    PhysicalIndex,
    ProcessId,
    RegisterValue,
    ViewIndex,
    require,
    validate_distinct_ids,
)


class MemoryView:
    """One process's window onto the anonymous shared memory.

    ``view.read(j)`` / ``view.write(j, v)`` access the register the process
    privately calls number ``j`` — the paper's ``p.i[j]`` with 0-based
    indices.  Algorithms hold a view, never the array.
    """

    __slots__ = ("_array", "_perm", "_inverse", "pid")

    def __init__(self, array: RegisterArray, pid: ProcessId, perm: Permutation):
        self._array = array
        self.pid = pid
        self._perm = validate_permutation(perm, len(array))
        self._inverse = {phys: view for view, phys in enumerate(self._perm)}

    @property
    def size(self) -> int:
        """Number of registers, the paper's ``m``."""
        return len(self._array)

    @property
    def permutation(self) -> Permutation:
        """This process's view-to-physical bijection (observational)."""
        return self._perm

    def physical_index_of(self, view_index: ViewIndex) -> PhysicalIndex:
        """Translate a private register number to the physical index."""
        if not 0 <= view_index < len(self._perm):
            raise ProtocolError(
                f"process {self.pid}: register index {view_index} out of "
                f"range 0..{len(self._perm) - 1}"
            )
        return self._perm[view_index]

    def view_index_of(self, physical_index: PhysicalIndex) -> ViewIndex:
        """Translate a physical index to this process's private number."""
        try:
            return self._inverse[physical_index]
        except KeyError:
            raise ProtocolError(
                f"process {self.pid}: physical index {physical_index} out of "
                f"range 0..{len(self._perm) - 1}"
            ) from None

    def read(self, view_index: ViewIndex) -> RegisterValue:
        """Atomically read register ``p.i[view_index]``."""
        return self._array.read(self.physical_index_of(view_index))

    def write(self, view_index: ViewIndex, value: RegisterValue) -> None:
        """Atomically write ``value`` into register ``p.i[view_index]``."""
        self._array.write(self.physical_index_of(view_index), value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MemoryView(pid={self.pid}, perm={self._perm})"


class AnonymousMemory:
    """Shared memory with no global register names.

    Parameters
    ----------
    size:
        Number of registers (the paper's ``m``).
    pids:
        The participating processes' identifiers (distinct positive ints).
    naming:
        The adversary's choice of per-process register numbering; defaults
        to :class:`~repro.memory.naming.IdentityNaming`.
    initial:
        Initial value of every register (the model's "known state").
    locked:
        Build lock-guarded registers for the real-thread backend.
    """

    def __init__(
        self,
        size: int,
        pids: Sequence[ProcessId],
        naming: NamingAssignment = None,
        initial: RegisterValue = 0,
        locked: bool = False,
    ):
        self.pids: Tuple[ProcessId, ...] = validate_distinct_ids(pids)
        require(
            isinstance(size, int) and size >= 1,
            f"memory size must be a positive int, got {size!r}",
            ConfigurationError,
        )
        self.naming = naming if naming is not None else IdentityNaming()
        self.array = RegisterArray(size, initial=initial, locked=locked)
        self._views: Dict[ProcessId, MemoryView] = {
            pid: MemoryView(self.array, pid, self.naming.permutation_for(pid, size))
            for pid in self.pids
        }

    @property
    def size(self) -> int:
        """Number of registers."""
        return len(self.array)

    def view(self, pid: ProcessId) -> MemoryView:
        """Return process ``pid``'s private view of the memory."""
        try:
            return self._views[pid]
        except KeyError:
            raise ConfigurationError(
                f"no view for unknown process id {pid!r}; "
                f"known ids: {sorted(self._views)}"
            ) from None

    def snapshot(self) -> Tuple[RegisterValue, ...]:
        """Physical register contents, outside-the-model (for checkers)."""
        return self.array.snapshot()

    def restore(self, values: Sequence[RegisterValue]) -> None:
        """Overwrite physical register contents (model-checker replay)."""
        self.array.restore(values)

    def reset(self) -> None:
        """Reset all registers to the initial known state."""
        self.array.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AnonymousMemory(size={self.size}, pids={self.pids}, "
            f"naming={self.naming.describe()})"
        )
