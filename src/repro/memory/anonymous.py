"""Anonymous shared memory: a register array seen through private namings.

:class:`AnonymousMemory` couples the physical :class:`~repro.memory.register.RegisterArray`
with a :class:`~repro.memory.naming.NamingAssignment` and hands each
process a :class:`MemoryView` — the only interface algorithms ever get.
A view translates the process's private register numbers (the paper's
``p.i[j]``) into physical indices, so the same algorithm code runs
unchanged whether the adversary picked identity, random or ring namings.

The view's translation also runs in reverse (:meth:`MemoryView.view_index_of`)
for the benefit of spec checkers and lower-bound constructions, which need
to reason about which *physical* register a process is about to touch —
e.g. the covering arguments of Section 6.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, ProtocolError
from repro.memory.naming import (
    IdentityNaming,
    NamingAssignment,
    Permutation,
    validate_permutation,
)
from repro.memory.register import AtomicRegister, RegisterArray
from repro.types import (
    PhysicalIndex,
    ProcessId,
    RegisterValue,
    ViewIndex,
    require,
    validate_distinct_ids,
)


@dataclass(frozen=True)
class BypassRecord:
    """One counted register access that did not come through a view.

    ``pid`` is None when the accessor could not be identified (the access
    was not announced by any view, which is the point).
    """

    physical_index: int
    kind: str  # "read" or "write"
    value: RegisterValue
    pid: Optional[ProcessId] = None


class MemoryAudit:
    """Runtime check that every register access goes through a view.

    The anonymity contract (§2: each process has its *own* private
    numbering of the registers) is enforced structurally — algorithms are
    handed a :class:`MemoryView`, never the array — but nothing used to
    stop a hostile automaton from squirrelling away a reference to the
    substrate and addressing physical registers directly, silently
    re-introducing the global names the model forbids.

    The audit closes that hole dynamically: views *announce* each access
    just before delegating to the array, and an observer on the array
    checks every counted access against the announcement.  Accesses with
    no matching announcement are recorded as bypasses.  Announcements are
    kept in thread-local storage so the audit is exact under the real
    -thread backend as well as the scheduler loop.
    """

    def __init__(self) -> None:
        self._pending = threading.local()
        self.bypasses: List[BypassRecord] = []
        self.mediated_accesses = 0
        self._lock = threading.Lock()

    @property
    def ok(self) -> bool:
        """True when no bypassing access has been observed."""
        return not self.bypasses

    # -- announcement protocol (called by MemoryView / the observer) -----

    def _announce(self, pid: ProcessId, physical_index: PhysicalIndex, kind: str) -> None:
        self._pending.expected = (pid, physical_index, kind)

    def _clear(self) -> None:
        self._pending.expected = None

    def _on_access(
        self, reg: AtomicRegister, kind: str, value: RegisterValue, guarded: bool
    ) -> None:
        expected = getattr(self._pending, "expected", None)
        if (
            expected is not None
            and expected[1] == reg.index
            and expected[2] == kind
        ):
            with self._lock:
                self.mediated_accesses += 1
            self._pending.expected = None
            return
        with self._lock:
            self.bypasses.append(BypassRecord(reg.index, kind, value))

    def summary(self) -> str:
        """One-line human-readable audit outcome."""
        if self.ok:
            return f"anonymity-ok: {self.mediated_accesses} view-mediated accesses"
        return (
            f"ANONYMITY BYPASS: {len(self.bypasses)} direct accesses "
            f"(first: {self.bypasses[0]!r})"
        )


class MemoryView:
    """One process's window onto the anonymous shared memory.

    ``view.read(j)`` / ``view.write(j, v)`` access the register the process
    privately calls number ``j`` — the paper's ``p.i[j]`` with 0-based
    indices.  Algorithms hold a view, never the array.
    """

    __slots__ = ("_array", "_perm", "_inverse", "pid", "_audit")

    def __init__(self, array: RegisterArray, pid: ProcessId, perm: Permutation):
        self._array = array
        self.pid = pid
        self._perm = validate_permutation(perm, len(array))
        self._inverse = {phys: view for view, phys in enumerate(self._perm)}
        self._audit: Optional[MemoryAudit] = None

    @property
    def size(self) -> int:
        """Number of registers, the paper's ``m``."""
        return len(self._array)

    @property
    def permutation(self) -> Permutation:
        """This process's view-to-physical bijection (observational)."""
        return self._perm

    def physical_index_of(self, view_index: ViewIndex) -> PhysicalIndex:
        """Translate a private register number to the physical index."""
        if not 0 <= view_index < len(self._perm):
            raise ProtocolError(
                f"process {self.pid}: register index {view_index} out of "
                f"range 0..{len(self._perm) - 1}"
            )
        return self._perm[view_index]

    def view_index_of(self, physical_index: PhysicalIndex) -> ViewIndex:
        """Translate a physical index to this process's private number."""
        try:
            return self._inverse[physical_index]
        except KeyError:
            raise ProtocolError(
                f"process {self.pid}: physical index {physical_index} out of "
                f"range 0..{len(self._perm) - 1}"
            ) from None

    def read(self, view_index: ViewIndex) -> RegisterValue:
        """Atomically read register ``p.i[view_index]``."""
        physical = self.physical_index_of(view_index)
        if self._audit is not None:
            self._audit._announce(self.pid, physical, "read")
        return self._array.read(physical)

    def write(self, view_index: ViewIndex, value: RegisterValue) -> None:
        """Atomically write ``value`` into register ``p.i[view_index]``."""
        physical = self.physical_index_of(view_index)
        if self._audit is not None:
            self._audit._announce(self.pid, physical, "write")
        self._array.write(physical, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MemoryView(pid={self.pid}, perm={self._perm})"


class AnonymousMemory:
    """Shared memory with no global register names.

    Parameters
    ----------
    size:
        Number of registers (the paper's ``m``).
    pids:
        The participating processes' identifiers (distinct positive ints).
    naming:
        The adversary's choice of per-process register numbering; defaults
        to :class:`~repro.memory.naming.IdentityNaming`.
    initial:
        Initial value of every register (the model's "known state").
    locked:
        Build lock-guarded registers for the real-thread backend.
    """

    def __init__(
        self,
        size: int,
        pids: Sequence[ProcessId],
        naming: NamingAssignment = None,
        initial: RegisterValue = 0,
        locked: bool = False,
    ):
        self.pids: Tuple[ProcessId, ...] = validate_distinct_ids(pids)
        require(
            isinstance(size, int) and size >= 1,
            f"memory size must be a positive int, got {size!r}",
            ConfigurationError,
        )
        self.naming = naming if naming is not None else IdentityNaming()
        self.array = RegisterArray(size, initial=initial, locked=locked)
        self._views: Dict[ProcessId, MemoryView] = {
            pid: MemoryView(self.array, pid, self.naming.permutation_for(pid, size))
            for pid in self.pids
        }

    @property
    def size(self) -> int:
        """Number of registers."""
        return len(self.array)

    def view(self, pid: ProcessId) -> MemoryView:
        """Return process ``pid``'s private view of the memory."""
        try:
            return self._views[pid]
        except KeyError:
            raise ConfigurationError(
                f"no view for unknown process id {pid!r}; "
                f"known ids: {sorted(self._views)}"
            ) from None

    def permutation_table(self) -> Dict[ProcessId, Tuple[PhysicalIndex, ...]]:
        """Every process's view-to-physical permutation, as plain data.

        The pure-value extract of the naming assignment: what the
        transition kernel (:mod:`repro.runtime.kernel`) needs to resolve
        private register numbers without holding live views, and what a
        worker process receives instead of the memory object itself.
        """
        return {
            pid: tuple(view.permutation) for pid, view in self._views.items()
        }

    def install_audit(self) -> MemoryAudit:
        """Install and return a :class:`MemoryAudit` over this memory.

        Views start announcing their accesses and an array observer
        verifies every counted access against the announcements; direct
        (non-view) reads and writes show up in ``audit.bypasses``.
        """
        audit = MemoryAudit()
        for view in self._views.values():
            view._audit = audit
        self.array.add_observer(audit._on_access)
        return audit

    def snapshot(self) -> Tuple[RegisterValue, ...]:
        """Physical register contents, outside-the-model (for checkers)."""
        return self.array.snapshot()

    def restore(self, values: Sequence[RegisterValue]) -> None:
        """Overwrite physical register contents (model-checker replay)."""
        self.array.restore(values)

    def reset(self) -> None:
        """Reset all registers to the initial known state."""
        self.array.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AnonymousMemory(size={self.size}, pids={self.pids}, "
            f"naming={self.naming.describe()})"
        )
