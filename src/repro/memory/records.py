"""Register record values for the consensus and renaming algorithms.

Figure 2's registers hold a record with fields ``(id, val)``; Figure 3's
hold ``(id, val, round, history)``.  The paper remarks (§4.1) that using
named fields "is done only for convenience — the two values in these fields
can be encoded as a single value".  We honour both readings:

* the algorithms store :class:`ConsensusRecord` / :class:`RenamingRecord`
  instances (frozen, hashable — required by the model checker), and
* :func:`encode_consensus_record` / :func:`decode_consensus_record` (and
  the renaming equivalents) provide injective encodings into a single
  integer, proving the remark constructively.  The encodings are exercised
  by tests and can be enabled end-to-end via the algorithms'
  ``encode_records`` flag.

The all-zero record plays the role of the paper's initial value 0; both
record classes define :meth:`is_empty` for that test.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import FrozenSet, Tuple

from repro.errors import ConfigurationError
from repro.types import ProcessId, require


@dataclass(frozen=True)
class ConsensusRecord:
    """Contents of one Figure 2 register: ``(id, val)``.

    ``id`` is the identifier of the last writer (0 when untouched) and
    ``val`` the preference it wrote (0 when untouched).
    """

    id: ProcessId = 0
    val: int = 0

    def is_empty(self) -> bool:
        """True when the register still holds the initial known state."""
        return self.id == 0 and self.val == 0

    def __str__(self) -> str:
        return f"({self.id},{self.val})"


#: A renaming history: the set of ``(identifier, round)`` pairs of processes
#: already elected (paper §5.1's "set of pairs of the form
#: (identifier, value) where value in {1..n}").  Stored as a frozenset so
#: records stay hashable.
History = FrozenSet[Tuple[ProcessId, int]]


@dataclass(frozen=True)
class RenamingRecord:
    """Contents of one Figure 3 register: ``(id, val, round, history)``."""

    id: ProcessId = 0
    val: int = 0
    round: int = 0
    history: History = field(default_factory=frozenset)

    def is_empty(self) -> bool:
        """True when the register still holds the initial known state."""
        return (
            self.id == 0
            and self.val == 0
            and self.round == 0
            and not self.history
        )

    def __str__(self) -> str:
        hist = "{" + ",".join(f"({i},{r})" for i, r in sorted(self.history)) + "}"
        return f"({self.id},{self.val},{self.round},{hist})"


# ---------------------------------------------------------------------------
# Single-integer encodings (the §4.1 remark, constructively).
#
# We use a pairing function on non-negative integers.  Cantor's pairing
# function would do; we use the simpler interleaving-by-base encoding below
# because it is trivially invertible and easy to audit.
# ---------------------------------------------------------------------------


def _pair(a: int, b: int) -> int:
    """Injective pairing of two non-negative integers into one.

    Szudzik's elegant pairing: max(a,b)^2 + max(a,b) + a - b when a >= b,
    else b^2 + a.  Invertible in O(1); grows as max(a, b)^2.
    """
    require(a >= 0 and b >= 0, f"pairing needs non-negative ints, got {a}, {b}")
    if a >= b:
        return a * a + a + b
    return b * b + a


def _unpair(z: int) -> Tuple[int, int]:
    """Inverse of :func:`_pair`."""
    require(z >= 0, f"unpair needs a non-negative int, got {z}")
    # math.isqrt is exact for arbitrarily large ints; float sqrt is not
    # (history encodings nest pairings and reach hundreds of bits).
    root = math.isqrt(z)
    rem = z - root * root
    if rem < root:
        return rem, root
    return root, rem - root


def encode_consensus_record(record: ConsensusRecord) -> int:
    """Encode a consensus record as a single non-negative integer.

    The empty record encodes to 0, matching the paper's initial value.
    """
    if record.is_empty():
        return 0
    return 1 + _pair(record.id, record.val)


def decode_consensus_record(value: int) -> ConsensusRecord:
    """Inverse of :func:`encode_consensus_record`."""
    require(
        isinstance(value, int) and value >= 0,
        f"encoded record must be a non-negative int, got {value!r}",
        ConfigurationError,
    )
    if value == 0:
        return ConsensusRecord()
    pid, val = _unpair(value - 1)
    return ConsensusRecord(pid, val)


def _encode_history(history: History) -> int:
    """Encode a history set as one integer by folding sorted pairs."""
    code = 0
    for pid, rnd in sorted(history):
        code = 1 + _pair(code, _pair(pid, rnd))
    return code


def _decode_history(code: int) -> History:
    """Inverse of :func:`_encode_history`."""
    pairs = []
    while code != 0:
        code, entry = _unpair(code - 1)
        pairs.append(_unpair(entry))
    return frozenset(pairs)


def encode_renaming_record(record: RenamingRecord) -> int:
    """Encode a renaming record as a single non-negative integer.

    The empty record encodes to 0, matching the paper's initial value.
    """
    if record.is_empty():
        return 0
    inner = _pair(_pair(record.id, record.val), _pair(record.round, _encode_history(record.history)))
    return 1 + inner


def decode_renaming_record(value: int) -> RenamingRecord:
    """Inverse of :func:`encode_renaming_record`."""
    require(
        isinstance(value, int) and value >= 0,
        f"encoded record must be a non-negative int, got {value!r}",
        ConfigurationError,
    )
    if value == 0:
        return RenamingRecord()
    left, right = _unpair(value - 1)
    pid, val = _unpair(left)
    rnd, hist_code = _unpair(right)
    return RenamingRecord(pid, val, rnd, _decode_history(hist_code))
