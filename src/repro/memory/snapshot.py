"""An obstruction-free atomic snapshot built from named registers.

The consensus algorithm the paper's Figure 2 derives from (Bowman [5])
uses single-writer registers *and snapshot objects* — both of which require
named registers.  This module supplies that substrate for the named-model
baselines and the real-thread examples: a **double-collect snapshot**.

A ``scan`` repeatedly collects all segments until two consecutive collects
are identical (including per-writer sequence numbers), which is the classic
argument that the returned vector was simultaneously present in memory.
Double-collect scans are obstruction-free: a scanner that runs alone
terminates after two collects.  (The wait-free construction of Afek et al.
embeds scans into updates; obstruction-freedom is all the baselines need,
and matches the progress condition studied by the paper.)

This object is *not* memory-anonymous — segment ``k`` is a globally agreed
name — which is exactly why it may only appear in :mod:`repro.baselines`.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ConfigurationError
from repro.memory.register import AtomicRegister, LockedRegister
from repro.types import RegisterValue, require


class SnapshotObject:
    """A single-writer atomic snapshot over ``n`` named segments.

    Parameters
    ----------
    segments:
        Number of single-writer segments.
    initial:
        Initial value of every segment.
    locked:
        Guard each segment with a lock (real-thread usage).
    max_collects:
        Safety valve: a scan that needs more than this many collects raises
        rather than spinning forever.  Under obstruction (scanner running
        solo) two collects always suffice; the default is generous enough
        for the bounded tests and examples.
    """

    def __init__(
        self,
        segments: int,
        initial: RegisterValue = 0,
        locked: bool = False,
        max_collects: int = 100_000,
    ):
        require(
            isinstance(segments, int) and segments >= 1,
            f"snapshot needs a positive segment count, got {segments!r}",
            ConfigurationError,
        )
        cell_cls = LockedRegister if locked else AtomicRegister
        # Each segment stores (sequence_number, value); the sequence number
        # disambiguates ABA during double collect.
        self._segments: List[AtomicRegister] = [
            cell_cls((0, initial), name=f"S{k}") for k in range(segments)
        ]
        self._max_collects = max_collects

    def __len__(self) -> int:
        return len(self._segments)

    def update(self, segment: int, value: RegisterValue) -> None:
        """Write ``value`` into ``segment`` (single writer per segment)."""
        seq, _ = self._segments[segment].read()
        self._segments[segment].write((seq + 1, value))

    def _collect(self) -> Tuple[Tuple[int, RegisterValue], ...]:
        return tuple(seg.read() for seg in self._segments)

    def scan(self) -> Tuple[RegisterValue, ...]:
        """Return an atomic snapshot of all segment values.

        Uses double collect; raises
        :class:`repro.errors.ConfigurationError` if ``max_collects`` is
        exceeded (only possible under unbounded contention, which the
        obstruction-free progress condition does not cover).
        """
        previous = self._collect()
        for _ in range(self._max_collects):
            current = self._collect()
            if current == previous:
                return tuple(value for _, value in current)
            previous = current
        raise ConfigurationError(
            f"snapshot scan did not stabilise within {self._max_collects} "
            "collects; contention exceeds the obstruction-free envelope"
        )

    def peek(self) -> Tuple[RegisterValue, ...]:
        """Observe all segment values without model accesses (for tests)."""
        return tuple(seg.peek()[1] for seg in self._segments)
