"""Uniform execution-flag surface across the CLI.

Every command that executes registry work shares one flag vocabulary —
``--kernel``, ``--backend``, ``--workers``, ``--seed``,
``--max-states`` — mirroring the fields of
:class:`~repro.request.RunRequest`.  A command either *accepts* a flag
(via the ``add_*_flag`` helpers below, so metavars/choices/help never
drift between parsers) or *explicitly rejects* it with the uniform
:func:`rejection_message` text saying why that execution axis does not
apply — silently ignoring an execution flag is the one behaviour this
module exists to rule out.

The accept/reject matrix is pinned by ``tests/test_cliflags.py``:

=============  ========  =========  =========  ======  ============
command        --kernel  --backend  --workers  --seed  --max-states
=============  ========  =========  =========  ======  ============
verify         accept    accept     accept     reject  accept
sweep          reject    reject     accept     reject  reject
fuzz           accept    accept*    accept     accept  accept
bench          accept    accept     accept     accept  accept
=============  ========  =========  =========  ======  ============

``*`` — fuzz accepts only ``--backend serial`` (episodes are serial by
construction; parallelism is ``--workers`` over farm cells) and rejects
``parallel`` with the same uniform message shape.
"""

from __future__ import annotations

import argparse
from typing import Any, Optional, Sequence

__all__ = [
    "rejection_message",
    "reject_flag",
    "positive_workers",
    "add_kernel_flag",
    "add_backend_flag",
    "add_workers_flag",
    "add_seed_flag",
    "add_max_states_flag",
]


def positive_workers(text: str) -> int:
    """``--workers`` operand parser: a positive int or a usage error.

    Shared by every command that accepts ``--workers`` so that
    ``--workers 0`` (or a negative count, or junk) dies with the same
    one-line message everywhere — the text mirrors the
    :class:`~repro.errors.ConfigurationError` the backends raise for
    the same mistake, pinned by ``tests/test_cliflags.py``.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"workers must be a positive int, got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"workers must be a positive int, got {value!r}"
        )
    return value


def rejection_message(flag: str, command: str, reason: str) -> str:
    """The pinned error text for a rejected execution flag."""
    return f"{flag} is not supported by `repro {command}`: {reason}"


class _RejectFlag(argparse.Action):
    """Errors out with the uniform rejection text when the flag is used."""

    def __init__(
        self,
        option_strings: Sequence[str],
        dest: str,
        command: str = "",
        reason: str = "",
        **kwargs: Any,
    ) -> None:
        kwargs.setdefault("nargs", "?")  # swallow any operand too
        kwargs.setdefault("help", argparse.SUPPRESS)
        super().__init__(option_strings, dest, **kwargs)
        self._command = command
        self._reason = reason

    def __call__(
        self,
        parser: argparse.ArgumentParser,
        namespace: argparse.Namespace,
        values: Any,
        option_string: Optional[str] = None,
    ) -> None:
        parser.error(
            rejection_message(
                option_string or self.option_strings[0],
                self._command,
                self._reason,
            )
        )


def reject_flag(
    parser: argparse.ArgumentParser, flag: str, command: str, reason: str
) -> None:
    """Register ``flag`` as explicitly rejected (uniform error text)."""
    parser.add_argument(flag, action=_RejectFlag, command=command, reason=reason)


def add_kernel_flag(
    parser: argparse.ArgumentParser, help_text: Optional[str] = None
) -> None:
    parser.add_argument(
        "--kernel",
        choices=["interpreted", "compiled"],
        default="interpreted",
        help=help_text
        or "step kernel: 'compiled' runs the table-compiled kernel "
        "(serial only; bit-identical results, ~10x the throughput)",
    )


def add_backend_flag(
    parser: argparse.ArgumentParser,
    choices: Sequence[str] = ("serial", "parallel"),
    help_text: Optional[str] = None,
) -> None:
    parser.add_argument(
        "--backend",
        choices=list(choices),
        default="serial",
        help=help_text or "execution backend",
    )


def add_workers_flag(
    parser: argparse.ArgumentParser,
    default: Optional[int] = None,
    help_text: Optional[str] = None,
) -> None:
    parser.add_argument(
        "--workers",
        type=positive_workers,
        default=default,
        metavar="N",
        help=help_text or "worker processes",
    )


def add_seed_flag(
    parser: argparse.ArgumentParser, help_text: Optional[str] = None
) -> None:
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="N",
        help=help_text
        or "root RNG seed; the single source of every derived RNG",
    )


def add_max_states_flag(
    parser: argparse.ArgumentParser, help_text: Optional[str] = None
) -> None:
    parser.add_argument(
        "--max-states",
        type=int,
        default=None,
        metavar="N",
        help=help_text or "distinct-state budget",
    )
