"""Figure 3 — memory-anonymous obstruction-free adaptive perfect renaming.

The paper's Section 5 algorithm: ``n`` processes with distinct identifiers
from an unbounded name space acquire distinct new names from ``{1..n}``,
adaptively (``k`` participants use only ``{1..k}``), with ``2n - 1``
anonymous registers, each holding a record ``(id, val, round, history)``.

The idea (§5.1): proceed in rounds; each round runs one election "game"
in the *same* shared space (no a priori ordering of election objects — the
whole point of anonymity); the round-``r`` winner takes name ``r``; losers
record the winner in their ``history`` set, advance to round ``r + 1``,
and carry the history forward so that a winner who never noticed its own
election learns it from someone else's history (line 5).  A process
reaching round ``n`` unelected takes the name ``n`` (line 22).

Program-counter map (figure line numbers):

===========  ==========================================================
``pc``       Figure 3 lines
===========  ==========================================================
``collect``  line 4, ``myview[j] := p.i[j]``
``write``    line 16, ``p.i[j] := (i, mypref, myround, myhistory)``
``done``     lines 6 / 18 / 22 — a new name was returned
===========  ==========================================================

As in Figure 2, the printed line-15 "arbitrary index such that
myview[k] != (i, mypref, myround, myhistory)" has no candidate exactly
when the line-17 exit condition holds, so the exit test is evaluated
right after line 14 (the reading the Theorem 5.1 proof uses).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional, Tuple

from repro.errors import ConfigurationError, ProtocolError
from repro.memory.records import (
    History,
    RenamingRecord,
    decode_renaming_record,
    encode_renaming_record,
)
from repro.core.consensus import choose_index, majority_value
from repro.runtime.automaton import Algorithm, ProcessAutomaton
from repro.runtime.ops import Operation, ReadOp, WriteOp
from repro.types import ProcessId, RegisterValue, require, validate_process_id


@dataclass(frozen=True)
class RenamingState:
    """Local state of one Figure 3 process."""

    pc: str = "collect"
    #: Loop index of the line-4 read pass (0-based).
    j: int = 0
    #: The view accumulated by the current pass.
    myview: Tuple[RenamingRecord, ...] = ()
    #: Current preference — the identifier this process backs this round.
    mypref: ProcessId = 0
    #: Current round, the paper's ``myround`` (starts at 1).
    myround: int = 1
    #: Set of (identifier, round) pairs of already-elected processes.
    myhistory: History = frozenset()
    #: Register chosen by line 15 for the pending line-16 write.
    write_index: int = -1
    #: The acquired new name, once decided.
    name: Optional[int] = None


class AnonymousRenamingProcess(ProcessAutomaton):
    """One process of the Figure 3 algorithm.

    Parameters
    ----------
    pid:
        The process identifier ``i`` (also its initial preference each
        round, line 2).
    n:
        The dimensioning process count (round limit, adoption threshold).
    m:
        Register count (``2n - 1`` in the theorem's regime).
    choice:
        Strategy for the arbitrary-index selections of lines 9 and 15.
    encode_records:
        Store registers as single integers (the §4.1 remark, which §5.1
        notes applies to renaming as well).
    """

    PC_LINES = {
        "collect": "Figure 3, line 4 — myview[j] := p.i[j]",
        "write": "Figure 3, line 16 — p.i[j] := (i, mypref, myround, myhistory)",
        "done": "Figure 3, lines 6 / 18 / 22 — a new name was returned",
    }

    def __init__(
        self,
        pid: ProcessId,
        n: int,
        m: int,
        choice: str = "first",
        encode_records: bool = False,
    ):
        self.pid = validate_process_id(pid)
        self.n = n
        self.m = m
        self.choice = choice
        self.encode_records = encode_records

    # -- record (de)serialisation -------------------------------------------

    def _load(self, raw: RegisterValue) -> RenamingRecord:
        if self.encode_records:
            return decode_renaming_record(raw)
        return raw if isinstance(raw, RenamingRecord) else RenamingRecord()

    def _store(self, record: RenamingRecord) -> RegisterValue:
        return encode_renaming_record(record) if self.encode_records else record

    # -- automaton interface ---------------------------------------------

    def initial_state(self) -> RenamingState:
        # Line 2 (first outer iteration): mypref := i.
        return RenamingState(mypref=self.pid)

    def is_halted(self, state: RenamingState) -> bool:
        return state.pc == "done"

    def output(self, state: RenamingState) -> Optional[int]:
        """The acquired new name (lines 6 / 18 / 22)."""
        return state.name if state.pc == "done" else None

    def next_op(self, state: RenamingState) -> Operation:
        self.require_running(state)
        if state.pc == "collect":
            return ReadOp(state.j)
        if state.pc == "write":
            # Line 16: p.i[j] := (i, mypref, myround, myhistory).
            return WriteOp(
                state.write_index,
                self._store(
                    RenamingRecord(
                        self.pid, state.mypref, state.myround, state.myhistory
                    )
                ),
            )
        raise ProtocolError(f"renaming process {self.pid}: unknown pc {state.pc!r}")

    def apply(self, state: RenamingState, op: Operation, result: Any) -> RenamingState:
        if state.pc == "collect":
            myview = state.myview + (self._load(result),)
            if state.j + 1 < self.m:
                return replace(state, j=state.j + 1, myview=myview)
            return self._after_collect(state, myview)
        if state.pc == "write":
            # Back to line 4 for the next inner-loop iteration.
            return replace(state, pc="collect", j=0, myview=(), write_index=-1)
        raise ProtocolError(f"renaming process {self.pid}: cannot apply {state.pc!r}")

    # -- the heart of the algorithm: lines 5-21 -----------------------------

    def _after_collect(
        self, state: RenamingState, myview: Tuple[RenamingRecord, ...]
    ) -> RenamingState:
        # Lines 5-6: already elected in some earlier round?  Someone's
        # history knows; return that round as the new name.
        for entry in myview:
            for hist_id, hist_round in entry.history:
                if hist_id == self.pid:
                    return replace(
                        state, pc="done", name=hist_round, myview=myview
                    )

        mypref = state.mypref
        myround = state.myround
        myhistory = state.myhistory

        # Line 7: the maximum round number visible.
        mytemp = max(entry.round for entry in myview)
        if mytemp > myround:
            # Lines 8-12: lagging behind; catch up from an entry at the
            # maximum round.
            k = choose_index(
                myview,
                lambda entry: entry.round == mytemp,
                self.choice,
                salt=(self.pid, myview, "catchup"),
            )
            mypref = myview[k].val
            myhistory = myview[k].history
            myround = myview[k].round

        # Lines 13-14: adopt the value backed by >= n val fields among
        # entries at the current round.
        adopted = majority_value(
            (
                entry.val if entry.round == myround else 0
                for entry in myview
            ),
            self.n,
        )
        if adopted is not None:
            mypref = adopted

        # Line 17 (see module docstring): inner-loop exit when the whole
        # array already carries this process's tuple.
        target = RenamingRecord(self.pid, mypref, myround, myhistory)
        if all(entry == target for entry in myview):
            return self._after_inner_loop(state, myview, mypref, myround, myhistory)

        # Line 15: arbitrary index whose entry differs from the tuple.
        index = choose_index(
            myview,
            lambda entry: entry != target,
            self.choice,
            salt=(self.pid, myview, "write"),
        )
        return replace(
            state,
            pc="write",
            mypref=mypref,
            myround=myround,
            myhistory=myhistory,
            myview=myview,
            write_index=index,
            j=0,
        )

    def _after_inner_loop(
        self,
        state: RenamingState,
        myview: Tuple[RenamingRecord, ...],
        mypref: ProcessId,
        myround: int,
        myhistory: History,
    ) -> RenamingState:
        """Lines 18-22: elected this round, or advance to the next one."""
        if mypref == self.pid:
            # Line 18: elected in the current round — the round number is
            # the new name.
            return replace(
                state, pc="done", name=myround, mypref=mypref,
                myround=myround, myhistory=myhistory, myview=myview,
            )
        # Line 19-20: record the winner, move to the next round.
        myhistory = myhistory | {(mypref, myround)}
        myround = myround + 1
        if myround == self.n:
            # Lines 21-22: a single process is left; it takes the name n.
            return replace(
                state, pc="done", name=self.n, mypref=mypref,
                myround=myround, myhistory=myhistory, myview=myview,
            )
        # Line 2: new round, back my own identifier again.
        return replace(
            state,
            pc="collect",
            j=0,
            myview=(),
            mypref=self.pid,
            myround=myround,
            myhistory=myhistory,
            write_index=-1,
        )

    # -- symmetry-reduction hooks (see docs/EXPLORATION.md) ------------------

    def symmetry_signature(self):
        """Twin key; renaming has no input (the old name *is* the pid).

        As in Figure 2, the ``"spread"`` choice hashes ``(pid, myview)``
        and would break twin equivalence, so it opts out.
        """
        if self.choice == "spread":
            return None
        return (self.n, self.m, self.choice, self.encode_records), None

    def state_footprint(self, state: RenamingState):
        """Drop components ``apply`` resets before they are read again.

        At ``write`` the view and ``j`` are dead (line 16 writes
        ``(i, mypref, myround, myhistory)`` at ``write_index``; the
        transition back to line 4 clears both); at ``done`` only the
        acquired name remains observable.
        """
        if state.pc == "write":
            return (
                "write", state.mypref, state.myround, state.myhistory,
                state.write_index,
            )
        if state.pc == "done":
            return ("done", state.name)
        return (
            "collect", state.j, state.myview, state.mypref, state.myround,
            state.myhistory,
        )

    def rename_state_footprint(self, footprint, pids_renamed, values_renamed):
        """Rename every embedded identifier: record ids, backed values
        (``val``/``mypref`` carry identifiers here), and history pairs.
        Rounds and acquired names live in ``{1..n}``, not the id space."""
        def renamed_record(entry: RenamingRecord) -> RenamingRecord:
            return RenamingRecord(
                pids_renamed.get(entry.id, entry.id),
                pids_renamed.get(entry.val, entry.val),
                entry.round,
                frozenset(
                    (pids_renamed.get(who, who), rnd)
                    for who, rnd in entry.history
                ),
            )

        if footprint[0] == "collect":
            _, j, myview, mypref, myround, myhistory = footprint
            return (
                "collect",
                j,
                tuple(renamed_record(entry) for entry in myview),
                pids_renamed.get(mypref, mypref),
                myround,
                frozenset(
                    (pids_renamed.get(who, who), rnd) for who, rnd in myhistory
                ),
            )
        if footprint[0] == "write":
            _, mypref, myround, myhistory, write_index = footprint
            return (
                "write",
                pids_renamed.get(mypref, mypref),
                myround,
                frozenset(
                    (pids_renamed.get(who, who), rnd) for who, rnd in myhistory
                ),
                write_index,
            )
        return footprint  # done: names are 1..n, never identifiers.

    def rename_register_value(self, value, pids_renamed, values_renamed):
        record = self._load(value)
        renamed = RenamingRecord(
            pids_renamed.get(record.id, record.id),
            pids_renamed.get(record.val, record.val),
            record.round,
            frozenset(
                (pids_renamed.get(who, who), rnd) for who, rnd in record.history
            ),
        )
        return self._store(renamed)


class AnonymousRenaming(Algorithm):
    """The Figure 3 algorithm as a runnable :class:`Algorithm`.

    Parameters
    ----------
    n:
        Number of processes the instance is dimensioned for (the target
        name space is ``{1..n}``).
    registers:
        Register count override; defaults to the paper's ``2n - 1``.
        Passing fewer deliberately builds the configuration Theorem 6.5
        proves impossible.
    choice / encode_records:
        Forwarded to every process automaton.
    """

    name = "anonymous-renaming(Fig3)"

    def __init__(
        self,
        n: int,
        registers: Optional[int] = None,
        choice: str = "first",
        encode_records: bool = False,
    ):
        require(
            isinstance(n, int) and n >= 1,
            f"renaming needs a positive process count, got {n!r}",
            ConfigurationError,
        )
        self.n = n
        self.m = registers if registers is not None else 2 * n - 1
        require(
            isinstance(self.m, int) and self.m >= 1,
            f"register count must be a positive int, got {self.m!r}",
            ConfigurationError,
        )
        self.choice = choice
        self.encode_records = encode_records

    def register_count(self) -> int:
        return self.m

    def initial_value(self) -> RegisterValue:
        # "initially the fields id, val, round, and history are 0, 0, 0
        # and the empty set" — the empty record (or its encoding).
        return 0 if self.encode_records else RenamingRecord()

    def automaton_for(self, pid: ProcessId, input: Any = None) -> AnonymousRenamingProcess:
        # Renaming has no input: the old name *is* the identifier.
        return AnonymousRenamingProcess(
            pid,
            n=self.n,
            m=self.m,
            choice=self.choice,
            encode_records=self.encode_records,
        )
