"""Figure 1 — memory-anonymous symmetric deadlock-free mutual exclusion.

The paper's Section 3 algorithm: the first memory-anonymous mutual
exclusion algorithm, for **two processes** using any **odd** number of
registers ``m >= 3``.  Quoting the structure (§3.3):

    Each participating process scans the m shared registers trying to
    write its identifier into each one of the m registers. [...] Once a
    process completes scanning [...] it scans the registers again, this
    time only reading their values.  If it finds that its identifier is
    written in all the m registers, it safely enters its critical
    section.  If its identifier is written in less than ceil(m/2)
    registers, it gives up and sets the registers in which its name is
    written back to their initial values [and waits for the memory to be
    all zero].  If its identifier is written in at least ceil(m/2)
    registers (but not in all), it starts all over again.  On exiting its
    critical section, a process sets all the registers back to their
    initial values.

Theorem 3.1 states such an algorithm exists for ``m >= 2`` **iff m is
odd** — oddness is what guarantees that under contention exactly one
process captures a strict majority.  The experiments run this automaton
with even ``m`` too (via ``unsafe_allow_any_m``) to *exhibit* the failure
the theorem predicts; see :mod:`repro.lowerbounds.symmetry`.

Program-counter values map to the figure's line numbers:

====================  =====================================================
``pc``                Figure 1 lines
====================  =====================================================
``scan_read``         line 2, reading ``p.i[j]``
``scan_write``        line 2, conditional write ``p.i[j] := i``
``collect``           line 3, ``myview[j] := p.i[j]``
``cleanup_read``      line 5, reading ``p.i[j]``
``cleanup_write``     line 5, conditional write ``p.i[j] := 0``
``wait``              lines 6–8, re-reading until all zero
``enter_cs``          line 10 -> 11 boundary (EnterCritOp)
``crit``              line 11, inside the critical section
``exit_crit``         line 11 -> 12 boundary (ExitCritOp)
``reset``             line 12, exit code ``p.i[j] := 0``
``done``              process left the algorithm (after ``cs_visits``)
====================  =====================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Tuple

from repro.errors import ConfigurationError, ProtocolError
from repro.runtime.automaton import Algorithm, LocalState, ProcessAutomaton
from repro.runtime.ops import (
    CritOp,
    EnterCritOp,
    ExitCritOp,
    Operation,
    ReadOp,
    WriteOp,
)
from repro.types import ProcessId, require, validate_process_id


@dataclass(frozen=True)
class MutexState:
    """Local state of one Figure 1 process (its "location counter" plus
    the local variables ``j`` and ``myview``)."""

    pc: str = "scan_read"
    #: Loop index ``j`` (0-based; the paper's j-1).
    j: int = 0
    #: The local array ``myview`` accumulated by the current read pass.
    myview: Tuple[int, ...] = ()
    #: Critical-section steps still to spend (the process "uses" the CS).
    crit_remaining: int = 0
    #: Completed critical-section visits.
    visits_done: int = 0


class MutexAutomatonMixin:
    """Critical-section introspection shared by all mutex automata.

    The model checker's mutual-exclusion invariant and the symmetry attack
    of Theorem 3.4 both need to ask "is this process inside its critical
    section?" of a *state* — these helpers answer without touching memory.

    Subclasses list their exit-code program counters in ``EXIT_PCS`` so
    that :meth:`phase` can classify every state into the four sections of
    §3.1 (remainder, entry, critical, exit); the scheduler stamps the
    phase onto each event, which is what lets the
    :class:`~repro.spec.mutex_spec.ExitWaitFreeChecker` verify §3.1's
    "the exit section is required to be wait-free" on traces.
    """

    #: Program counters that belong to the exit *code* (after the CS).
    EXIT_PCS: frozenset = frozenset()

    def in_critical_section(self, state: LocalState) -> bool:
        """True while the process holds the critical section."""
        return state.pc in ("crit", "exit_crit")

    def in_remainder(self, state: LocalState) -> bool:
        """True when the process is not currently competing (finished)."""
        return state.pc == "done"

    def phase(self, state: LocalState) -> str:
        """Which of §3.1's four sections the process is in."""
        if state.pc == "done":
            return "remainder"
        if self.in_critical_section(state):
            return "critical"
        if state.pc in self.EXIT_PCS:
            return "exit"
        return "entry"


class AnonymousMutexProcess(MutexAutomatonMixin, ProcessAutomaton):
    """One process of the Figure 1 algorithm.

    Parameters
    ----------
    pid:
        The process identifier ``i`` (positive; written into registers).
    m:
        Number of shared registers.
    cs_visits:
        How many critical-section passes before the process halts (the
        paper's processes loop forever; experiments need termination).
    cs_steps:
        Atomic steps spent inside each critical section — stretching the
        occupied interval so overlap violations are observable.
    """

    EXIT_PCS = frozenset({"reset"})

    PC_LINES = {
        "scan_read": "Figure 1, line 2 — read p.i[j] during the write scan",
        "scan_write": "Figure 1, line 2 — conditional write p.i[j] := i",
        "collect": "Figure 1, line 3 — myview[j] := p.i[j]",
        "cleanup_read": "Figure 1, line 5 — read p.i[j] during cleanup",
        "cleanup_write": "Figure 1, line 5 — conditional write p.i[j] := 0",
        "wait": "Figure 1, lines 6-8 — re-read until all registers are 0",
        "enter_cs": "Figure 1, line 10 -> 11 boundary — enter the CS",
        "crit": "Figure 1, line 11 — inside the critical section",
        "exit_crit": "Figure 1, line 11 -> 12 boundary — leave the CS",
        "reset": "Figure 1, line 12 — exit code p.i[j] := 0",
        "done": "Figure 1, after line 12 — left the algorithm (cs_visits spent)",
    }

    def __init__(self, pid: ProcessId, m: int, cs_visits: int = 1, cs_steps: int = 1):
        self.pid = validate_process_id(pid)
        self.m = m
        self.cs_visits = cs_visits
        self.cs_steps = max(1, cs_steps)
        #: The paper's threshold ceil(m/2) from line 4.
        self.threshold = math.ceil(m / 2)

    def initial_state(self) -> MutexState:
        return MutexState()

    def is_halted(self, state: MutexState) -> bool:
        return state.pc == "done"

    def output(self, state: MutexState) -> Any:
        """A mutex process "outputs" its completed visit count."""
        return state.visits_done if state.pc == "done" else None

    # -- pending operation --------------------------------------------------

    def next_op(self, state: MutexState) -> Operation:
        self.require_running(state)
        pc = state.pc
        if pc in ("scan_read", "collect", "cleanup_read", "wait"):
            return ReadOp(state.j)
        if pc == "scan_write":
            return WriteOp(state.j, self.pid)
        if pc == "cleanup_write":
            return WriteOp(state.j, 0)
        if pc == "enter_cs":
            return EnterCritOp()
        if pc == "crit":
            return CritOp()
        if pc == "exit_crit":
            return ExitCritOp()
        if pc == "reset":
            return WriteOp(state.j, 0)
        raise ProtocolError(f"mutex process {self.pid}: unknown pc {pc!r}")

    # -- transition ----------------------------------------------------------

    def apply(self, state: MutexState, op: Operation, result: Any) -> MutexState:
        pc = state.pc

        if pc == "scan_read":
            # Line 2: if p.i[j] = 0 then write i, else move on.
            if result == 0:
                return replace(state, pc="scan_write")
            return self._advance_scan(state)

        if pc == "scan_write":
            return self._advance_scan(state)

        if pc == "collect":
            # Line 3: myview[j] := p.i[j].
            myview = state.myview + (result,)
            if state.j + 1 < self.m:
                return replace(state, j=state.j + 1, myview=myview)
            return self._after_collect(state, myview)

        if pc == "cleanup_read":
            # Line 5: if p.i[j] = i then write 0, else move on.
            if result == self.pid:
                return replace(state, pc="cleanup_write")
            return self._advance_cleanup(state)

        if pc == "cleanup_write":
            return self._advance_cleanup(state)

        if pc == "wait":
            # Lines 6-8: read the whole array; leave when all zeros.
            myview = state.myview + (result,)
            if state.j + 1 < self.m:
                return replace(state, j=state.j + 1, myview=myview)
            if all(v == 0 for v in myview):
                # Line 1: start all over again.
                return MutexState(pc="scan_read", visits_done=state.visits_done)
            return replace(state, pc="wait", j=0, myview=())

        if pc == "enter_cs":
            return replace(
                state, pc="crit", crit_remaining=self.cs_steps, j=0, myview=()
            )

        if pc == "crit":
            remaining = state.crit_remaining - 1
            if remaining > 0:
                return replace(state, crit_remaining=remaining)
            return replace(state, pc="exit_crit", crit_remaining=0)

        if pc == "exit_crit":
            # Line 12 begins: reset all registers.
            return replace(state, pc="reset", j=0)

        if pc == "reset":
            if state.j + 1 < self.m:
                return replace(state, j=state.j + 1)
            visits = state.visits_done + 1
            if visits >= self.cs_visits:
                return MutexState(pc="done", visits_done=visits)
            return MutexState(pc="scan_read", visits_done=visits)

        raise ProtocolError(f"mutex process {self.pid}: cannot apply in pc {pc!r}")

    # -- symmetry-reduction hooks (see docs/EXPLORATION.md) ------------------

    def symmetry_signature(self):
        """Twin key; no input value ever reaches the shared registers."""
        return (self.m, self.threshold, self.cs_visits, self.cs_steps), None

    def state_footprint(self, state: MutexState):
        """Collapse ``myview`` to what lines 4-10 actually branch on.

        During ``collect`` the view only matters through how many entries
        hold this process's own mark (``mine`` in :meth:`_after_collect`),
        and once the line 4/10 three-way branch is already *determined* —
        a mark was missed with ``mine`` at the threshold (restart is
        forced), or the threshold is out of reach even if every remaining
        read is a hit (cleanup is forced) — the exact count stops
        mattering: the remaining reads cannot change the outcome, so all
        such counts are bisimilar.  During ``wait`` the view matters only
        through whether every entry read so far was zero (lines 6-8), and
        once a non-zero was seen the rest of the pass is *inert*: the
        remaining reads ignore their results, touch no memory, and end in
        the same pass-restart state, so ``j`` is dropped and the explorer
        collapses the tail into one state per context (the raw-self-loop
        acceleration in :func:`repro.runtime.exploration.explore`).
        Everywhere else ``myview`` is empty or dead — ``apply`` resets it
        before the next read.  ``crit_remaining`` is 0 outside ``crit``
        on every reachable path, and ``j`` is dead in the states whose
        ``next_op`` does not address a register.
        """
        pc = state.pc
        if pc == "collect":
            mine = sum(1 for v in state.myview if v == self.pid)
            outcome: Any = mine
            if mine < state.j and mine >= self.threshold:
                outcome = "restart-forced"
            elif mine + (self.m - state.j) < self.threshold:
                outcome = "cleanup-forced"
            return (pc, state.j, outcome, state.visits_done)
        if pc == "wait":
            if any(v != 0 for v in state.myview):
                return (pc, "dirty-pass", state.visits_done)
            return (pc, state.j, True, state.visits_done)
        if pc == "crit":
            return (pc, state.crit_remaining, state.visits_done)
        if pc in ("enter_cs", "exit_crit", "done"):
            return (pc, state.visits_done)
        # scan_read / scan_write / cleanup_read / cleanup_write / reset.
        return (pc, state.j, state.visits_done)

    def rename_state_footprint(self, footprint, pids_renamed, values_renamed):
        """Footprints reduce the view to counts — no identifier survives."""
        return footprint

    def rename_register_value(self, value, pids_renamed, values_renamed):
        """Registers hold 0 or a writer's identifier (line 2)."""
        return pids_renamed.get(value, value)

    # -- helpers -------------------------------------------------------------

    def _advance_scan(self, state: MutexState) -> MutexState:
        """Move line 2's loop forward; fall through to line 3 when done."""
        if state.j + 1 < self.m:
            return replace(state, pc="scan_read", j=state.j + 1)
        return replace(state, pc="collect", j=0, myview=())

    def _after_collect(self, state: MutexState, myview: Tuple[int, ...]) -> MutexState:
        """Lines 4 and 10: decide between CS, give-up, and retry."""
        mine = sum(1 for v in myview if v == self.pid)
        if mine == self.m:
            # Line 10 satisfied: enter the critical section.
            return replace(state, pc="enter_cs", j=0, myview=myview)
        if mine < self.threshold:
            # Line 4: lose; clean up own marks, then wait (lines 5-8).
            return replace(state, pc="cleanup_read", j=0, myview=())
        # At least ceil(m/2) but not all: start over (back to line 2).
        return MutexState(pc="scan_read", visits_done=state.visits_done)

    def _advance_cleanup(self, state: MutexState) -> MutexState:
        """Move line 5's loop forward; fall through to the wait loop."""
        if state.j + 1 < self.m:
            return replace(state, pc="cleanup_read", j=state.j + 1)
        return replace(state, pc="wait", j=0, myview=())


class AnonymousMutex(Algorithm):
    """The Figure 1 algorithm as a runnable :class:`Algorithm`.

    Parameters
    ----------
    m:
        Number of shared registers; must be odd and at least 3 (§3.3:
        "an odd integer greater than 2").
    cs_visits / cs_steps:
        Per-process defaults; a process's ``input`` may be an int
        overriding its ``cs_visits``.
    unsafe_allow_any_m:
        Lift the oddness/size validation.  Exists *only* so the
        lower-bound experiments can instantiate the algorithm in the
        regime Theorem 3.1 proves impossible and exhibit the violation.
    """

    name = "anonymous-mutex(Fig1)"

    def __init__(
        self,
        m: int = 3,
        cs_visits: int = 1,
        cs_steps: int = 1,
        unsafe_allow_any_m: bool = False,
    ):
        if not unsafe_allow_any_m:
            require(
                isinstance(m, int) and m >= 3 and m % 2 == 1,
                f"Figure 1 requires an odd register count m >= 3, got {m} "
                "(Theorem 3.1: a two-process memory-anonymous symmetric "
                "deadlock-free mutex with m >= 2 registers exists iff m is "
                "odd); pass unsafe_allow_any_m=True to build the "
                "impossible configuration deliberately",
                ConfigurationError,
            )
        else:
            require(
                isinstance(m, int) and m >= 1,
                f"register count must be a positive int, got {m!r}",
                ConfigurationError,
            )
        self.m = m
        self.cs_visits = cs_visits
        self.cs_steps = cs_steps

    def register_count(self) -> int:
        return self.m

    def automaton_for(self, pid: ProcessId, input: Any = None) -> AnonymousMutexProcess:
        cs_visits = input if isinstance(input, int) and input > 0 else self.cs_visits
        return AnonymousMutexProcess(
            pid, self.m, cs_visits=cs_visits, cs_steps=self.cs_steps
        )
