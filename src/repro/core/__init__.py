"""The paper's primary contribution: memory-anonymous algorithms.

* :mod:`repro.core.mutex` — Figure 1, two-process deadlock-free mutual
  exclusion with any odd ``m >= 3`` registers;
* :mod:`repro.core.consensus` — Figure 2, n-process obstruction-free
  multi-valued consensus with ``2n - 1`` registers;
* :mod:`repro.core.election` — the §4 note, election via consensus on
  identifiers;
* :mod:`repro.core.renaming` — Figure 3, obstruction-free adaptive
  perfect renaming with ``2n - 1`` registers.

All four are *symmetric* algorithms (identical code, identifiers compared
only for equality) and *memory-anonymous* (correct under every register
naming the adversary assigns).
"""

from repro.core.consensus import (
    AnonymousConsensus,
    AnonymousConsensusProcess,
    ConsensusState,
    choose_index,
    majority_value,
)
from repro.core.election import AnonymousElection, elected_leader
from repro.core.mutex import (
    AnonymousMutex,
    AnonymousMutexProcess,
    MutexAutomatonMixin,
    MutexState,
)
from repro.core.renaming import (
    AnonymousRenaming,
    AnonymousRenamingProcess,
    RenamingState,
)

__all__ = [
    "AnonymousConsensus",
    "AnonymousConsensusProcess",
    "ConsensusState",
    "choose_index",
    "majority_value",
    "AnonymousElection",
    "elected_leader",
    "AnonymousMutex",
    "AnonymousMutexProcess",
    "MutexAutomatonMixin",
    "MutexState",
    "AnonymousRenaming",
    "AnonymousRenamingProcess",
    "RenamingState",
]
