"""Obstruction-free election from consensus (the Section 4 note).

    "It is straightforward to use the above consensus algorithm for
    constructing a memory-anonymous symmetric obstruction-free election
    algorithm: each process simply uses its own identifier as its initial
    input."

:class:`AnonymousElection` does exactly that: it is Figure 2 with the
inputs pinned to the participants' identifiers, so the agreed value *is*
the elected leader's identifier.  Every terminating participant outputs
the same identifier (agreement) and that identifier belongs to some
participant (validity) — the election specification.

Election with even one crash failure is impossible with registers — named
or not (§4, citing [11, 19, 26]); like consensus, this object is
obstruction-free, not fault-tolerant.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.consensus import AnonymousConsensus, AnonymousConsensusProcess
from repro.errors import ConfigurationError
from repro.types import ProcessId


class AnonymousElection(AnonymousConsensus):
    """Leader election for ``n`` processes using ``2n - 1`` anonymous
    registers.

    The automaton ignores any supplied input and uses the process's own
    identifier as its consensus input; passing a conflicting explicit
    input is rejected to catch confused callers.
    """

    name = "anonymous-election(§4)"

    def automaton_for(self, pid: ProcessId, input: Any = None) -> AnonymousConsensusProcess:
        if input is not None and input != pid:
            raise ConfigurationError(
                f"election derives its input from the process identifier; "
                f"got explicit input {input!r} for process {pid}"
            )
        return super().automaton_for(pid, input=pid)


def elected_leader(outputs) -> Optional[ProcessId]:
    """Extract the unanimous leader from a run's outputs.

    Returns ``None`` when nobody decided; raises ``ValueError`` when the
    outputs disagree (which would be an agreement violation — the caller
    is expected to have checked the spec already).
    """
    decided = {pid: out for pid, out in outputs.items() if out is not None}
    if not decided:
        return None
    winners = set(decided.values())
    if len(winners) != 1:
        raise ValueError(f"election outputs disagree: {decided}")
    return winners.pop()
