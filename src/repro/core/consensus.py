"""Figure 2 — memory-anonymous symmetric obstruction-free consensus.

The paper's Section 4 algorithm: multi-valued consensus for ``n``
processes using ``2n - 1`` anonymous registers, each holding a record
``(id, val)``.  Quoting §4.1:

    Each participating process scans the 2n-1 shared registers trying to
    write its identifier and preference into each one of the 2n-1
    registers.  Before each write, the process scans the shared array and
    operates as follows: if its identifier and preference appears in all
    the 2n-1 registers, it decides on its preference, and terminates;
    otherwise, if some preference appears in at least n of the value
    fields, the process adopts this preference as its new value.

The ``2n - 1`` register count is load-bearing twice over: any value held
in at least ``n`` of the ``val`` fields is a *strict majority*, so at most
one such value exists; and the first decider's value, written everywhere,
survives the at-most-one overwrite each other process can immediately
perform (Theorem 4.1's argument).  Theorem 6.3 shows ``n - 1`` anonymous
registers are not enough; :mod:`repro.lowerbounds.consensus_space`
exhibits that failure on this very implementation.

Program-counter map (figure line numbers):

===========  ===========================================================
``pc``       Figure 2 lines
===========  ===========================================================
``collect``  line 3, ``myview[j] := p.i[j]``
``write``    line 7, ``p.i[j] := (i, mypref)`` (index chosen by line 6)
``decided``  line 9, after the line-8 exit condition held
===========  ===========================================================

One presentational note: as printed, line 6 ("an arbitrary index k such
that myview[k] != (i, mypref)") precedes the line-8 until-test, yet no
such index exists exactly when the until-test holds.  The intended
semantics — confirmed by the Theorem 4.1 proof — is that a process whose
view is all ``(i, mypref)`` exits and decides instead of writing.  We
implement that reading: the exit test is evaluated right after the
line 4-5 adoption step.  (When the test fails, line 6's entry always
exists, as the paper notes.)
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional, Tuple

from repro.errors import ConfigurationError, ProtocolError
from repro.memory.records import (
    ConsensusRecord,
    decode_consensus_record,
    encode_consensus_record,
)
from repro.runtime.automaton import Algorithm, ProcessAutomaton
from repro.runtime.ops import Operation, ReadOp, WriteOp
from repro.types import ProcessId, RegisterValue, require, validate_process_id


def majority_value(vals, threshold: int):
    """The unique non-zero value occurring at least ``threshold`` times.

    Implements line 4's test.  With ``threshold = n`` over ``2n - 1``
    entries the winner is a strict majority, hence unique; the helper
    nevertheless guards against a caller breaking that arithmetic.
    """
    counts = {}
    for v in vals:
        if v != 0:
            counts[v] = counts.get(v, 0) + 1
    winners = [v for v, c in counts.items() if c >= threshold]
    if len(winners) > 1:
        raise ProtocolError(
            f"two values {winners!r} both reached the adoption threshold "
            f"{threshold}; register count must be at least 2*threshold - 1"
        )
    return winners[0] if winners else None


def choose_index(view, predicate, strategy: str, salt: int) -> int:
    """Pick an index of ``view`` satisfying ``predicate``.

    The paper leaves the choice "arbitrary" (lines 6/9/15 of Figures 2/3).
    The strategy must be a *deterministic function of the state* so runs
    can be replayed and model-checked:

    - ``"first"`` / ``"last"`` — the lowest / highest matching index;
    - ``"spread"`` — a matching index selected by hashing ``salt`` (the
      caller passes something state-derived, e.g. the view itself), which
      varies the choice across iterations without nondeterminism.
    """
    matches = [k for k, entry in enumerate(view) if predicate(entry)]
    if not matches:
        raise ProtocolError(
            "no register available for the arbitrary-index choice; the "
            "exit condition should have been taken instead"
        )
    if strategy == "first":
        return matches[0]
    if strategy == "last":
        return matches[-1]
    if strategy == "spread":
        return matches[hash(salt) % len(matches)]
    raise ConfigurationError(f"unknown index-choice strategy {strategy!r}")


@dataclass(frozen=True)
class ConsensusState:
    """Local state of one Figure 2 process."""

    pc: str = "collect"
    #: Loop index ``j`` of the line-3 read pass (0-based).
    j: int = 0
    #: The view being accumulated by the current pass.
    myview: Tuple[ConsensusRecord, ...] = ()
    #: The process's current preference (line 1 / line 5).
    mypref: Any = None
    #: Register chosen by line 6 for the pending line-7 write.
    write_index: int = -1


class AnonymousConsensusProcess(ProcessAutomaton):
    """One process of the Figure 2 algorithm.

    Parameters
    ----------
    pid / input:
        The process identifier ``i`` and its input ``in_i``.  Inputs may
        be any hashable value except 0/None (0 is the empty-register
        marker).
    m:
        Register count (``2n - 1`` in the theorem's regime).
    adopt_threshold:
        Line 4's ``n``.
    choice:
        Strategy for the "arbitrary index" of line 6.
    encode_records:
        Store registers as single integers via
        :func:`repro.memory.records.encode_consensus_record` (the §4.1
        remark) instead of as record objects.
    """

    PC_LINES = {
        "collect": "Figure 2, line 3 — myview[j] := p.i[j]",
        "write": "Figure 2, line 7 — p.i[j] := (i, mypref), index from line 6",
        "decided": "Figure 2, line 9 — decide(mypref) after the line-8 exit",
    }

    def __init__(
        self,
        pid: ProcessId,
        input: Any,
        m: int,
        adopt_threshold: int,
        choice: str = "first",
        encode_records: bool = False,
    ):
        self.pid = validate_process_id(pid)
        require(
            input is not None and input != 0,
            f"consensus input must be non-zero and non-None, got {input!r} "
            "(0 is reserved as the registers' initial known state)",
            ConfigurationError,
        )
        self.input = input
        self.m = m
        self.adopt_threshold = adopt_threshold
        self.choice = choice
        self.encode_records = encode_records

    # -- record (de)serialisation -------------------------------------------

    def _load(self, raw: RegisterValue) -> ConsensusRecord:
        if self.encode_records:
            return decode_consensus_record(raw)
        return raw if isinstance(raw, ConsensusRecord) else ConsensusRecord()

    def _store(self, record: ConsensusRecord) -> RegisterValue:
        return encode_consensus_record(record) if self.encode_records else record

    # -- automaton interface ---------------------------------------------

    def initial_state(self) -> ConsensusState:
        # Line 1: mypref := in_i.
        return ConsensusState(mypref=self.input)

    def is_halted(self, state: ConsensusState) -> bool:
        return state.pc == "decided"

    def output(self, state: ConsensusState) -> Any:
        # Line 9: decide(mypref).
        return state.mypref if state.pc == "decided" else None

    def next_op(self, state: ConsensusState) -> Operation:
        self.require_running(state)
        if state.pc == "collect":
            return ReadOp(state.j)
        if state.pc == "write":
            # Line 7: p.i[j] := (i, mypref).
            return WriteOp(
                state.write_index,
                self._store(ConsensusRecord(self.pid, state.mypref)),
            )
        raise ProtocolError(f"consensus process {self.pid}: unknown pc {state.pc!r}")

    def apply(self, state: ConsensusState, op: Operation, result: Any) -> ConsensusState:
        if state.pc == "collect":
            myview = state.myview + (self._load(result),)
            if state.j + 1 < self.m:
                return replace(state, j=state.j + 1, myview=myview)
            return self._after_collect(state, myview)
        if state.pc == "write":
            # Back to line 3 for the next iteration of the repeat loop.
            return replace(state, pc="collect", j=0, myview=(), write_index=-1)
        raise ProtocolError(f"consensus process {self.pid}: cannot apply {state.pc!r}")

    # -- the heart of the algorithm: lines 4-8 -----------------------------

    def _after_collect(
        self, state: ConsensusState, myview: Tuple[ConsensusRecord, ...]
    ) -> ConsensusState:
        mypref = state.mypref
        # Lines 4-5: adopt a preference held by at least n val fields.
        adopted = majority_value(
            (entry.val for entry in myview), self.adopt_threshold
        )
        if adopted is not None:
            mypref = adopted
        # Line 8 (see module docstring): decide when the whole array is
        # (i, mypref).
        target = ConsensusRecord(self.pid, mypref)
        if all(entry == target for entry in myview):
            return replace(
                state, pc="decided", mypref=mypref, myview=myview, j=0
            )
        # Line 6: arbitrary index whose entry differs from (i, mypref).
        index = choose_index(
            myview,
            lambda entry: entry != target,
            self.choice,
            salt=(self.pid, myview),
        )
        return replace(
            state,
            pc="write",
            mypref=mypref,
            myview=myview,
            write_index=index,
            j=0,
        )

    # -- symmetry-reduction hooks (see docs/EXPLORATION.md) ------------------

    def symmetry_signature(self):
        """Twin key plus the input, which flows into register ``val`` fields.

        The ``"spread"`` index choice hashes ``(pid, myview)`` — renamed
        twins would pick observably different registers — so it opts out.
        """
        if self.choice == "spread":
            return None
        return (
            (self.m, self.adopt_threshold, self.choice, self.encode_records),
            self.input,
        )

    def state_footprint(self, state: ConsensusState):
        """Drop components ``apply`` resets before they are read again.

        At ``write`` the view and ``j`` are dead (line 7 uses only
        ``write_index`` and ``mypref``; the transition back to line 3
        clears both); at ``decided`` only the decision value remains
        observable.  During ``collect`` with the default ``"first"``
        index choice, :meth:`_after_collect` consumes the view through
        exactly two statistics, so the positional view folds into

        * the per-value tallies of the non-zero ``val`` fields (line 4's
          majority test needs exact counts, since future entries add);
        * the leading run of entries equal to ``(i, v0)`` — the line-8
          all-equal test holds iff that run spans the array with ``v0``
          the final preference, and line 6's *first* differing index is
          the run length when ``v0`` is the final preference and 0
          otherwise.

        Other index-choice strategies inspect positions the statistics
        erase (``"last"`` mirrors, ``"spread"`` hashes the whole view),
        so they keep the full view.
        """
        if state.pc == "write":
            return ("write", state.mypref, state.write_index)
        if state.pc == "decided":
            return ("decided", state.mypref)
        if self.choice != "first":
            return ("collect", state.j, state.myview, state.mypref)
        myview = state.myview
        run = 0
        lead = None
        if myview and myview[0].id == self.pid:
            lead = myview[0].val
            for entry in myview:
                if entry.id == self.pid and entry.val == lead:
                    run += 1
                else:
                    break
        tally: dict = {}
        for entry in myview:
            if entry.val != 0:
                tally[entry.val] = tally.get(entry.val, 0) + 1
        return (
            "collect",
            state.j,
            lead,
            run,
            frozenset(tally.items()),
            state.mypref,
        )

    def rename_state_footprint(self, footprint, pids_renamed, values_renamed):
        """Rename record ids/vals and the preference; indices and counts
        are private view statistics and stay put (the register
        permutation is carried by the naming assignment, not by the
        local state)."""
        if footprint[0] == "collect":
            if len(footprint) == 6:
                _, j, lead, run, tally, mypref = footprint
                return (
                    "collect",
                    j,
                    values_renamed.get(lead, lead),
                    run,
                    frozenset(
                        (values_renamed.get(val, val), count)
                        for val, count in tally
                    ),
                    values_renamed.get(mypref, mypref),
                )
            _, j, myview, mypref = footprint
            renamed = tuple(
                ConsensusRecord(
                    pids_renamed.get(entry.id, entry.id),
                    values_renamed.get(entry.val, entry.val),
                )
                for entry in myview
            )
            return ("collect", j, renamed, values_renamed.get(mypref, mypref))
        if footprint[0] == "write":
            _, mypref, write_index = footprint
            return ("write", values_renamed.get(mypref, mypref), write_index)
        _, mypref = footprint
        return ("decided", values_renamed.get(mypref, mypref))

    def rename_register_value(self, value, pids_renamed, values_renamed):
        record = self._load(value)
        renamed = ConsensusRecord(
            pids_renamed.get(record.id, record.id),
            values_renamed.get(record.val, record.val),
        )
        return self._store(renamed)


class AnonymousConsensus(Algorithm):
    """The Figure 2 algorithm as a runnable :class:`Algorithm`.

    Parameters
    ----------
    n:
        Number of processes the instance is dimensioned for.
    registers:
        Register count override.  Defaults to the paper's ``2n - 1``;
        passing fewer deliberately builds the configuration Theorem 6.3
        proves impossible (the lower-bound experiments do exactly that).
    choice / encode_records:
        Forwarded to every process automaton.
    """

    name = "anonymous-consensus(Fig2)"

    def __init__(
        self,
        n: int,
        registers: Optional[int] = None,
        choice: str = "first",
        encode_records: bool = False,
    ):
        require(
            isinstance(n, int) and n >= 1,
            f"consensus needs a positive process count, got {n!r}",
            ConfigurationError,
        )
        self.n = n
        self.m = registers if registers is not None else 2 * n - 1
        require(
            isinstance(self.m, int) and self.m >= 1,
            f"register count must be a positive int, got {self.m!r}",
            ConfigurationError,
        )
        self.choice = choice
        self.encode_records = encode_records

    def register_count(self) -> int:
        return self.m

    def initial_value(self) -> RegisterValue:
        # "initially all fields are 0": the empty record (or its encoding).
        return 0 if self.encode_records else ConsensusRecord()

    def automaton_for(self, pid: ProcessId, input: Any = None) -> AnonymousConsensusProcess:
        return AnonymousConsensusProcess(
            pid,
            input,
            m=self.m,
            adopt_threshold=self.n,
            choice=self.choice,
            encode_records=self.encode_records,
        )
