"""Adversary strategy families for the fuzzer.

A *strategy* picks which enabled process steps next, one pid at a time,
from a :class:`FuzzContext` snapshot of the current state.  Strategies
are the fuzzer's hypothesis library — each family encodes one folk
theorem about where coordination algorithms break:

* ``random`` — uniform over the enabled set; the unbiased baseline.
* ``greedy`` — telemetry-biased: processes that have been colliding on
  physical registers (and those whose pending operation targets a
  register another enabled process is also about to touch) are favoured,
  steering runs toward contention.
* ``lockstep`` — the Theorem 3.4 template: every live process takes
  exactly one step per round, in a fixed rotation.  Against a symmetric
  algorithm over an even register count this *is* the livelock schedule;
  the strategy surrenders (returns ``None``) as soon as strict lockstep
  becomes impossible, because a broken rotation proves nothing.
* ``covering`` — the covering-argument template from
  :mod:`repro.lowerbounds`: block a pseudo-random subset of processes,
  run the rest in rotation for a burst, release, re-plan.  Bursts
  manufacture the "poised writers then overwrite" shapes the paper's
  lower-bound proofs build by hand.

Determinism contract: a strategy's entire decision sequence is a pure
function of its constructor ``rng`` and the sequence of contexts it is
shown.  Both fuzz kernels present identical contexts (same enabled
order, same pending physical registers, same contention counters), so
fixed ``(seed, episode, family)`` yields the same schedule under either.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.errors import FuzzError
from repro.types import ProcessId

__all__ = [
    "FuzzContext",
    "Strategy",
    "PureRandomStrategy",
    "TelemetryGreedyStrategy",
    "LockstepStrategy",
    "CoveringStrategy",
    "STRATEGY_FAMILIES",
    "build_strategy",
]


@dataclass(frozen=True)
class FuzzContext:
    """What a strategy sees before picking the next step.

    ``enabled`` preserves the instance's scheduler order;
    ``pending`` maps each enabled pid to the *physical* register its
    next operation touches (``None`` for local/halt steps) — both
    computed identically by the interpreted and compiled steppers.
    ``contention`` counts, per pid, how many of its past accesses hit a
    register last touched by a different process.
    """

    enabled: Tuple[ProcessId, ...]
    step_index: int
    pending: Dict[ProcessId, Optional[int]]
    contention: Dict[ProcessId, int]
    halted: int


class Strategy:
    """One episode's schedule chooser (fresh instance per episode)."""

    name = "abstract"

    def choose(self, ctx: FuzzContext) -> Optional[ProcessId]:
        """The pid to step next, or ``None`` to end the episode."""
        raise NotImplementedError


class PureRandomStrategy(Strategy):
    """Uniform choice over the enabled set."""

    name = "random"

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng

    def choose(self, ctx: FuzzContext) -> Optional[ProcessId]:
        return ctx.enabled[self._rng.randrange(len(ctx.enabled))]


class TelemetryGreedyStrategy(Strategy):
    """Weighted choice favouring contended processes.

    Weight of an enabled pid = 1 (floor: never starve anyone)
    + its contention count
    + the number of *other* enabled processes whose pending operation
    targets the same physical register (an imminent collision).
    """

    name = "greedy"

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng

    def choose(self, ctx: FuzzContext) -> Optional[ProcessId]:
        weights: List[int] = []
        for pid in ctx.enabled:
            weight = 1 + ctx.contention.get(pid, 0)
            target = ctx.pending.get(pid)
            if target is not None:
                weight += sum(
                    1
                    for other in ctx.enabled
                    if other != pid and ctx.pending.get(other) == target
                )
            weights.append(weight)
        pick = self._rng.randrange(sum(weights))
        for pid, weight in zip(ctx.enabled, weights):
            pick -= weight
            if pick < 0:
                return pid
        return ctx.enabled[-1]  # pragma: no cover — arithmetic guard


class LockstepStrategy(Strategy):
    """Strict rotation: one step per live process per round."""

    name = "lockstep"

    def __init__(self, rng: random.Random) -> None:
        self._ring: Optional[Tuple[ProcessId, ...]] = None
        self._next = 0

    def choose(self, ctx: FuzzContext) -> Optional[ProcessId]:
        if self._ring is None:
            self._ring = ctx.enabled
        pid = self._ring[self._next % len(self._ring)]
        if pid not in ctx.enabled:
            return None  # rotation broken (someone halted): surrender
        self._next += 1
        return pid


class CoveringStrategy(Strategy):
    """Block-a-subset / run-a-burst / release, repeatedly."""

    name = "covering"

    def __init__(self, rng: random.Random, burst: int = 12) -> None:
        self._rng = rng
        self.burst = burst
        self._blocked: FrozenSet[ProcessId] = frozenset()
        self._left = 0
        self._rotation = 0

    def choose(self, ctx: FuzzContext) -> Optional[ProcessId]:
        if self._left == 0:
            # Re-plan: suspend a proper pseudo-random subset (possibly
            # empty — a burst of free rotation is also a plan).
            size = self._rng.randrange(len(ctx.enabled))
            self._blocked = frozenset(
                self._rng.sample(list(ctx.enabled), size)
            )
            self._left = self.burst
        self._left -= 1
        runnable = [p for p in ctx.enabled if p not in self._blocked]
        if not runnable:  # every survivor is blocked: release them all
            runnable = list(ctx.enabled)
            self._blocked = frozenset()
        pid = runnable[self._rotation % len(runnable)]
        self._rotation += 1
        return pid


#: Episode rotation order: episode ``i`` runs family ``i % len(...)``.
#: Lockstep first so the Theorem 3.4 template fires in episode 0.
STRATEGY_FAMILIES: Tuple[str, ...] = (
    "lockstep",
    "random",
    "greedy",
    "covering",
)

_BUILDERS = {
    "random": PureRandomStrategy,
    "greedy": TelemetryGreedyStrategy,
    "lockstep": LockstepStrategy,
    "covering": CoveringStrategy,
}


def build_strategy(family: str, rng: random.Random) -> Strategy:
    """A fresh strategy instance for one episode."""
    try:
        builder = _BUILDERS[family]
    except KeyError:
        raise FuzzError(
            f"unknown strategy family {family!r}; "
            f"expected one of {list(_BUILDERS)}"
        ) from None
    return builder(rng)
