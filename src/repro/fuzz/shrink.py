"""Schedule shrinking and the pure-kernel violation oracles.

A fuzz hit arrives as a raw schedule (hundreds of steps of whatever the
strategy happened to do); what ships in a report must be the *minimal*
schedule that still exhibits the violation, because minimal schedules
are what humans read and what regression tests replay.  This module
holds both halves of that contract:

* the **oracles** — pure :func:`~repro.runtime.kernel.step_value` walks
  that decide whether a schedule (or a prefix+cycle lasso) exhibits a
  safety violation, a fair non-progress cycle (deadlock-freedom, the
  conditions of ``repro.verify``'s lasso validator) or a solo livelock
  (obstruction-freedom).  The engine uses them to confirm candidate
  hits; the shrinker uses them as the predicate to preserve;
* the **shrinkers** — ddmin-style chunk removal over schedules
  (:func:`shrink_safety`) and a cycle-aware reduction for lassos
  (:func:`shrink_lasso`: collapse the cycle to its minimal repeating
  unit, drop cycle chunks, then ddmin the prefix while re-checking the
  cycle from wherever the shorter prefix lands).

Everything here is deterministic — no RNG, no wall clock — so shrunk
schedules are reproducible artefacts of the (seed, episode) that found
them.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.errors import ProtocolError, SchedulingError
from repro.runtime.kernel import (
    GlobalState,
    StepInstance,
    solo_run_value,
    step_value,
)
from repro.types import ProcessId

__all__ = [
    "replay_values",
    "safety_message",
    "cycle_is_df_violation",
    "cycle_is_of_violation",
    "shrink_safety",
    "shrink_lasso",
]

Schedule = Tuple[ProcessId, ...]


# -- oracles -----------------------------------------------------------

def replay_values(
    instance: StepInstance,
    initial: GlobalState,
    schedule: Sequence[ProcessId],
) -> Optional[GlobalState]:
    """Walk ``schedule`` through the pure kernel; ``None`` if infeasible
    (a step targets a halted/crashed process or is otherwise rejected —
    the state shrinking has to avoid creating)."""
    state = initial
    for pid in schedule:
        try:
            state = step_value(instance, state, pid)
        except (SchedulingError, ProtocolError):
            return None
    return state


class CsPredicates:
    """Memoised ``in_critical_section``/``phase`` over local states.

    The fuzzer's copy of the predicate pair the deadlock-freedom
    analysis uses (mutex-style automata only); ``supported`` reports
    whether every automaton exposes both hooks.
    """

    def __init__(self, instance: StepInstance) -> None:
        self._instance = instance
        self.supported = all(
            hasattr(a, "in_critical_section") and hasattr(a, "phase")
            for a in instance.automata.values()
        )
        self._in_cs: Dict[Tuple[ProcessId, object], bool] = {}
        self._phase: Dict[Tuple[ProcessId, object], str] = {}

    def in_cs(self, state: GlobalState, pid: ProcessId) -> bool:
        local = self._instance.slot_entry(state, pid)[1]
        key = (pid, local)
        cached = self._in_cs.get(key)
        if cached is None:
            cached = self._instance.automata[pid].in_critical_section(local)
            self._in_cs[key] = cached
        return cached

    def phase(self, state: GlobalState, pid: ProcessId) -> str:
        local = self._instance.slot_entry(state, pid)[1]
        key = (pid, local)
        cached = self._phase.get(key)
        if cached is None:
            cached = self._instance.automata[pid].phase(local)
            self._phase[key] = cached
        return cached


def _live_pids(
    instance: StepInstance, state: GlobalState
) -> Tuple[ProcessId, ...]:
    locals_part = state[1]
    return tuple(
        pid
        for pid in instance.pid_order
        if not (
            locals_part[instance.slot_of[pid]][2]
            or locals_part[instance.slot_of[pid]][3]
        )
    )


def cycle_is_df_violation(
    instance: StepInstance,
    entry: GlobalState,
    cycle: Sequence[ProcessId],
    predicates: CsPredicates,
) -> bool:
    """Whether ``cycle`` from ``entry`` is a fair non-progress cycle.

    The exact conditions ``repro.verify``'s lasso validator re-checks:
    the cycle closes back to ``entry``; every live process steps in it
    (fairness); no step is a critical-section *entry* (non-progress);
    and some live process is in its entry section at ``entry`` (someone
    is actually trying).  Sound: on a deadlock-free instance no cycle
    can satisfy all four, so the fuzzer cannot report a false positive.
    """
    if not cycle or not predicates.supported:
        return False
    live = _live_pids(instance, entry)
    if not live or not set(live) <= set(cycle):
        return False
    if not any(predicates.phase(entry, pid) == "entry" for pid in live):
        return False
    state = entry
    for pid in cycle:
        try:
            successor = step_value(instance, state, pid)
        except (SchedulingError, ProtocolError):
            return False
        if not predicates.in_cs(state, pid) and predicates.in_cs(
            successor, pid
        ):
            return False  # progress edge: someone got in
        state = successor
    return state == entry


def cycle_is_of_violation(
    instance: StepInstance,
    entry: GlobalState,
    cycle: Sequence[ProcessId],
) -> bool:
    """Whether ``cycle`` is a solo livelock (obstruction-freedom hit):
    a single live process runs the whole cycle alone and returns to
    ``entry`` without settling."""
    if not cycle or len(set(cycle)) != 1:
        return False
    pid = cycle[0]
    if pid not in _live_pids(instance, entry):
        return False
    final, steps, settled = solo_run_value(instance, entry, pid, len(cycle))
    return not settled and steps == len(cycle) and final == entry


def safety_message(
    instance: StepInstance,
    initial: GlobalState,
    schedule: Sequence[ProcessId],
    invariant: Callable[..., Optional[str]],
) -> Optional[str]:
    """The invariant's violation message at the end of ``schedule``
    (``None`` when the schedule is infeasible or the final state is
    clean)."""
    from repro.runtime.kernel import StateView

    state = replay_values(instance, initial, schedule)
    if state is None:
        return None
    return invariant(StateView(instance, state))


# -- ddmin -------------------------------------------------------------

def _ddmin(
    sequence: Schedule, predicate: Callable[[Schedule], bool]
) -> Schedule:
    """Classic delta-debugging minimisation: greedily drop chunks of
    halving granularity while ``predicate`` stays true.  ``predicate``
    must already hold for ``sequence``."""
    granularity = 2
    while len(sequence) >= 2:
        size = max(1, len(sequence) // granularity)
        reduced = False
        start = 0
        while start < len(sequence):
            candidate = sequence[:start] + sequence[start + size:]
            if candidate != sequence and predicate(candidate):
                sequence = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
            start += size
        if not reduced:
            if size <= 1:
                break
            granularity = min(len(sequence), granularity * 2)
    return sequence


# -- the shrinkers -----------------------------------------------------

def shrink_safety(
    instance: StepInstance,
    initial: GlobalState,
    schedule: Sequence[ProcessId],
    invariant: Callable[..., Optional[str]],
) -> Schedule:
    """A minimal feasible schedule whose final state still violates
    ``invariant`` (any violation message counts — shrinking may land on
    a different, smaller witness of the same property)."""

    def still_violates(candidate: Schedule) -> bool:
        return safety_message(instance, initial, candidate, invariant) is not None

    return _ddmin(tuple(schedule), still_violates)


def _minimal_repeating_unit(
    cycle: Schedule, valid: Callable[[Schedule], bool]
) -> Schedule:
    """The shortest prefix ``u`` with ``cycle == u * k`` that is itself
    a valid cycle (lockstep livelocks are long powers of one round)."""
    length = len(cycle)
    for unit_len in range(1, length):
        if length % unit_len:
            continue
        unit = cycle[:unit_len]
        if unit * (length // unit_len) == cycle and valid(unit):
            return unit
    return cycle


def shrink_lasso(
    instance: StepInstance,
    initial: GlobalState,
    prefix: Sequence[ProcessId],
    cycle: Sequence[ProcessId],
    kind: str,
    predicates: CsPredicates,
) -> Tuple[Schedule, Schedule]:
    """Minimise a liveness lasso, preserving its violation ``kind``
    (``"deadlock-freedom"`` or ``"obstruction-freedom"``).

    Cycle first (entry state fixed): collapse to the minimal repeating
    unit, then ddmin chunks out of it.  Then the prefix: ddmin with the
    predicate "still feasible *and* the cycle still violates from the
    state this prefix reaches" — a shorter prefix may legitimately land
    on a different entry state of the same recurrent class.
    """
    prefix = tuple(prefix)
    cycle = tuple(cycle)

    def cycle_valid_from(entry: GlobalState, candidate: Schedule) -> bool:
        if kind == "deadlock-freedom":
            return cycle_is_df_violation(instance, entry, candidate, predicates)
        return cycle_is_of_violation(instance, entry, candidate)

    entry = replay_values(instance, initial, prefix)
    assert entry is not None, "lasso prefix must be feasible"
    cycle = _minimal_repeating_unit(
        cycle, lambda unit: cycle_valid_from(entry, unit)
    )
    cycle = _ddmin(cycle, lambda unit: cycle_valid_from(entry, unit))

    def prefix_ok(candidate: Schedule) -> bool:
        reached = replay_values(instance, initial, candidate)
        return reached is not None and cycle_valid_from(reached, cycle)

    prefix = _ddmin(prefix, prefix_ok) if prefix else prefix
    # ddmin bottoms out at one element; a zero-length prefix is common
    # (livelocks reachable from the initial state), so try it explicitly.
    if prefix and prefix_ok(()):
        prefix = ()
    return prefix, cycle
