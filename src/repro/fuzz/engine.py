"""The fuzz engine: seeded episodes, two kernels, certified hits.

One *episode* = one strategy instance driving one schedule from the
initial state, up to ``max_steps`` steps.  The engine watches every
state along the way:

* the spec's **safety invariant** — a violation message is a safety
  hit, witnessed by the whole schedule so far;
* **state revisits** — a revisit closes a candidate lasso
  ``(prefix, cycle)``; the oracles in :mod:`repro.fuzz.shrink` decide
  whether the cycle is a fair non-progress cycle (deadlock-freedom) or
  a solo livelock (obstruction-freedom).  The oracles re-check the
  exact conditions the exhaustive verifier's lasso validator enforces,
  so they cannot produce a false positive on a correct instance.

Every hit is shrunk (:mod:`repro.fuzz.shrink`) and then *certified*:
replayed through :func:`repro.runtime.replay.replay_schedule` on a
freshly built system, re-exhibiting the claimed violation.  A hit that
fails certification raises :class:`~repro.errors.FuzzError` — it is a
fuzzer bug, never a result.

Determinism: episode ``i`` of family ``f`` seeds its own
``random.Random`` from ``blake2b(f"{seed}:{i}:{f}")`` — independent of
``PYTHONHASHSEED``, stable across shards (farm cells pass
``episode_base``), and kernel-independent.  The compiled kernel steps
packed states (:mod:`repro.runtime.compiled`); packing is a bijection
on the reachable closure, so revisit positions — and therefore
schedules, hits and shrunk witnesses — are byte-identical to the
interpreted kernel's (pinned by ``tests/fuzz/test_differential.py``).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError, FuzzError
from repro.fuzz.shrink import (
    CsPredicates,
    cycle_is_df_violation,
    cycle_is_of_violation,
    shrink_lasso,
    shrink_safety,
)
from repro.fuzz.strategies import (
    STRATEGY_FAMILIES,
    FuzzContext,
    build_strategy,
)
from repro.request import RunRequest
from repro.runtime.kernel import (
    GlobalState,
    StateView,
    StepInstance,
    step_value,
)
from repro.runtime.ops import ReadOp, WriteOp
from repro.types import ProcessId

__all__ = [
    "FuzzViolation",
    "FuzzReport",
    "run_fuzz",
    "episode_seed",
]

#: Per-episode schedule budget when the request does not pin one.
DEFAULT_MAX_STEPS = 256

#: Episode budget when the caller does not pin one.
DEFAULT_EPISODES = 64

Schedule = Tuple[ProcessId, ...]


def episode_seed(seed: int, episode: int, family: str) -> int:
    """The derived RNG seed of one episode.

    blake2b rather than ``hash()``: independent of PYTHONHASHSEED, so
    the same (seed, episode, family) triple replays anywhere.
    """
    digest = hashlib.blake2b(
        f"{seed}:{episode}:{family}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


@dataclass(frozen=True)
class FuzzViolation:
    """One certified violation: raw witness plus its shrunk form.

    For ``kind == "safety"`` the witness is ``schedule`` (the final
    state violates the invariant) and the lasso fields are empty; for
    the liveness kinds the witness is ``prefix`` + ``cycle`` repeated
    forever, and ``schedule == prefix + cycle`` for convenience.  The
    shrunk fields are what reports and regression tests should replay.
    """

    kind: str  # "safety" | "deadlock-freedom" | "obstruction-freedom"
    family: str
    episode: int
    message: str
    schedule: Schedule
    prefix: Schedule = ()
    cycle: Schedule = ()
    shrunk_schedule: Schedule = ()
    shrunk_prefix: Schedule = ()
    shrunk_cycle: Schedule = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "family": self.family,
            "episode": self.episode,
            "message": self.message,
            "schedule": list(self.schedule),
            "prefix": list(self.prefix),
            "cycle": list(self.cycle),
            "shrunk_schedule": list(self.shrunk_schedule),
            "shrunk_prefix": list(self.shrunk_prefix),
            "shrunk_cycle": list(self.shrunk_cycle),
        }


@dataclass
class FuzzReport:
    """The outcome of one fuzz run (JSON-able via :meth:`to_dict`)."""

    problem: str
    instance: str
    kernel: str
    effective_kernel: str
    seed: int
    episode_base: int
    episodes: int
    max_steps: int
    families: Tuple[str, ...]
    episodes_run: int = 0
    steps: int = 0
    distinct_states: int = 0
    truncated_by: Optional[str] = None
    violations: List[FuzzViolation] = field(default_factory=list)

    @property
    def found(self) -> bool:
        return bool(self.violations)

    def by_family(self) -> Dict[str, int]:
        """Violation counts per strategy family (zero rows included)."""
        counts = {family: 0 for family in self.families}
        for violation in self.violations:
            counts[violation.family] = counts.get(violation.family, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, Any]:
        return {
            "problem": self.problem,
            "instance": self.instance,
            "kernel": self.kernel,
            "effective_kernel": self.effective_kernel,
            "seed": self.seed,
            "episode_base": self.episode_base,
            "episodes": self.episodes,
            "max_steps": self.max_steps,
            "families": list(self.families),
            "episodes_run": self.episodes_run,
            "steps": self.steps,
            "distinct_states": self.distinct_states,
            "truncated_by": self.truncated_by,
            "violations": [v.to_dict() for v in self.violations],
            "violations_by_family": self.by_family(),
        }


# -- steppers ----------------------------------------------------------
#
# Both kernels expose the same five operations; their state keys differ
# (value tuples vs packed index tuples) but are bijective over the
# reachable closure, so revisit bookkeeping is kernel-independent.

class _InterpretedStepper:
    kernel = "interpreted"

    def __init__(
        self,
        instance: StepInstance,
        initial: GlobalState,
        invariant: Optional[Callable[..., Optional[str]]],
    ) -> None:
        self.instance = instance
        self.initial = initial
        self._invariant = invariant

    def step(self, state: GlobalState, pid: ProcessId) -> GlobalState:
        return step_value(self.instance, state, pid)

    def enabled(self, state: GlobalState) -> Tuple[ProcessId, ...]:
        locals_part = state[1]
        slot_of = self.instance.slot_of
        return tuple(
            pid
            for pid in self.instance.pid_order
            if not (
                locals_part[slot_of[pid]][2] or locals_part[slot_of[pid]][3]
            )
        )

    def check(self, state: GlobalState) -> Optional[str]:
        if self._invariant is None:
            return None
        return self._invariant(StateView(self.instance, state))

    def pending_physical(
        self, state: GlobalState, pid: ProcessId
    ) -> Optional[int]:
        local = self.instance.slot_entry(state, pid)[1]
        try:
            op = self.instance.automata[pid].next_op(local)
        except Exception:  # noqa: BLE001 — poison ops surface on step
            return None
        if isinstance(op, (ReadOp, WriteOp)):
            perm = self.instance.permutations[pid]
            if 0 <= op.index < len(perm):
                return perm[op.index]
        return None

    def to_value_state(self, state: GlobalState) -> GlobalState:
        return state


class _CompiledStepper:
    kernel = "compiled"

    def __init__(
        self,
        program: Any,
        invariant: Optional[Callable[..., Optional[str]]],
    ) -> None:
        from repro.runtime.compiled import compile_checker

        self.instance = program.instance
        self.program = program
        self.initial = program.initial_packed
        self._checker = (
            compile_checker(invariant, program)
            if invariant is not None
            else None
        )

    def step(self, packed: Tuple[int, ...], pid: ProcessId) -> Tuple[int, ...]:
        return self.program.step_packed(
            packed, self.instance.slot_of[pid]
        )

    def enabled(self, packed: Tuple[int, ...]) -> Tuple[ProcessId, ...]:
        program = self.program
        return tuple(
            pid
            for pid, slot, offset in program.step_order
            if not (
                program.halted[slot][packed[offset]] or program.crashed[slot]
            )
        )

    def check(self, packed: Tuple[int, ...]) -> Optional[str]:
        if self._checker is None:
            return None
        return self._checker(packed)

    def pending_physical(
        self, packed: Tuple[int, ...], pid: ProcessId
    ) -> Optional[int]:
        from repro.runtime.compiled import OP_READ, OP_WRITE

        program = self.program
        slot = self.instance.slot_of[pid]
        si = packed[program.m + slot]
        if program.kind[slot][si] in (OP_READ, OP_WRITE):
            return program.arg[slot][si]
        return None

    def to_value_state(self, packed: Tuple[int, ...]) -> GlobalState:
        return self.program.unpack(packed)


# -- the engine --------------------------------------------------------

def _build_stepper(
    spec: Any,
    instance: StepInstance,
    initial: GlobalState,
    invariant: Optional[Callable[..., Optional[str]]],
    kernel: str,
    params: Dict[str, Any],
) -> Any:
    if kernel == "interpreted":
        return _InterpretedStepper(instance, initial, invariant)
    from repro.runtime.compiled import CompileOverflow, compile_program

    domain_hint: Sequence[Any] = ()
    if spec.value_domain is not None:
        domain_hint = spec.value_domain(params)
    try:
        program = compile_program(instance, initial, domain_hint=domain_hint)
    except CompileOverflow:
        # Same fallback contract as CompiledBackend: outside the
        # enumerable envelope the interpreted kernel takes over; the
        # report records the effective kernel.
        return _InterpretedStepper(instance, initial, invariant)
    return _CompiledStepper(program, invariant)


def run_fuzz(
    request: RunRequest,
    *,
    episodes: int = DEFAULT_EPISODES,
    episode_base: int = 0,
    families: Optional[Sequence[str]] = None,
    max_violations: Optional[int] = None,
    shrink: bool = True,
    validate: bool = True,
) -> FuzzReport:
    """Fuzz one registry instance per ``request``; see module docstring.

    ``request`` carries the target (``problem``/``instance``/``params``),
    the root ``seed`` (default 0), the per-episode ``max_steps`` budget,
    the step ``kernel`` and an optional ``max_states`` cap on distinct
    states visited across the whole run (the run stops early with
    ``truncated_by="max_states"`` when it trips).  ``episode_base``
    offsets the global episode numbering so farm cells sharding one run
    reproduce exactly the episodes a one-shot run would execute.
    """
    from repro.obs.telemetry import NULL_TELEMETRY

    if isinstance(request.backend, str) and request.backend != "serial":
        raise ConfigurationError(
            f"fuzzing is serial per episode; got backend "
            f"{request.backend!r} (use workers= to shard episodes "
            "across farm cells)"
        )
    if episodes < 0:
        raise FuzzError(f"episodes must be >= 0, got {episodes}")
    spec, instance_record = request.resolve()
    kernel = request.kernel or "interpreted"
    seed = request.seed if request.seed is not None else 0
    max_steps = request.max_steps or DEFAULT_MAX_STEPS
    telemetry = request.telemetry or NULL_TELEMETRY

    families = tuple(families or STRATEGY_FAMILIES)
    for family in families:
        build_strategy(family, random.Random(0))  # validate names early

    system = spec.system(instance_record)
    instance = StepInstance.from_system(system)
    initial = system.scheduler.capture_state()
    params = instance_record.params_dict()
    stepper = _build_stepper(
        spec, instance, initial, spec.invariant, kernel, params
    )
    predicates = CsPredicates(instance)
    liveness_kinds = {prop.kind for prop in spec.liveness}
    theorem_of = {prop.kind: prop.theorem for prop in spec.liveness}
    check_df = "deadlock-freedom" in liveness_kinds and predicates.supported
    check_of = "obstruction-freedom" in liveness_kinds

    report = FuzzReport(
        problem=spec.key,
        instance=instance_record.label,
        kernel=kernel,
        effective_kernel=stepper.kernel,
        seed=seed,
        episode_base=episode_base,
        episodes=episodes,
        max_steps=max_steps,
        families=families,
    )
    if telemetry.enabled:
        telemetry.event(
            "fuzz.start",
            problem=spec.key,
            instance=instance_record.label,
            kernel=stepper.kernel,
            seed=seed,
            episodes=episodes,
        )

    coverage: Set[Any] = set()
    pid_count = len(instance.pid_order)
    for episode in range(episode_base, episode_base + episodes):
        if request.max_states is not None and len(coverage) >= request.max_states:
            report.truncated_by = "max_states"
            break
        if max_violations is not None and len(report.violations) >= max_violations:
            break
        family = families[episode % len(families)]
        rng = random.Random(episode_seed(seed, episode, family))
        strategy = build_strategy(family, rng)
        report.episodes_run += 1

        state = stepper.initial
        coverage.add(state)
        seen: Dict[Any, int] = {state: 0}
        schedule: List[ProcessId] = []
        contention: Dict[ProcessId, int] = {}
        last_accessor: Dict[int, ProcessId] = {}

        for step_index in range(max_steps):
            enabled = stepper.enabled(state)
            if not enabled:
                break  # everyone settled: nothing left to schedule
            pending = {
                pid: stepper.pending_physical(state, pid) for pid in enabled
            }
            pid = strategy.choose(
                FuzzContext(
                    enabled=enabled,
                    step_index=step_index,
                    pending=pending,
                    contention=contention,
                    halted=pid_count - len(enabled),
                )
            )
            if pid is None:
                break  # strategy surrendered (e.g. broken lockstep)
            physical = pending[pid]
            state = stepper.step(state, pid)
            schedule.append(pid)
            report.steps += 1
            if physical is not None:
                previous = last_accessor.get(physical)
                if previous is not None and previous != pid:
                    contention[pid] = contention.get(pid, 0) + 1
                last_accessor[physical] = pid

            message = stepper.check(state)
            if message is not None:
                report.violations.append(
                    _certify_safety(
                        spec, instance_record, instance, initial,
                        family, episode, tuple(schedule), message,
                        shrink=shrink, validate=validate,
                    )
                )
                break

            position = seen.get(state)
            if position is None:
                seen[state] = len(schedule)
                coverage.add(state)
                continue
            # Revisit: candidate lasso (prefix=schedule[:j], cycle=rest).
            cycle = tuple(schedule[position:])
            entry = stepper.to_value_state(state)
            hit_kind: Optional[str] = None
            if check_df and cycle_is_df_violation(
                instance, entry, cycle, predicates
            ):
                hit_kind = "deadlock-freedom"
            elif check_of and cycle_is_of_violation(instance, entry, cycle):
                hit_kind = "obstruction-freedom"
            if hit_kind is None:
                # Benign cycle; slide the window so the next revisit
                # yields the shortest (most recent) candidate.
                seen[state] = len(schedule)
                continue
            report.violations.append(
                _certify_lasso(
                    spec, instance_record, instance, initial,
                    family, episode, tuple(schedule[:position]), cycle,
                    hit_kind, theorem_of[hit_kind], predicates,
                    shrink=shrink, validate=validate,
                )
            )
            break

    report.distinct_states = len(coverage)
    if telemetry.enabled:
        telemetry.gauge("fuzz.episodes", report.episodes_run)
        telemetry.gauge("fuzz.steps", report.steps)
        telemetry.gauge("fuzz.distinct_states", report.distinct_states)
        telemetry.event(
            "fuzz.done",
            violations=len(report.violations),
            truncated_by=report.truncated_by,
        )
    return report


# -- certification -----------------------------------------------------

def _certify_safety(
    spec: Any,
    instance_record: Any,
    instance: StepInstance,
    initial: GlobalState,
    family: str,
    episode: int,
    schedule: Schedule,
    message: str,
    shrink: bool,
    validate: bool,
) -> FuzzViolation:
    shrunk = (
        shrink_safety(instance, initial, schedule, spec.invariant)
        if shrink
        else schedule
    )
    violation = FuzzViolation(
        kind="safety",
        family=family,
        episode=episode,
        message=message,
        schedule=schedule,
        shrunk_schedule=shrunk,
    )
    if validate:
        _validate_safety(spec, instance_record, violation)
    return violation


def _certify_lasso(
    spec: Any,
    instance_record: Any,
    instance: StepInstance,
    initial: GlobalState,
    family: str,
    episode: int,
    prefix: Schedule,
    cycle: Schedule,
    kind: str,
    theorem: str,
    predicates: CsPredicates,
    shrink: bool,
    validate: bool,
) -> FuzzViolation:
    if shrink:
        shrunk_prefix, shrunk_cycle = shrink_lasso(
            instance, initial, prefix, cycle, kind, predicates
        )
    else:
        shrunk_prefix, shrunk_cycle = prefix, cycle
    if kind == "deadlock-freedom":
        message = (
            f"fair non-progress cycle of length {len(shrunk_cycle)} after "
            f"a {len(shrunk_prefix)}-step prefix: every live process "
            f"steps, none enters the critical section ({theorem})"
        )
    else:
        message = (
            f"solo livelock: process {shrunk_cycle[0]} cycles every "
            f"{len(shrunk_cycle)} steps without settling, after a "
            f"{len(shrunk_prefix)}-step prefix ({theorem})"
        )
    violation = FuzzViolation(
        kind=kind,
        family=family,
        episode=episode,
        message=message,
        schedule=prefix + cycle,
        prefix=prefix,
        cycle=cycle,
        shrunk_schedule=shrunk_prefix + shrunk_cycle,
        shrunk_prefix=shrunk_prefix,
        shrunk_cycle=shrunk_cycle,
    )
    if validate:
        _validate_lasso(spec, instance_record, instance, violation, predicates)
    return violation


def _validate_safety(
    spec: Any, instance_record: Any, violation: FuzzViolation
) -> None:
    """Replay the shrunk schedule on a fresh system; the claimed
    invariant violation must reappear."""
    from repro.runtime.replay import replay_schedule

    system = spec.system(instance_record, record_trace=True)
    trace = replay_schedule(system, list(violation.shrunk_schedule))
    if len(trace.events) != len(violation.shrunk_schedule):
        raise FuzzError(
            f"safety witness did not replay: {len(trace.events)} of "
            f"{len(violation.shrunk_schedule)} steps executed"
        )
    message = spec.invariant(system)
    if message is None:
        raise FuzzError(
            "safety witness replayed clean; the fuzzer's invariant check "
            "and the live system disagree"
        )


def _validate_lasso(
    spec: Any,
    instance_record: Any,
    instance: StepInstance,
    violation: FuzzViolation,
    predicates: CsPredicates,
) -> None:
    """Replay prefix and prefix+cycle on fresh systems; the cycle must
    close back to the prefix's end state and the oracle must still hold
    there."""
    from repro.runtime.replay import replay_schedule

    prefix = list(violation.shrunk_prefix)
    cycle = list(violation.shrunk_cycle)

    entry_system = spec.system(instance_record, record_trace=True)
    entry_trace = replay_schedule(entry_system, prefix)
    if len(entry_trace.events) != len(prefix):
        raise FuzzError("lasso prefix did not replay on a fresh system")
    entry = entry_system.scheduler.capture_state()

    closed_system = spec.system(instance_record, record_trace=True)
    closed_trace = replay_schedule(closed_system, prefix + cycle)
    if len(closed_trace.events) != len(prefix) + len(cycle):
        raise FuzzError("lasso cycle did not replay on a fresh system")
    if closed_system.scheduler.capture_state() != entry:
        raise FuzzError("lasso cycle does not close back to its entry state")

    holds = (
        cycle_is_df_violation(instance, entry, tuple(cycle), predicates)
        if violation.kind == "deadlock-freedom"
        else cycle_is_of_violation(instance, entry, tuple(cycle))
    )
    if not holds:
        raise FuzzError(
            f"replayed lasso no longer satisfies the "
            f"{violation.kind} violation conditions"
        )
