"""Seeded adversary-strategy fuzzing (``python -m repro fuzz``).

Exhaustive verification (:mod:`repro.verify`) owns the soundness story:
it quantifies over *every* schedule of an instance and is therefore the
final word on whether a property holds.  The fuzzer owns the opposite
trade: it samples schedules from adversary *strategy families* —
pure-random, telemetry-greedy, lockstep and covering-style templates —
and hunts for violations far beyond the state budgets an exhaustive
walk can afford.  Its verdicts are one-sided by construction: a hit is
always certified (replayed through
:func:`repro.runtime.replay.replay_schedule` and shrunk to a minimal
schedule) while a clean run proves nothing.

Everything is driven by one root seed: episode ``i`` of family ``f``
derives its own :class:`random.Random` from ``(seed, i, f)``, so runs
are reproducible step-for-step, shard cleanly across farm cells
(:mod:`repro.farm`), and produce byte-identical schedules under the
interpreted and table-compiled step kernels.

See ``docs/FUZZING.md`` for the strategy families, the seed/replay
contract and shrink semantics.
"""

from repro.fuzz.engine import FuzzReport, FuzzViolation, run_fuzz
from repro.fuzz.shrink import shrink_lasso, shrink_safety
from repro.fuzz.strategies import STRATEGY_FAMILIES, build_strategy

__all__ = [
    "FuzzReport",
    "FuzzViolation",
    "run_fuzz",
    "shrink_safety",
    "shrink_lasso",
    "STRATEGY_FAMILIES",
    "build_strategy",
]
