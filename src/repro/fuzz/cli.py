"""``python -m repro fuzz`` — the fuzzer's command-line surface.

One-shot mode runs :func:`~repro.fuzz.engine.run_fuzz` in-process and
prints each certified violation with its shrunk witness.  With
``--out DIR`` the episode budget is sharded into *fuzz cells* of a
disk-backed farm (:mod:`repro.farm`): the run table persists episode
ranges, ``--workers N`` drains them with claiming processes, and a
killed run restarts with ``--resume DIR`` exactly where it stopped —
episodes are globally numbered, so a resumed farm's results are
byte-identical to an uninterrupted one's.

Exit status: ``0`` when the run matches expectation (no violations
found, or — with ``--expect-violation``, the mutant-hunting mode CI
uses — at least one found), ``1`` otherwise, ``2`` for usage errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.cliflags import (
    add_backend_flag,
    add_kernel_flag,
    add_max_states_flag,
    add_seed_flag,
    add_workers_flag,
    rejection_message,
)

__all__ = ["fuzz_main", "aggregate_fuzz_rows"]

#: Episodes per farm cell; small enough that a grid spreads across
#: workers, large enough that claim overhead stays negligible.
DEFAULT_EPISODES_PER_CELL = 8


def _parse_params(
    parser: argparse.ArgumentParser, items: Optional[Sequence[str]]
) -> Optional[Dict[str, Any]]:
    if items is None:
        return None
    params: Dict[str, Any] = {}
    for item in items:
        key, sep, value = item.partition("=")
        if not sep:
            parser.error(f"--param needs K=V, got {item!r}")
        try:
            params[key] = int(value)
        except ValueError:
            params[key] = value
    return params


def aggregate_fuzz_rows(rows: Sequence[Any]) -> Dict[str, Any]:
    """Merge done fuzz cells' results into one run-level summary.

    Cells are merged in episode order, so the violation list is exactly
    the one a one-shot run over the same episode range reports.
    ``distinct_states`` sums per-cell coverage (cells do not share seen
    sets, so the sum over-counts states reached in several cells).
    """
    results = sorted(
        (row.result for row in rows if row.status == "done" and row.result),
        key=lambda result: result.get("episode_base", 0),
    )
    summary: Dict[str, Any] = {
        "episodes_run": sum(r.get("episodes_run", 0) for r in results),
        "steps": sum(r.get("steps", 0) for r in results),
        "distinct_states": sum(r.get("distinct_states", 0) for r in results),
        "violations": [v for r in results for v in r.get("violations", [])],
    }
    by_family: Dict[str, int] = {}
    for result in results:
        for family, count in (result.get("violations_by_family") or {}).items():
            by_family[family] = by_family.get(family, 0) + count
    summary["violations_by_family"] = by_family
    return summary


def _print_violations(violations: Sequence[Dict[str, Any]]) -> None:
    for violation in violations:
        print(
            f"[HIT] {violation['kind']} via {violation['family']} "
            f"(episode {violation['episode']}): {violation['message']}"
        )
        if violation["kind"] == "safety":
            print(f"      shrunk schedule: {violation['shrunk_schedule']}")
        else:
            print(
                f"      shrunk lasso: prefix {violation['shrunk_prefix']}, "
                f"then repeat {violation['shrunk_cycle']} forever "
                "(replayable via repro.runtime.replay.replay_schedule)"
            )


def _write_fuzz_manifest(
    directory: str, report: Any, telemetry_snapshot: Dict[str, Any]
) -> None:
    import re
    from pathlib import Path

    from repro.obs.manifest import RunManifest

    outcome = report.to_dict()
    manifest = RunManifest.create(
        kind="fuzz",
        algorithm=report.problem,
        parameters={
            "instance": report.instance,
            "seed": report.seed,
            "episodes": report.episodes,
            "episode_base": report.episode_base,
            "max_steps": report.max_steps,
            "kernel": report.effective_kernel,
            "families": list(report.families),
        },
        adversary=f"fuzz:{'+'.join(report.families)}",
        backend="serial",
        workers=1,
        outcome=outcome,
        telemetry=telemetry_snapshot,
    )
    slug = re.sub(r"[^a-z0-9]+", "-", report.instance.lower()).strip("-")
    manifest.write(Path(directory) / f"fuzz-{slug}-seed{report.seed}.json")


def fuzz_main(argv: Sequence[str]) -> int:
    from repro.errors import ReproError
    from repro.fuzz.strategies import STRATEGY_FAMILIES

    parser = argparse.ArgumentParser(
        prog="python -m repro fuzz",
        description="Seeded adversary-strategy fuzzing over registry "
        "instances: strategy families (lockstep, random, greedy, "
        "covering) drive the step kernel hunting safety violations and "
        "livelock lassos; every hit is shrunk to a minimal schedule and "
        "certified by replaying it on a fresh system.  A clean run "
        "proves nothing — exhaustive guarantees live in `repro verify`.",
    )
    parser.add_argument("--problem", metavar="KEY", default=None,
                        help="problem registry key (e.g. figure-1-mutex)")
    parser.add_argument("--instance", metavar="LABEL", default=None,
                        help="instance label of the problem, or a mutant "
                        "problem key (e.g. figure-1-mutex-even-m)")
    parser.add_argument("--param", action="append", default=None,
                        metavar="K=V",
                        help="explicit builder parameter (repeatable; "
                        "mutually exclusive with --instance)")
    add_seed_flag(parser)
    add_kernel_flag(parser)
    add_backend_flag(
        parser,
        help_text="execution backend (fuzz episodes are serial; "
        "'parallel' is rejected — shard episodes with --workers)",
    )
    add_workers_flag(parser, default=1,
                     help_text="claiming worker processes draining fuzz "
                     "cells (needs --out/--resume)")
    add_max_states_flag(parser, help_text="stop once this many distinct "
                        "states have been visited across all episodes")
    parser.add_argument("--episodes", type=int, default=64, metavar="N",
                        help="episode budget (default: %(default)s)")
    parser.add_argument("--max-steps", type=int, default=256, metavar="N",
                        help="schedule budget per episode "
                        "(default: %(default)s)")
    parser.add_argument("--max-violations", type=int, default=None,
                        metavar="N",
                        help="stop after N certified violations")
    parser.add_argument("--families", default=None, metavar="CSV",
                        help="comma-separated strategy families "
                        f"(default: {','.join(STRATEGY_FAMILIES)})")
    parser.add_argument("--expect-violation", action="store_true",
                        help="invert the exit status: 0 iff a violation "
                        "was found (mutant smoke tests)")
    parser.add_argument("--telemetry", metavar="DIR", default=None,
                        help="write a kind='fuzz' run manifest into DIR "
                        "(readable by `python -m repro report DIR`)")
    parser.add_argument("--out", metavar="DIR", default=None,
                        help="shard episodes into a farm directory and "
                        "drain it")
    parser.add_argument("--resume", metavar="DIR", default=None,
                        help="reclaim a killed fuzz farm and drain the rest")
    parser.add_argument("--episodes-per-cell", type=int,
                        default=DEFAULT_EPISODES_PER_CELL, metavar="N",
                        help="episodes per farm cell with --out "
                        "(default: %(default)s)")
    parser.add_argument("--max-attempts", type=int, default=None, metavar="N",
                        help="per-cell retry budget for transient cell "
                        "failures (default: 1 — errors stay terminal)")
    args = parser.parse_args(list(argv))

    if args.backend != "serial":
        parser.error(
            rejection_message(
                f"--backend {args.backend}", "fuzz",
                "episodes are serial by construction; shard them across "
                "farm cells with --workers",
            )
        )
    families = None
    if args.families is not None:
        families = [f.strip() for f in args.families.split(",") if f.strip()]

    if args.out is not None or args.resume is not None:
        # Cells run independently — a global early-stop cannot be
        # coordinated across them, and each cell already appends its own
        # kind='fuzz' manifest into the farm directory.
        if args.max_violations is not None:
            parser.error("--max-violations is one-shot only; farm cells "
                         "run their full episode range")
        if args.telemetry is not None:
            parser.error("--telemetry is one-shot only; farm cells write "
                         "kind='fuzz' manifests into the farm directory")
    if args.resume is not None:
        return _farm_resume(parser, args)
    if args.problem is None:
        parser.error("--problem is required (unless resuming)")
    if args.param is not None and args.instance is not None:
        parser.error("pass either --param or --instance, not both")
    params = _parse_params(parser, args.param)

    if args.out is not None:
        return _farm_create(parser, args, params, families)

    if args.workers not in (None, 1):
        parser.error("--workers needs a shared run table; add --out DIR")

    from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
    from repro.request import RunRequest

    telemetry = Telemetry() if args.telemetry else NULL_TELEMETRY
    try:
        from repro.fuzz.engine import run_fuzz

        report = run_fuzz(
            RunRequest(
                problem=args.problem,
                instance=args.instance,
                params=params,
                kernel=args.kernel if args.kernel == "compiled" else None,
                seed=args.seed,
                max_steps=args.max_steps,
                max_states=args.max_states,
                telemetry=telemetry,
            ),
            episodes=args.episodes,
            families=families,
            max_violations=args.max_violations,
        )
    except ReproError as exc:
        parser.error(str(exc))
    print(
        f"{report.instance}: {report.episodes_run} episode(s), "
        f"{report.steps} steps, {report.distinct_states} distinct "
        f"state(s), kernel={report.effective_kernel}, seed={report.seed}"
    )
    if report.truncated_by:
        print(f"stopped early: {report.truncated_by} budget exhausted")
    _print_violations([v.to_dict() for v in report.violations])
    if args.telemetry:
        _write_fuzz_manifest(args.telemetry, report, telemetry.snapshot())
    found = report.found
    if not found:
        print("no violation found (not a proof — see `repro verify`)")
    if args.expect_violation:
        return 0 if found else 1
    return 1 if found else 0


# -- farm mode ---------------------------------------------------------

def _farm_config(
    args: argparse.Namespace,
    params: Optional[Dict[str, Any]],
    families: Optional[List[str]],
) -> Dict[str, Any]:
    return {
        "problem": args.problem,
        "instance": args.instance,
        "params": params,
        "fuzz": {
            "seed": args.seed,
            "episodes": args.episodes,
            "max_steps": args.max_steps,
            "kernel": args.kernel,
            "max_states": args.max_states,
            "families": families,
            "episodes_per_cell": args.episodes_per_cell,
        },
        "max_attempts": args.max_attempts or 1,
    }


def _farm_create(
    parser: argparse.ArgumentParser,
    args: argparse.Namespace,
    params: Optional[Dict[str, Any]],
    families: Optional[List[str]],
) -> int:
    from repro.errors import ReproError
    from repro.farm import create_farm, is_farm_dir, run_farm

    if is_farm_dir(args.out):
        parser.error(f"{args.out}: run table already exists; "
                     "use --resume to continue it")
    try:
        count = create_farm(args.out, _farm_config(args, params, families))
    except ReproError as exc:
        parser.error(str(exc))
    print(f"fuzz farm: {count} cell(s) at {args.out}")
    result = run_farm(
        args.out, workers=args.workers or 1, max_attempts=args.max_attempts
    )
    return _farm_report(args, result)


def _farm_resume(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> int:
    from repro.farm import farm_result, is_farm_dir, resume_farm, run_farm

    if args.out is not None or args.problem is not None:
        parser.error("--resume takes its grid from the farm directory; "
                     "drop --out/--problem")
    if not is_farm_dir(args.resume):
        parser.error(f"{args.resume}: no run table found "
                     "(not a farm directory?)")
    reclaimed = resume_farm(args.resume, max_attempts=args.max_attempts)
    before = farm_result(args.resume)
    remaining = before.counts["pending"]
    print(f"resume: reclaimed {reclaimed} cell(s), "
          f"{remaining} cell(s) to run")
    if remaining:
        result = run_farm(
            args.resume,
            workers=args.workers or 1,
            max_attempts=args.max_attempts,
        )
    else:
        result = before
    return _farm_report(args, result)


def _farm_report(args: argparse.Namespace, result: Any) -> int:
    print(result.summary())
    summary = aggregate_fuzz_rows(result.rows)
    print(
        f"total: {summary['episodes_run']} episode(s), "
        f"{summary['steps']} steps, "
        f"{len(summary['violations'])} violation(s)"
    )
    _print_violations(summary["violations"])
    for row in result.errors:
        print(f"[error] cell {row.index}: {row.error}", file=sys.stderr)
    if result.errors:
        return 1
    found = bool(summary["violations"])
    if args.expect_violation:
        return 0 if found else 1
    return 1 if found else 0
