"""Symmetry linter: identifiers may only be written and equality-compared.

Section 2 of the paper defines symmetric algorithms: "the only way
processes can use their identifiers is by comparing them for equality"
(arbitrary-sized identifiers rule out counting through them, ordering
them, or using them as register indices).  Every shipped anonymous
algorithm obeys this by construction; this pass makes the discipline
mechanical by walking each automaton class's AST and flagging any other
use of an identifier expression:

* arithmetic (``pid % 2``, ``pid + 1``, unary minus, …);
* ordering comparisons (``pid < other`` — only ``==``/``!=`` and
  ``in``/``not in`` are equality-flavoured and allowed);
* indexing (``view[pid]``, ``myview[self.pid]``);
* numeric builtins (``hash(pid)``, ``range(pid)``, ``divmod``, …);
* register addressing (an identifier in the *index* position of
  ``ReadOp``/``WriteOp`` — the value position is fine: the algorithms
  write their identifiers all the time).

Identifier expressions are recognised syntactically: ``self.pid``, any
attribute ending in ``.pid``, and bare names ``pid``.  The analysis is
scoped to the class body (module-level helpers such as
``choose_index`` may hash their ``salt`` freely — they receive values,
not the identity-bearing role).

Named-model baselines declare ``SYMMETRIC = False`` (their prior
agreement is positional, which no AST scan can see through) and are
reported as skipped rather than analysed.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Iterable, List, Optional, Sequence, Tuple, Type

from repro.lint.findings import Finding
from repro.lint.registry import shipped_automaton_classes
from repro.runtime.automaton import ProcessAutomaton

PASS = "symmetry"

#: Builtins whose application to an identifier treats it as a number —
#: exactly what arbitrary-sized identifiers forbid.
NUMERIC_BUILTINS = frozenset(
    {"hash", "range", "divmod", "abs", "bin", "oct", "hex", "pow", "chr", "round"}
)

#: Comparison operators that are equality checks (allowed on identifiers).
EQUALITY_OPS = (ast.Eq, ast.NotEq, ast.In, ast.NotIn)


def is_pid_expr(node: ast.AST) -> bool:
    """Syntactic test for "this expression denotes a process identifier"."""
    if isinstance(node, ast.Attribute) and node.attr == "pid":
        return True
    if isinstance(node, ast.Name) and node.id == "pid":
        return True
    return False


def contains_pid(node: ast.AST) -> bool:
    """True when any sub-expression of ``node`` is an identifier."""
    return any(is_pid_expr(sub) for sub in ast.walk(node))


def class_source_tree(
    cls: Type[ProcessAutomaton],
) -> Optional[Tuple[ast.ClassDef, str, int]]:
    """Parse ``cls``'s own source: (class node, file name, first line).

    Returns ``None`` when the source is unavailable (e.g. classes built
    in a REPL); inherited methods are analysed on the class that defines
    them, so each class contributes exactly its own body.
    """
    try:
        source, first_line = inspect.getsourcelines(cls)
        filename = inspect.getsourcefile(cls) or "<unknown>"
    except (OSError, TypeError):
        return None
    tree = ast.parse(textwrap.dedent("".join(source)))
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            return node, filename, first_line
    return None


def _short(filename: str) -> str:
    marker = "repro/"
    pos = filename.rfind(marker)
    return filename[pos:] if pos >= 0 else filename


class _SymmetryVisitor(ast.NodeVisitor):
    def __init__(self, subject: str, filename: str, first_line: int) -> None:
        self.subject = subject
        self.filename = filename
        self.first_line = first_line
        self.findings: List[Finding] = []

    def _flag(self, node: ast.AST, detail: str) -> None:
        line = self.first_line + getattr(node, "lineno", 1) - 1
        self.findings.append(
            Finding(
                pass_name=PASS,
                severity="error",
                subject=self.subject,
                detail=detail,
                location=f"{_short(self.filename)}:{line}",
            )
        )

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if contains_pid(node.left) or contains_pid(node.right):
            op = type(node.op).__name__
            self._flag(node, f"arithmetic on a process identifier ({op})")
        self.generic_visit(node)

    def visit_UnaryOp(self, node: ast.UnaryOp) -> None:
        if not isinstance(node.op, ast.Not) and contains_pid(node.operand):
            self._flag(node, "unary arithmetic on a process identifier")
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        sides = [node.left, *node.comparators]
        if any(is_pid_expr(side) for side in sides):
            for op in node.ops:
                if not isinstance(op, EQUALITY_OPS):
                    self._flag(
                        node,
                        f"non-equality comparison on a process identifier "
                        f"({type(op).__name__})",
                    )
                    break
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if contains_pid(node.slice):
            self._flag(node, "process identifier used as an index")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in NUMERIC_BUILTINS and any(
                contains_pid(arg) for arg in node.args
            ):
                self._flag(
                    node, f"process identifier passed to numeric builtin {func.id}()"
                )
            elif func.id == "ReadOp" and any(contains_pid(arg) for arg in node.args):
                self._flag(node, "process identifier used as a ReadOp register index")
            elif func.id == "WriteOp":
                index_exprs: List[ast.AST] = []
                if node.args:
                    index_exprs.append(node.args[0])
                index_exprs.extend(
                    kw.value for kw in node.keywords if kw.arg == "index"
                )
                if any(contains_pid(expr) for expr in index_exprs):
                    self._flag(
                        node, "process identifier used as a WriteOp register index"
                    )
        self.generic_visit(node)


def check_class(cls: Type[ProcessAutomaton]) -> List[Finding]:
    """Symmetry findings for one automaton class (its own body only)."""
    if not cls.SYMMETRIC:
        return [
            Finding(
                pass_name=PASS,
                severity="info",
                subject=cls.__qualname__,
                detail="declares SYMMETRIC = False (named-model prior "
                "agreement) — skipped",
            )
        ]
    parsed = class_source_tree(cls)
    if parsed is None:
        return [
            Finding(
                pass_name=PASS,
                severity="info",
                subject=cls.__qualname__,
                detail="source unavailable — skipped",
            )
        ]
    node, filename, first_line = parsed
    visitor = _SymmetryVisitor(cls.__qualname__, filename, first_line)
    visitor.visit(node)
    return visitor.findings


def run_symmetry_pass(
    classes: Optional[Iterable[Type[ProcessAutomaton]]] = None,
) -> List[Finding]:
    """Run the symmetry linter over ``classes`` (default: all shipped)."""
    target_classes: Sequence[Type[ProcessAutomaton]] = (
        list(classes) if classes is not None else shipped_automaton_classes()
    )
    findings: List[Finding] = []
    for cls in target_classes:
        findings.extend(check_class(cls))
    return findings
