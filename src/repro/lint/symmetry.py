"""Symmetry linter: identifiers may only be written and equality-compared.

Section 2 of the paper defines symmetric algorithms: "the only way
processes can use their identifiers is by comparing them for equality"
(arbitrary-sized identifiers rule out counting through them, ordering
them, or using them as register indices).

This module is now a thin façade: the enforcement lives in the
dataflow-IR taint pass (:mod:`repro.lint.taint`, built on
:mod:`repro.lint.ir`), which tracks identifier-derived *values* through
locals, tuples, helper calls and state fields instead of matching
identifier-shaped *expressions*.  ``check_class`` and
``run_symmetry_pass`` keep their historical home here so existing
callers and tests are untouched; the syntactic helpers
(:func:`is_pid_expr`, :func:`contains_pid`) remain for code that wants
the cheap expression-shape test.
"""

from __future__ import annotations

import ast

from repro.lint.ir import (  # noqa: F401  (re-exports: historical home)
    EQUALITY_OPS,
    NUMERIC_BUILTINS,
    _short,
    class_source_tree,
)
from repro.lint.taint import (  # noqa: F401  (re-exports: historical home)
    PASS,
    check_class,
    run_symmetry_pass,
)

__all__ = [
    "PASS",
    "NUMERIC_BUILTINS",
    "EQUALITY_OPS",
    "is_pid_expr",
    "contains_pid",
    "class_source_tree",
    "check_class",
    "run_symmetry_pass",
]


def is_pid_expr(node: ast.AST) -> bool:
    """Syntactic test for "this expression denotes a process identifier"."""
    if isinstance(node, ast.Attribute) and node.attr == "pid":
        return True
    if isinstance(node, ast.Name) and node.id == "pid":
        return True
    return False


def contains_pid(node: ast.AST) -> bool:
    """True when any sub-expression of ``node`` is an identifier."""
    return any(is_pid_expr(sub) for sub in ast.walk(node))
